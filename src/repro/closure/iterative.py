"""Iterative transitive-closure algorithms: naive, semi-naive and smart.

These are the graph-level counterparts of the relational fixpoints in
:mod:`repro.relational.fixpoint`, generalised over a path-problem semiring.
They are used both as the *local* algorithm each processor runs on its
fragment ("for evaluating the recursive subquery on a fragment any suitable
single-processor algorithm may be chosen", Sec. 2.1) and as the centralised
baselines the parallel strategy is compared against.

The semi-naive evaluation — the one the hot paths actually call — compiles
graphs at or above :data:`~repro.closure.warshall.COMPACT_NODE_THRESHOLD`
nodes to the compact (CSR) form and runs the id-level kernel of
:mod:`repro.closure.kernels` instead of the dict join (identical values,
``use_compact`` overrides).  The naive and smart variants stay dict-based on
purpose: they exist as complexity baselines, and rewriting them would erase
the very contrast they measure.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Set, Tuple

from ..graph import DiGraph
from .base import ClosureResult, ClosureStatistics, Pair
from .semiring import Semiring, shortest_path_semiring

Node = Hashable

DEFAULT_MAX_ITERATIONS = 10_000


def _edge_values(graph: DiGraph, semiring: Semiring, sources: Optional[Set[Node]]) -> Dict[Pair, object]:
    """Return the single-edge path values, optionally restricted to given sources."""
    values: Dict[Pair, object] = {}
    for u, v, weight in graph.weighted_edges():
        if sources is not None and u not in sources:
            continue
        candidate = semiring.edge_value(weight)
        incumbent = values.get((u, v))
        values[(u, v)] = candidate if incumbent is None else semiring.plus(incumbent, candidate)
    return values


def _absorb(
    values: Dict[Pair, object],
    candidates: Dict[Pair, object],
    semiring: Semiring,
) -> Dict[Pair, object]:
    """Fold candidate facts into ``values``; return the facts that improved."""
    improved: Dict[Pair, object] = {}
    for pair, candidate in candidates.items():
        incumbent = values.get(pair)
        if incumbent is None:
            values[pair] = candidate
            improved[pair] = candidate
        else:
            combined = semiring.plus(incumbent, candidate)
            if combined != incumbent:
                values[pair] = combined
                improved[pair] = combined
    return improved


def naive_transitive_closure(
    graph: DiGraph,
    *,
    semiring: Optional[Semiring] = None,
    sources: Optional[Iterable[Node]] = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> ClosureResult:
    """Compute the closure by naive iteration (whole closure re-joined each round).

    Args:
        graph: the graph to close.
        semiring: the path problem (defaults to shortest paths).
        sources: optional restriction of the closure to paths starting at
            these nodes — the "magic cone" selection induced by a
            disconnection set.
        max_iterations: safety bound for non-idempotent semirings on cyclic
            graphs.
    """
    semiring = semiring or shortest_path_semiring()
    source_set = set(sources) if sources is not None else None
    values = _edge_values(graph, semiring, source_set)
    base = _edge_values(graph, semiring, None)
    stats = ClosureStatistics()
    while stats.iterations < max_iterations:
        candidates: Dict[Pair, object] = {}
        for (a, b), left in values.items():
            for (b2, c), right in base.items():
                if b2 != b:
                    continue
                candidate = semiring.times(left, right)
                pair = (a, c)
                incumbent = candidates.get(pair)
                candidates[pair] = candidate if incumbent is None else semiring.plus(incumbent, candidate)
        improved = _absorb(values, candidates, semiring)
        stats.record_round(len(candidates), len(improved))
        if not improved:
            break
    return ClosureResult(values=values, semiring_name=semiring.name, statistics=stats)


def seminaive_transitive_closure(
    graph: DiGraph,
    *,
    semiring: Optional[Semiring] = None,
    sources: Optional[Iterable[Node]] = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    use_compact: Optional[bool] = None,
) -> ClosureResult:
    """Compute the closure by semi-naive (differential) iteration.

    Only facts that improved in the previous round are extended in the next
    one.  With the default shortest-path semiring this is Bellman-Ford-style
    label correcting expressed as a datalog-ish fixpoint; the number of rounds
    is bounded by the graph diameter, the quantity the paper's fragmentation
    argument revolves around.

    At or above the compact node threshold the evaluation runs on the CSR
    kernels instead (per-source searches for the standard semirings, the
    id-level fixpoint otherwise) with identical values — including the
    ``(a, a)`` facts a cycle produces, which the plain per-source closures
    deliberately omit; ``use_compact`` forces either path.  The *statistics*
    then count per-source rows rather than fixpoint rounds: callers that
    measure the iterative algorithm itself (``diameter_in_iterations``, the
    parallel simulator's centralized baseline) pass ``use_compact=False``.
    """
    semiring = semiring or shortest_path_semiring()
    from .warshall import _auto_compact  # late import: warshall also imports kernels

    if _auto_compact(graph, use_compact):
        return _compact_seminaive(graph, semiring, sources, max_iterations)
    source_set = set(sources) if sources is not None else None
    values = _edge_values(graph, semiring, source_set)
    delta: Dict[Pair, object] = dict(values)
    # Index the base edges by their source node for the delta join.
    base_by_source: Dict[Node, list] = {}
    for u, v, weight in graph.weighted_edges():
        base_by_source.setdefault(u, []).append((v, semiring.edge_value(weight)))
    stats = ClosureStatistics()
    while delta and stats.iterations < max_iterations:
        candidates: Dict[Pair, object] = {}
        for (a, b), left in delta.items():
            for c, edge_value in base_by_source.get(b, ()):
                candidate = semiring.times(left, edge_value)
                pair = (a, c)
                incumbent = candidates.get(pair)
                candidates[pair] = candidate if incumbent is None else semiring.plus(incumbent, candidate)
        improved = _absorb(values, candidates, semiring)
        stats.record_round(len(candidates), len(improved))
        delta = improved
    return ClosureResult(values=values, semiring_name=semiring.name, statistics=stats)


def _compact_seminaive(
    graph: DiGraph,
    semiring: Semiring,
    sources: Optional[Iterable[Node]],
    max_iterations: int,
) -> ClosureResult:
    """Semi-naive closure semantics on the compact kernels.

    The standard semirings run one kernel search per requested source and
    complete each row with the cyclic ``(a, a)`` fact the fixpoint would
    derive (best value over the in-edges of ``a``); custom semirings run the
    id-level semi-naive fixpoint, which matches the dict evaluation fact for
    fact already.
    """
    from math import inf

    from ..graph import CompactGraph
    from .kernels import (
        _resolve_source_ids,
        array_dijkstra,
        compact_closure,
        mask_to_ids,
        reachability_rows,
    )

    compact = CompactGraph.from_digraph(graph)
    if semiring.name not in ("shortest_path", "reachability"):
        return compact_closure(
            compact, semiring=semiring, sources=sources, max_iterations=max_iterations
        )
    values: Dict[Pair, object] = {}
    stats = ClosureStatistics()
    source_ids = _resolve_source_ids(compact, sources)
    rows: Dict[int, int] = {}
    if semiring.name == "reachability":
        rows, _ = reachability_rows(
            compact, source_ids, whole_graph=sources is None, context="seminaive"
        )
    for source_id in source_ids:
        source = compact.node_of(source_id)
        produced = 0
        if semiring.name == "reachability":
            visited = rows[source_id]
            for target_id in mask_to_ids(visited):
                if target_id != source_id:
                    values[(source, compact.node_of(target_id))] = True
                    produced += 1
            if visited & compact.predecessor_masks()[source_id]:
                values[(source, source)] = True  # the cycle fact the fixpoint derives
                produced += 1
        else:
            distances, _, _ = array_dijkstra(compact, source_id)
            for target_id, distance in enumerate(distances):
                if distance == inf or target_id == source_id:
                    continue
                values[(source, compact.node_of(target_id))] = distance
                produced += 1
            cycle = inf
            for predecessor_id, weight in compact.predecessor_ids(source_id):
                if distances[predecessor_id] != inf:
                    cycle = min(cycle, distances[predecessor_id] + weight)
            if cycle != inf:
                values[(source, source)] = cycle
                produced += 1
        stats.record_round(produced, produced)
    return ClosureResult(values=values, semiring_name=semiring.name, statistics=stats)


def smart_transitive_closure(
    graph: DiGraph,
    *,
    semiring: Optional[Semiring] = None,
    max_iterations: int = 64,
) -> ClosureResult:
    """Compute the closure by repeated squaring (logarithmic number of rounds).

    Each round composes the current closure with itself, so paths of length up
    to ``2^k`` are covered after ``k`` rounds.  Source restriction is not
    supported because squaring needs the full intermediate closure.
    """
    semiring = semiring or shortest_path_semiring()
    values = _edge_values(graph, semiring, None)
    stats = ClosureStatistics()
    while stats.iterations < max_iterations:
        by_source: Dict[Node, list] = {}
        for (a, b), value in values.items():
            by_source.setdefault(a, []).append((b, value))
        candidates: Dict[Pair, object] = {}
        for (a, b), left in values.items():
            for c, right in by_source.get(b, ()):
                candidate = semiring.times(left, right)
                pair = (a, c)
                incumbent = candidates.get(pair)
                candidates[pair] = candidate if incumbent is None else semiring.plus(incumbent, candidate)
        improved = _absorb(values, candidates, semiring)
        stats.record_round(len(candidates), len(improved))
        if not improved:
            break
    return ClosureResult(values=values, semiring_name=semiring.name, statistics=stats)
