"""Parameterized reachability via SCC condensation + chain decomposition.

The bitset BFS kernel re-walks the graph for every source; on graphs whose
condensation is small — fragments dominated by a few strongly connected
components, or near-linear DAGs — almost all of that walking rediscovers the
same component-level facts.  Following the parameterized linear-time
construction of Kritikakis & Tollis, :class:`ChainIndex` collapses the graph
once (iterative Tarjan SCC, then a condensation DAG decomposed into ``k``
chains) and answers every subsequent reachability question from O(k) chain
labels:

* ``label[c][ch]`` is the smallest position in chain ``ch`` reachable from
  condensation component ``c`` — everything *after* that position on the
  chain is reachable too, so one integer summarises a whole suffix,
* a node-level query maps both endpoints through the condensation and
  compares one label against one chain position,
* a whole reachability row ORs the member masks of the reachable components,
  reusing the int-as-bitset interop of :mod:`repro.closure.kernels` so every
  caller sees bit-identical answers regardless of backend.

The index is plain data (`to_state`/`from_state`) and rides inside
:meth:`CompactGraph.state`, so snapshots and resident workers reload it
instead of re-deriving it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..graph.compact import CompactGraph

CHAIN_STATE_FORMAT = "chain-index-v1"


def strongly_connected_components(graph: CompactGraph) -> Tuple[List[int], int]:
    """Return ``(comp_of, comp_count)`` via iterative Tarjan.

    Components are numbered in reverse topological order of the condensation:
    every edge ``u -> v`` crossing components satisfies
    ``comp_of[u] > comp_of[v]``, so descending component id *is* a
    topological order — the property the chain decomposition and the label
    sweep below both lean on.
    """
    n = graph.node_count()
    offsets, targets, _ = graph.forward_csr
    index_of = [-1] * n
    low = [0] * n
    on_stack = bytearray(n)
    stack: List[int] = []
    comp_of = [-1] * n
    counter = 0
    comp_count = 0
    for root in range(n):
        if index_of[root] != -1:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, ptr = work[-1]
            if ptr == 0:
                index_of[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = 1
            descended = False
            for index in range(offsets[node] + ptr, offsets[node + 1]):
                target = targets[index]
                if index_of[target] == -1:
                    work[-1] = (node, index - offsets[node] + 1)
                    work.append((target, 0))
                    descended = True
                    break
                if on_stack[target] and index_of[target] < low[node]:
                    low[node] = index_of[target]
            if descended:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if low[node] < low[parent]:
                    low[parent] = low[node]
            if low[node] == index_of[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = 0
                    comp_of[member] = comp_count
                    if member == node:
                        break
                comp_count += 1
    return comp_of, comp_count


class ChainIndex:
    """A chain-decomposition reachability index over one :class:`CompactGraph`.

    Attributes:
        comp_of: dense node id -> condensation component id.
        comp_count: number of components (``comp_count / n`` is the
            condensation ratio the dispatcher keys on).
        comp_cyclic: per component, whether it contains a cycle (size > 1 or
            a self-loop) — decides the ``(a, a)`` facts a fixpoint derives.
        chains: the decomposition — each chain is a list of component ids in
            topological order.
        chain_of / pos_of: per component, its chain and position on it.
        labels: per component, one minimum reachable position per chain
            (``comp_count + 1`` acts as the "nothing reachable" sentinel).
    """

    __slots__ = (
        "comp_of",
        "comp_count",
        "comp_cyclic",
        "chains",
        "chain_of",
        "pos_of",
        "labels",
        "_comp_masks",
        "_reach_masks",
    )

    def __init__(
        self,
        comp_of: List[int],
        comp_count: int,
        comp_cyclic: List[bool],
        chains: List[List[int]],
        chain_of: List[int],
        pos_of: List[int],
        labels: List[List[int]],
    ) -> None:
        self.comp_of = comp_of
        self.comp_count = comp_count
        self.comp_cyclic = comp_cyclic
        self.chains = chains
        self.chain_of = chain_of
        self.pos_of = pos_of
        self.labels = labels
        self._comp_masks: Optional[List[int]] = None
        self._reach_masks: Dict[int, int] = {}

    # ---------------------------------------------------------- construction

    @classmethod
    def from_graph(cls, graph: CompactGraph) -> "ChainIndex":
        """Build the index: SCCs, condensation, chains, then one label sweep."""
        n = graph.node_count()
        comp_of, comp_count = strongly_connected_components(graph)
        comp_cyclic = [False] * comp_count
        comp_size = [0] * comp_count
        for node_id in range(n):
            comp_size[comp_of[node_id]] += 1
        for comp, size in enumerate(comp_size):
            if size > 1:
                comp_cyclic[comp] = True
        # Condensation adjacency (deduplicated), plus self-loop detection.
        offsets, targets, _ = graph.forward_csr
        succs: List[List[int]] = [[] for _ in range(comp_count)]
        preds: List[List[int]] = [[] for _ in range(comp_count)]
        seen_edges = set()
        for source_id in range(n):
            cu = comp_of[source_id]
            for index in range(offsets[source_id], offsets[source_id + 1]):
                cv = comp_of[targets[index]]
                if cu == cv:
                    if targets[index] == source_id:
                        comp_cyclic[cu] = True
                    continue
                if (cu, cv) not in seen_edges:
                    seen_edges.add((cu, cv))
                    succs[cu].append(cv)
                    preds[cv].append(cu)
        # Greedy chain decomposition over the topological order (descending
        # component id): append a component to the chain whose current tail
        # is one of its condensation predecessors, else start a new chain.
        chain_of = [-1] * comp_count
        pos_of = [0] * comp_count
        chains: List[List[int]] = []
        tail_of_chain: List[int] = []
        for comp in range(comp_count - 1, -1, -1):
            placed = False
            for pred in preds[comp]:
                chain = chain_of[pred]
                if tail_of_chain[chain] == pred:
                    chains[chain].append(comp)
                    chain_of[comp] = chain
                    pos_of[comp] = len(chains[chain]) - 1
                    tail_of_chain[chain] = comp
                    placed = True
                    break
            if not placed:
                chain_of[comp] = len(chains)
                pos_of[comp] = 0
                chains.append([comp])
                tail_of_chain.append(comp)
        # Label sweep in reverse topological order (ascending component id):
        # a component reaches the elementwise-minimum positions its
        # successors reach, plus its own spot on its own chain.
        k = len(chains)
        sentinel = comp_count + 1
        labels: List[List[int]] = [[sentinel] * k for _ in range(comp_count)]
        for comp in range(comp_count):
            row = labels[comp]
            for succ in succs[comp]:
                succ_row = labels[succ]
                for chain in range(k):
                    if succ_row[chain] < row[chain]:
                        row[chain] = succ_row[chain]
            own = chain_of[comp]
            if pos_of[comp] < row[own]:
                row[own] = pos_of[comp]
        return cls(comp_of, comp_count, comp_cyclic, chains, chain_of, pos_of, labels)

    # -------------------------------------------------------------- queries

    def chain_count(self) -> int:
        """Return ``k``, the width of every label row."""
        return len(self.chains)

    def reaches_component(self, cu: int, cv: int) -> bool:
        """Return ``True`` when component ``cu`` reaches component ``cv``."""
        if cu == cv:
            return True
        return self.labels[cu][self.chain_of[cv]] <= self.pos_of[cv]

    def reaches_visited(self, u_id: int, v_id: int) -> bool:
        """Node-level reachability with visited-set semantics (``u`` sees itself).

        Matches ``(bitset_reachable(graph, u) >> v) & 1`` exactly: the source
        id is always part of its own visited set, so ``u == v`` is ``True``
        regardless of cycles.
        """
        if u_id == v_id:
            return True
        cu = self.comp_of[u_id]
        cv = self.comp_of[v_id]
        if cu == cv:
            return True
        return self.labels[cu][self.chain_of[cv]] <= self.pos_of[cv]

    def is_cyclic(self, node_id: int) -> bool:
        """Return ``True`` when ``node_id`` lies on a cycle (the ``(a, a)`` fact)."""
        return self.comp_cyclic[self.comp_of[node_id]]

    def component_masks(self) -> List[int]:
        """Return (and cache) one int-as-bitset of member node ids per component."""
        if self._comp_masks is None:
            masks = [0] * self.comp_count
            for node_id, comp in enumerate(self.comp_of):
                masks[comp] |= 1 << node_id
            self._comp_masks = masks
        return self._comp_masks

    def component_reach_mask(self, comp: int) -> int:
        """Return the bitset of node ids reachable from component ``comp``.

        Every component after a label's position on its chain is reachable,
        so the row expands into ``k`` chain suffixes; per-component results
        are memoised because whole-closure callers ask for every component.
        """
        cached = self._reach_masks.get(comp)
        if cached is not None:
            return cached
        comp_masks = self.component_masks()
        mask = 0
        row = self.labels[comp]
        for chain_id, chain in enumerate(self.chains):
            position = row[chain_id]
            if position >= len(chain):
                continue
            for reached in chain[position:]:
                mask |= comp_masks[reached]
        self._reach_masks[comp] = mask
        return mask

    def reachable_mask(self, source_id: int) -> int:
        """Return the visited bitset for ``source_id`` (itself always included)."""
        return self.component_reach_mask(self.comp_of[source_id]) | (1 << source_id)

    # ----------------------------------------------------------- plain state

    def to_state(self) -> Dict[str, object]:
        """Return the index as a plain-data dictionary (snapshot wire format)."""
        return {
            "format": CHAIN_STATE_FORMAT,
            "comp_of": list(self.comp_of),
            "comp_count": self.comp_count,
            "comp_cyclic": [1 if flag else 0 for flag in self.comp_cyclic],
            "chains": [list(chain) for chain in self.chains],
            "chain_of": list(self.chain_of),
            "pos_of": list(self.pos_of),
            "labels": [list(row) for row in self.labels],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "ChainIndex":
        """Rebuild an index from :meth:`to_state` output.

        Raises:
            ValueError: when the state's format tag is not understood.
        """
        if state.get("format") != CHAIN_STATE_FORMAT:
            raise ValueError(
                f"chain index state format {state.get('format')!r} is not supported"
            )
        return cls(
            list(state["comp_of"]),  # type: ignore[arg-type]
            int(state["comp_count"]),  # type: ignore[arg-type]
            [bool(flag) for flag in state["comp_cyclic"]],  # type: ignore[union-attr]
            [list(chain) for chain in state["chains"]],  # type: ignore[union-attr]
            list(state["chain_of"]),  # type: ignore[arg-type]
            list(state["pos_of"]),  # type: ignore[arg-type]
            [list(row) for row in state["labels"]],  # type: ignore[union-attr]
        )

    def __repr__(self) -> str:
        return (
            f"ChainIndex(components={self.comp_count}, chains={len(self.chains)})"
        )
