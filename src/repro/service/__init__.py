"""The query-serving subsystem: prepare a fragmentation once, serve it many times.

The paper's economics — pay for fragmentation and complementary information
up front, then answer transitive-closure queries with communication-free
local work — only pay off when the prepared catalog outlives a single query.
This package provides the serving layer that makes that true in practice:

* :mod:`~repro.service.snapshot` — persist/reload prepared catalogs,
* :mod:`~repro.service.pool` — resident worker processes pinning the sites:
  replicated (:class:`ResidentWorkerPool`) or routed shared-nothing
  (:class:`PlacedWorkerPool`, executing a
  :class:`~repro.placement.plan.PlacementPlan`),
* :mod:`~repro.service.cache` — a bounded LRU cache of query answers,
* :mod:`~repro.service.batch` — shared-subquery batch planning,
* :mod:`~repro.service.server` — the :class:`QueryService` façade,
* :mod:`~repro.service.stats` — hit-rate / latency / load / owner-skew
  statistics, backed by the :mod:`repro.observability` metrics registry.
"""

from .batch import BatchPlan, BatchPlanner
from .cache import CachedAnswer, CacheKey, LRUCache
from .pool import (
    PinUpdate,
    PlacedWorkerPool,
    ResidentWorkerPool,
    WorkerPoolError,
    result_from_payload,
    semiring_from_name,
)
from .server import QueryService, ServiceAnswer
from .snapshot import (
    LoadedSnapshot,
    SnapshotError,
    SnapshotManifest,
    SnapshotStore,
    is_snapshot_directory,
    load_snapshot,
    save_snapshot,
)
from .stats import ServiceStatistics

__all__ = [
    "BatchPlan",
    "BatchPlanner",
    "CacheKey",
    "CachedAnswer",
    "LRUCache",
    "LoadedSnapshot",
    "PinUpdate",
    "PlacedWorkerPool",
    "QueryService",
    "ResidentWorkerPool",
    "WorkerPoolError",
    "ServiceAnswer",
    "ServiceStatistics",
    "SnapshotError",
    "SnapshotManifest",
    "SnapshotStore",
    "is_snapshot_directory",
    "load_snapshot",
    "result_from_payload",
    "save_snapshot",
    "semiring_from_name",
]
