"""Operational statistics of the query service.

The paper's economics only work when the preparation cost (fragmentation +
complementary information) is amortised over many queries; these counters make
the amortisation observable: cache hit rate, per-site dispatch load, the
subqueries a batch shared instead of recomputing, and the invalidations that
updates caused.  :meth:`ServiceStatistics.as_dict` is the flat form the CLI's
``stats`` command and the throughput benchmark print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ServiceStatistics:
    """Counters accumulated by a :class:`~repro.service.server.QueryService`.

    Attributes:
        queries: queries answered, single and batched (including cache hits).
        batches: ``query_batch`` calls served.
        batched_queries: queries submitted through batches.
        cache_hits / cache_misses: result-cache outcomes; duplicates within
            one batch count as hits (they are served without work of their
            own).
        local_evaluations: per-fragment subqueries actually evaluated.
        shared_subqueries_saved: subquery evaluations avoided because another
            chain (or another query of the same batch) already needed the same
            ``(fragment, entry, exit)`` work.
        duplicate_queries_saved: batch queries answered by deduplication.
        invalidations: cache invalidation passes triggered by updates.
        scoped_invalidations: invalidation passes that were fragment-scoped
            (incremental updates) rather than whole-cache flushes.
        cache_entries_evicted: answers dropped by update invalidation (scoped
            and full).
        updates_applied: edge insertions/deletions/reweights applied.
        snapshots_saved / snapshots_loaded: snapshot-store round trips.
        per_site_load: subqueries dispatched to each fragment site.
        total_latency / max_latency: wall-clock seconds spent answering
            queries (cache hits included — they are what the cache buys).
    """

    queries: int = 0
    batches: int = 0
    batched_queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    local_evaluations: int = 0
    shared_subqueries_saved: int = 0
    duplicate_queries_saved: int = 0
    invalidations: int = 0
    scoped_invalidations: int = 0
    cache_entries_evicted: int = 0
    updates_applied: int = 0
    snapshots_saved: int = 0
    snapshots_loaded: int = 0
    per_site_load: Dict[int, int] = field(default_factory=dict)
    total_latency: float = 0.0
    max_latency: float = 0.0

    # ------------------------------------------------------------- recording

    def record_query(self, latency: float, *, cached: bool) -> None:
        """Record one answered query and its wall-clock latency."""
        self.queries += 1
        if cached:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        self.total_latency += latency
        self.max_latency = max(self.max_latency, latency)

    def record_dispatch(self, fragment_id: int, count: int = 1) -> None:
        """Record ``count`` subqueries dispatched to one fragment site."""
        self.local_evaluations += count
        self.per_site_load[fragment_id] = self.per_site_load.get(fragment_id, 0) + count

    # ------------------------------------------------------------- reporting

    def hit_rate(self) -> float:
        """Return the cache hit rate over all answered queries (0.0 when idle)."""
        answered = self.cache_hits + self.cache_misses
        return self.cache_hits / answered if answered else 0.0

    def average_latency(self) -> float:
        """Return the mean per-query latency in seconds (0.0 when idle)."""
        return self.total_latency / self.queries if self.queries else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Return the counters as a flat dictionary (for reporting)."""
        return {
            "queries": self.queries,
            "batches": self.batches,
            "batched_queries": self.batched_queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": round(self.hit_rate(), 4),
            "local_evaluations": self.local_evaluations,
            "shared_subqueries_saved": self.shared_subqueries_saved,
            "duplicate_queries_saved": self.duplicate_queries_saved,
            "invalidations": self.invalidations,
            "scoped_invalidations": self.scoped_invalidations,
            "cache_entries_evicted": self.cache_entries_evicted,
            "updates_applied": self.updates_applied,
            "snapshots_saved": self.snapshots_saved,
            "snapshots_loaded": self.snapshots_loaded,
            "per_site_load": dict(sorted(self.per_site_load.items())),
            "average_latency": self.average_latency(),
            "max_latency": self.max_latency,
        }
