"""Operational statistics of the query service.

The paper's economics only work when the preparation cost (fragmentation +
complementary information) is amortised over many queries; these counters make
the amortisation observable: cache hit rate, per-site dispatch load, the
subqueries a batch shared instead of recomputing, and the invalidations that
updates caused.  :meth:`ServiceStatistics.as_dict` is the flat form the CLI's
``stats`` command and the throughput benchmark print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ServiceStatistics:
    """Counters accumulated by a :class:`~repro.service.server.QueryService`.

    Attributes:
        queries: queries answered, single and batched (including cache hits).
        batches: ``query_batch`` calls served.
        batched_queries: queries submitted through batches.
        cache_hits / cache_misses: result-cache outcomes; duplicates within
            one batch count as hits (they are served without work of their
            own).
        local_evaluations: per-fragment subqueries actually evaluated.
        shared_subqueries_saved: subquery evaluations avoided because another
            chain (or another query of the same batch) already needed the same
            ``(fragment, entry, exit)`` work.
        duplicate_queries_saved: batch queries answered by deduplication.
        invalidations: cache invalidation passes triggered by updates.
        scoped_invalidations: invalidation passes that were fragment-scoped
            (incremental updates) rather than whole-cache flushes.
        cache_entries_evicted: answers dropped by update invalidation (scoped
            and full).
        updates_applied: edge insertions/deletions/reweights applied.
        replayed_records: delta-log records replayed into a restored
            snapshot (``QueryService.from_snapshot(..., replay_log=...)``).
        snapshots_saved / snapshots_loaded: snapshot-store round trips.
        per_site_load: subqueries dispatched to each fragment site.
        per_owner_dispatch: subqueries routed to each owner *worker* under a
            placement plan (counts tasks, never routed messages: one owner
            message may batch many subqueries).
        owner_count: worker slots behind ``per_owner_dispatch`` — workers
            that never received a task still count in the skew denominator.
        queue_depth_peak: the largest per-owner task batch observed (the
            routed pool's queue-depth high-water mark).
        migrations: live fragment migrations applied (rebalancing).
        placement_aware_batches: batches whose tasks were pre-grouped per
            owner by the batch planner (one routed message per owner).
        batch_owner_rounds: total per-owner messages those groupings shipped.
        refragments: boundary redraws applied through the service (scoped
            and full-rebuild alike).
        scoped_refragments: redraws absorbed in place — only changed
            fragments rebuilt, workers kept alive.
        refragment_fragments_rebuilt / refragment_fragments_kept: fragments
            rebuilt vs kept object-identical across all scoped redraws.
        refragment_moved_edges: edges re-shipped by scoped redraws (what a
            full rebuild would multiply by every fragment).
        border_nodes_recovered: cumulative reduction in distinct border
            nodes across redraws — the locality the advisor's redraws won
            back (negative contributions count too).
        replica_refreshes: fenced replicas lazily refreshed on first routed
            read (replica version fencing).
        replica_repins_deferred: eager replica re-pins the fencing avoided.
        total_latency / max_latency: wall-clock seconds spent answering
            queries (cache hits included — they are what the cache buys).
    """

    queries: int = 0
    batches: int = 0
    batched_queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    local_evaluations: int = 0
    shared_subqueries_saved: int = 0
    duplicate_queries_saved: int = 0
    invalidations: int = 0
    scoped_invalidations: int = 0
    cache_entries_evicted: int = 0
    updates_applied: int = 0
    replayed_records: int = 0
    snapshots_saved: int = 0
    snapshots_loaded: int = 0
    per_site_load: Dict[int, int] = field(default_factory=dict)
    per_owner_dispatch: Dict[int, int] = field(default_factory=dict)
    owner_count: int = 0
    queue_depth_peak: int = 0
    migrations: int = 0
    placement_aware_batches: int = 0
    batch_owner_rounds: int = 0
    refragments: int = 0
    scoped_refragments: int = 0
    refragment_fragments_rebuilt: int = 0
    refragment_fragments_kept: int = 0
    refragment_moved_edges: int = 0
    border_nodes_recovered: int = 0
    replica_refreshes: int = 0
    replica_repins_deferred: int = 0
    total_latency: float = 0.0
    max_latency: float = 0.0

    # ------------------------------------------------------------- recording

    def record_query(self, latency: float, *, cached: bool) -> None:
        """Record one answered query and its wall-clock latency."""
        self.queries += 1
        if cached:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        self.total_latency += latency
        self.max_latency = max(self.max_latency, latency)

    def record_dispatch(self, fragment_id: int, count: int = 1) -> None:
        """Record ``count`` subqueries dispatched to one fragment site.

        Dispatch accounting is always per *task*: a batch of ``n`` subqueries
        shipped to a site (or routed to an owner worker in one message) must
        be recorded with ``count=n``, never as a single dispatch — the
        advisor's skew model would otherwise undercount exactly the hot,
        heavily-batched fragments it exists to find.  ``per_owner_dispatch``
        is fed separately from the routed pool's actual routing counts,
        which attribute tasks to the worker that really ran them (a replica
        or a respawned owner, not necessarily the plan's owner).
        """
        self.local_evaluations += count
        self.per_site_load[fragment_id] = self.per_site_load.get(fragment_id, 0) + count

    def observe_owner_queues(self, *, owner_count: int, queue_depth_peak: int) -> None:
        """Fold the routed pool's queue observability into the counters."""
        self.owner_count = max(self.owner_count, owner_count)
        self.queue_depth_peak = max(self.queue_depth_peak, queue_depth_peak)

    # ------------------------------------------------------------- reporting

    def hit_rate(self) -> float:
        """Return the cache hit rate over all answered queries (0.0 when idle)."""
        answered = self.cache_hits + self.cache_misses
        return self.cache_hits / answered if answered else 0.0

    def average_latency(self) -> float:
        """Return the mean per-query latency in seconds (0.0 when idle)."""
        return self.total_latency / self.queries if self.queries else 0.0

    def dispatch_skew(self) -> float:
        """Return max/mean per-owner dispatch load (1.0 = balanced, 0.0 = idle).

        Workers that never received a task still count in the mean (via
        ``owner_count``): a pool where one of four owners does all the work
        skews 4.0, not 1.0.
        """
        if not self.per_owner_dispatch:
            return 0.0
        owners = max(self.owner_count, len(self.per_owner_dispatch))
        mean = sum(self.per_owner_dispatch.values()) / owners
        return max(self.per_owner_dispatch.values()) / mean if mean else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Return the counters as a flat dictionary (for reporting)."""
        return {
            "queries": self.queries,
            "batches": self.batches,
            "batched_queries": self.batched_queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": round(self.hit_rate(), 4),
            "local_evaluations": self.local_evaluations,
            "shared_subqueries_saved": self.shared_subqueries_saved,
            "duplicate_queries_saved": self.duplicate_queries_saved,
            "invalidations": self.invalidations,
            "scoped_invalidations": self.scoped_invalidations,
            "cache_entries_evicted": self.cache_entries_evicted,
            "updates_applied": self.updates_applied,
            "replayed_records": self.replayed_records,
            "snapshots_saved": self.snapshots_saved,
            "snapshots_loaded": self.snapshots_loaded,
            "per_site_load": dict(sorted(self.per_site_load.items())),
            "per_owner_dispatch": dict(sorted(self.per_owner_dispatch.items())),
            "dispatch_skew": round(self.dispatch_skew(), 4),
            "queue_depth_peak": self.queue_depth_peak,
            "migrations": self.migrations,
            "placement_aware_batches": self.placement_aware_batches,
            "batch_owner_rounds": self.batch_owner_rounds,
            "refragments": self.refragments,
            "scoped_refragments": self.scoped_refragments,
            "refragment_fragments_rebuilt": self.refragment_fragments_rebuilt,
            "refragment_fragments_kept": self.refragment_fragments_kept,
            "refragment_moved_edges": self.refragment_moved_edges,
            "border_nodes_recovered": self.border_nodes_recovered,
            "replica_refreshes": self.replica_refreshes,
            "replica_repins_deferred": self.replica_repins_deferred,
            "average_latency": self.average_latency(),
            "max_latency": self.max_latency,
        }
