"""Operational statistics of the query service.

The paper's economics only work when the preparation cost (fragmentation +
complementary information) is amortised over many queries; these counters make
the amortisation observable: cache hit rate, per-site dispatch load, the
subqueries a batch shared instead of recomputing, and the invalidations that
updates caused.

:class:`ServiceStatistics` is now a thin **compatibility view** over a
:class:`~repro.observability.metrics.MetricsRegistry`: every field read or
written here is a labeled metric in the registry (see the ``_INT_COUNTERS``
/ ``_FLOAT_COUNTERS`` / ``_GAUGES`` tables for the field -> metric-name
mapping), so the flat counter bag, the Prometheus exposition, and the JSON
export can never disagree — they are one store.  On top of the flat view the
registry holds what a counter bag cannot express: the
``repro_query_latency_seconds`` histogram (split by ``outcome`` into
``cached`` vs ``evaluated`` series, so a hit-rate change cannot distort the
evaluated mean) with :meth:`latency_quantiles` p50/p90/p99 estimation.

:meth:`ServiceStatistics.as_dict` / :meth:`ServiceStatistics.from_dict`
round-trip the raw counters (snapshot checkpointing), and
:meth:`ServiceStatistics.reset` clears them in place — the serve loop's
counter checkpoint/clear, without poking fields.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional

from ..observability import MetricsRegistry
from ..observability.metrics import Counter

# field -> (metric name, help).  Integer counters: monotone event totals.
_INT_COUNTERS: Dict[str, tuple] = {
    "queries": ("repro_queries_total", "Queries answered, single and batched (cache hits included)."),
    "batches": ("repro_batches_total", "query_batch calls served."),
    "batched_queries": ("repro_batched_queries_total", "Queries submitted through batches."),
    "cache_hits": ("repro_cache_hits_total", "Result-cache hits (batch duplicates included)."),
    "cache_misses": ("repro_cache_misses_total", "Result-cache misses."),
    "local_evaluations": ("repro_local_evaluations_total", "Per-fragment subqueries actually evaluated."),
    "shared_subqueries_saved": ("repro_shared_subqueries_saved_total", "Subquery evaluations avoided by sharing."),
    "duplicate_queries_saved": ("repro_duplicate_queries_saved_total", "Batch queries answered by deduplication."),
    "invalidations": ("repro_invalidations_total", "Cache invalidation passes triggered by updates."),
    "scoped_invalidations": ("repro_scoped_invalidations_total", "Invalidation passes that were fragment-scoped."),
    "cache_entries_evicted": ("repro_cache_entries_evicted_total", "Answers dropped by update invalidation."),
    "updates_applied": ("repro_updates_applied_total", "Edge insertions/deletions/reweights applied."),
    "replayed_records": ("repro_replayed_records_total", "Delta-log records replayed into a restored snapshot."),
    "snapshots_saved": ("repro_snapshots_saved_total", "Snapshot-store writes."),
    "snapshots_loaded": ("repro_snapshots_loaded_total", "Snapshot-store restores."),
    "migrations": ("repro_migrations_total", "Live fragment migrations applied."),
    "placement_aware_batches": ("repro_placement_aware_batches_total", "Batches pre-grouped per owner by the planner."),
    "batch_owner_rounds": ("repro_batch_owner_rounds_total", "Per-owner messages those groupings shipped."),
    "refragments": ("repro_refragments_total", "Boundary redraws applied through the service."),
    "scoped_refragments": ("repro_scoped_refragments_total", "Redraws absorbed in place (workers kept alive)."),
    "refragment_fragments_rebuilt": ("repro_refragment_fragments_rebuilt_total", "Fragments rebuilt across scoped redraws."),
    "refragment_fragments_kept": ("repro_refragment_fragments_kept_total", "Fragments kept object-identical across scoped redraws."),
    "refragment_moved_edges": ("repro_refragment_moved_edges_total", "Edges re-shipped by scoped redraws."),
    "replica_refreshes": ("repro_replica_refreshes_total", "Fenced replicas lazily refreshed on first routed read."),
    "replica_repins_deferred": ("repro_replica_repins_deferred_total", "Eager replica re-pins the fencing avoided."),
}

# Float counters: monotone wall-clock accumulators.
_FLOAT_COUNTERS: Dict[str, tuple] = {
    "total_latency": ("repro_latency_seconds_total", "Wall-clock seconds answering queries (cached + evaluated)."),
    "cached_latency": ("repro_cached_latency_seconds_total", "Wall-clock seconds spent serving cache hits."),
    "evaluated_latency": ("repro_evaluated_latency_seconds_total", "Wall-clock seconds spent on full evaluations."),
}

# Gauges: last-written / high-water values, and the one signed accumulator
# (border_nodes_recovered counts negative contributions too).
_GAUGES: Dict[str, tuple] = {
    "owner_count": ("repro_owner_count", "Worker slots behind the per-owner dispatch series."),
    "queue_depth": ("repro_queue_depth", "Tasks enqueued to owner workers in the latest dispatch round (live view)."),
    "queue_depth_peak": ("repro_queue_depth_peak", "Largest per-owner task batch observed."),
    "border_nodes_recovered": ("repro_border_nodes_recovered", "Cumulative border-node reduction across redraws (signed)."),
    "max_latency": ("repro_max_latency_seconds", "Slowest answer observed (cached or evaluated)."),
    "max_cached_latency": ("repro_max_cached_latency_seconds", "Slowest cache hit observed."),
    "max_evaluated_latency": ("repro_max_evaluated_latency_seconds", "Slowest full evaluation observed."),
}

# Fields whose compatibility view should read as int.
_INT_GAUGES = frozenset(
    {"owner_count", "queue_depth", "queue_depth_peak", "border_nodes_recovered"}
)

LATENCY_HISTOGRAM = "repro_query_latency_seconds"
SITE_DISPATCH_COUNTER = "repro_site_dispatch_total"
OWNER_DISPATCH_COUNTER = "repro_owner_dispatch_total"

# as_dict keys that are derived (recomputed on read) and ignored by from_dict.
_DERIVED_KEYS = frozenset(
    {
        "hit_rate",
        "dispatch_skew",
        "average_latency",
        "average_cached_latency",
        "average_evaluated_latency",
    }
)


class _LabeledCounterDict:
    """A dict-of-int view over one labeled counter family (int-keyed).

    Keeps the historical ``stats.per_site_load[fragment] += n`` idiom working
    while the registry's labeled series stay the single store: reads convert
    the counter's label values back to int keys, writes go straight to the
    series.
    """

    __slots__ = ("_counter", "_label")

    def __init__(self, counter: Counter, label: str) -> None:
        self._counter = counter
        self._label = label

    def _snapshot(self) -> Dict[int, int]:
        return {int(key[0]): int(value) for key, value in self._counter.series().items()}

    def __getitem__(self, key: int) -> int:
        return int(self._counter.value(**{self._label: key}))

    def __setitem__(self, key: int, value: int) -> None:
        self._counter.set_value(float(value), **{self._label: key})

    def get(self, key: int, default: int = 0) -> int:
        snapshot = self._snapshot()
        return snapshot.get(int(key), default)

    def keys(self):
        return self._snapshot().keys()

    def values(self):
        return self._snapshot().values()

    def items(self):
        return self._snapshot().items()

    def __iter__(self) -> Iterator[int]:
        return iter(self._snapshot())

    def __len__(self) -> int:
        return len(self._counter.series())

    def __contains__(self, key: object) -> bool:
        return key in self._snapshot()

    def __bool__(self) -> bool:
        return bool(self._counter.series())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _LabeledCounterDict):
            return self._snapshot() == other._snapshot()
        if isinstance(other, Mapping):
            return self._snapshot() == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return repr(self._snapshot())


class ServiceStatistics:
    """Counters accumulated by a :class:`~repro.service.server.QueryService`.

    The attribute API is unchanged from the original dataclass (every field
    documented in the module tables reads and writes like a plain int/float
    attribute, ``per_site_load`` / ``per_owner_dispatch`` like plain dicts)
    — but the storage is the given
    :class:`~repro.observability.metrics.MetricsRegistry`, which other
    components (result cache, tracer, worker metrics merges) share.

    Latency accounting is asymmetric on purpose: cached hits and full
    evaluations accumulate into *separate* series (``cached_latency`` /
    ``evaluated_latency`` and the two-outcome latency histogram), because a
    hit-rate shift would otherwise distort the evaluated mean — the figure
    capacity planning actually needs.  ``total_latency`` / ``max_latency``
    remain as the combined view.

    Args:
        registry: the metrics registry to back the counters (a private one
            is created when not given — every counter still works, it is
            just not shared).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        reg = registry if registry is not None else MetricsRegistry()
        object.__setattr__(self, "_registry", reg)
        metrics: Dict[str, object] = {}
        for field, (name, help_text) in _INT_COUNTERS.items():
            metrics[field] = reg.counter(name, help_text)
        for field, (name, help_text) in _FLOAT_COUNTERS.items():
            metrics[field] = reg.counter(name, help_text)
        for field, (name, help_text) in _GAUGES.items():
            metrics[field] = reg.gauge(name, help_text)
        object.__setattr__(self, "_metrics", metrics)
        object.__setattr__(
            self,
            "_latency",
            reg.histogram(
                LATENCY_HISTOGRAM,
                "Per-query wall-clock latency, split by cache outcome.",
                labelnames=("outcome",),
            ),
        )
        object.__setattr__(
            self,
            "per_site_load",
            _LabeledCounterDict(
                reg.counter(
                    SITE_DISPATCH_COUNTER,
                    "Subqueries dispatched to each fragment site.",
                    labelnames=("fragment",),
                ),
                "fragment",
            ),
        )
        object.__setattr__(
            self,
            "per_owner_dispatch",
            _LabeledCounterDict(
                reg.counter(
                    OWNER_DISPATCH_COUNTER,
                    "Subqueries routed to each owner worker (tasks, not messages).",
                    labelnames=("worker",),
                ),
                "worker",
            ),
        )

    # ----------------------------------------------------- attribute routing

    def __getattr__(self, name: str):
        # Only called when normal lookup fails: the registry-backed fields.
        metrics = object.__getattribute__(self, "_metrics")
        metric = metrics.get(name)
        if metric is None:
            raise AttributeError(name)
        value = metric.value()
        if name in _FLOAT_COUNTERS or (name in _GAUGES and name not in _INT_GAUGES):
            return value
        return int(value)

    def __setattr__(self, name: str, value: object) -> None:
        metrics = object.__getattribute__(self, "_metrics")
        metric = metrics.get(name)
        if metric is None:
            object.__setattr__(self, name, value)
        elif name in _GAUGES:
            metric.set(float(value))  # type: ignore[union-attr, arg-type]
        else:
            # Counters arrive as absolute values (the += idiom reads first);
            # set_value keeps the view exact, including from_dict restores.
            metric.set_value(float(value))  # type: ignore[union-attr, arg-type]

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry backing (and superseding) these counters."""
        return self._registry

    # ------------------------------------------------------------- recording

    def record_query(self, latency: float, *, cached: bool) -> None:
        """Record one answered query and its wall-clock latency.

        Cached hits and full evaluations land in separate latency series
        (and separate histogram outcomes); the combined ``total_latency`` /
        ``max_latency`` aggregates are kept for the historical view.
        """
        self.queries += 1
        if cached:
            self.cache_hits += 1
            self.cached_latency += latency
            if latency > self.max_cached_latency:
                self.max_cached_latency = latency
            self._latency.observe(latency, outcome="cached")
        else:
            self.cache_misses += 1
            self.evaluated_latency += latency
            if latency > self.max_evaluated_latency:
                self.max_evaluated_latency = latency
            self._latency.observe(latency, outcome="evaluated")
        self.total_latency += latency
        self.max_latency = max(self.max_latency, latency)

    def record_dispatch(self, fragment_id: int, count: int = 1) -> None:
        """Record ``count`` subqueries dispatched to one fragment site.

        Dispatch accounting is always per *task*: a batch of ``n`` subqueries
        shipped to a site (or routed to an owner worker in one message) must
        be recorded with ``count=n``, never as a single dispatch — the
        advisor's skew model would otherwise undercount exactly the hot,
        heavily-batched fragments it exists to find.  ``per_owner_dispatch``
        is fed separately from the routed pool's actual routing counts,
        which attribute tasks to the worker that really ran them (a replica
        or a respawned owner, not necessarily the plan's owner).
        """
        self.local_evaluations += count
        self.per_site_load[fragment_id] = self.per_site_load.get(fragment_id, 0) + count

    def observe_owner_queues(
        self,
        *,
        owner_count: int,
        queue_depth_peak: int,
        queue_depth: Optional[int] = None,
    ) -> None:
        """Fold the routed pool's queue observability into the counters.

        ``queue_depth`` is the *live* view — the largest per-owner task
        batch of the most recent dispatch round, overwritten every round —
        while ``queue_depth_peak`` is its monotone high-water mark.
        """
        self.owner_count = max(self.owner_count, owner_count)
        self.queue_depth_peak = max(self.queue_depth_peak, queue_depth_peak)
        if queue_depth is not None:
            self.queue_depth = queue_depth

    # ------------------------------------------------------------- reporting

    def hit_rate(self) -> float:
        """Return the cache hit rate over all answered queries (0.0 when idle)."""
        answered = self.cache_hits + self.cache_misses
        return self.cache_hits / answered if answered else 0.0

    def average_latency(self) -> float:
        """Return the mean per-query latency in seconds (0.0 when idle)."""
        return self.total_latency / self.queries if self.queries else 0.0

    def average_cached_latency(self) -> float:
        """Return the mean cache-hit latency (0.0 when no hit was served)."""
        return self.cached_latency / self.cache_hits if self.cache_hits else 0.0

    def average_evaluated_latency(self) -> float:
        """Return the mean full-evaluation latency (0.0 when none ran).

        This is the series :meth:`average_latency` used to distort: a rising
        hit rate pulls the combined mean down without a single evaluation
        getting faster.
        """
        return self.evaluated_latency / self.cache_misses if self.cache_misses else 0.0

    def latency_quantiles(self, outcome: str = "evaluated") -> Dict[str, float]:
        """Return p50/p90/p99 latency estimates from the histogram registry.

        ``outcome`` selects the series: ``"evaluated"`` (default) or
        ``"cached"``.  All zeros when the series has no observations.
        """
        return {
            "p50": self._latency.quantile(0.50, outcome=outcome),
            "p90": self._latency.quantile(0.90, outcome=outcome),
            "p99": self._latency.quantile(0.99, outcome=outcome),
        }

    def dispatch_skew(self) -> float:
        """Return max/mean per-owner dispatch load (1.0 = balanced, 0.0 = idle).

        Workers that never received a task still count in the mean (via
        ``owner_count``): a pool where one of four owners does all the work
        skews 4.0, not 1.0.
        """
        if not self.per_owner_dispatch:
            return 0.0
        owners = max(self.owner_count, len(self.per_owner_dispatch))
        mean = sum(self.per_owner_dispatch.values()) / owners
        return max(self.per_owner_dispatch.values()) / mean if mean else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Return the counters as a flat dictionary (for reporting).

        Raw counters round-trip through :meth:`from_dict`; the derived
        figures (``hit_rate``, ``dispatch_skew``, the averages) are
        recomputed on restore and ignored by ``from_dict``.
        """
        return {
            "queries": self.queries,
            "batches": self.batches,
            "batched_queries": self.batched_queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": round(self.hit_rate(), 4),
            "local_evaluations": self.local_evaluations,
            "shared_subqueries_saved": self.shared_subqueries_saved,
            "duplicate_queries_saved": self.duplicate_queries_saved,
            "invalidations": self.invalidations,
            "scoped_invalidations": self.scoped_invalidations,
            "cache_entries_evicted": self.cache_entries_evicted,
            "updates_applied": self.updates_applied,
            "replayed_records": self.replayed_records,
            "snapshots_saved": self.snapshots_saved,
            "snapshots_loaded": self.snapshots_loaded,
            "per_site_load": dict(sorted(self.per_site_load.items())),
            "per_owner_dispatch": dict(sorted(self.per_owner_dispatch.items())),
            "owner_count": self.owner_count,
            "dispatch_skew": round(self.dispatch_skew(), 4),
            "queue_depth": self.queue_depth,
            "queue_depth_peak": self.queue_depth_peak,
            "migrations": self.migrations,
            "placement_aware_batches": self.placement_aware_batches,
            "batch_owner_rounds": self.batch_owner_rounds,
            "refragments": self.refragments,
            "scoped_refragments": self.scoped_refragments,
            "refragment_fragments_rebuilt": self.refragment_fragments_rebuilt,
            "refragment_fragments_kept": self.refragment_fragments_kept,
            "refragment_moved_edges": self.refragment_moved_edges,
            "border_nodes_recovered": self.border_nodes_recovered,
            "replica_refreshes": self.replica_refreshes,
            "replica_repins_deferred": self.replica_repins_deferred,
            "total_latency": self.total_latency,
            "cached_latency": self.cached_latency,
            "evaluated_latency": self.evaluated_latency,
            "average_latency": self.average_latency(),
            "average_cached_latency": self.average_cached_latency(),
            "average_evaluated_latency": self.average_evaluated_latency(),
            "max_latency": self.max_latency,
            "max_cached_latency": self.max_cached_latency,
            "max_evaluated_latency": self.max_evaluated_latency,
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, object], *, registry: Optional[MetricsRegistry] = None
    ) -> "ServiceStatistics":
        """Rebuild statistics from an :meth:`as_dict` snapshot.

        Derived keys (``hit_rate``, the averages, ``dispatch_skew``) are
        ignored — they recompute from the restored raw counters — as are
        unknown keys, so snapshots survive future counter additions.  Dict
        keys arriving as strings (a JSON round trip) are coerced back to
        int.  The latency *distribution* is not part of the flat snapshot:
        the histogram restarts empty; only its totals are restored.
        """
        stats = cls(registry)
        for field in list(_INT_COUNTERS) + list(_FLOAT_COUNTERS) + list(_GAUGES):
            if field in data and field not in _DERIVED_KEYS:
                setattr(stats, field, data[field])
        for field in ("per_site_load", "per_owner_dispatch"):
            mapping = data.get(field)
            if isinstance(mapping, Mapping):
                view = getattr(stats, field)
                for key, value in mapping.items():
                    view[int(key)] = int(value)  # type: ignore[call-overload]
        return stats

    def reset(self) -> None:
        """Zero every counter, gauge, series, and histogram in the registry.

        The serve loop's checkpoint/clear: snapshot :meth:`as_dict` first if
        the window matters.  Resets the *whole* backing registry — including
        metrics other components registered on it (cache counters, worker
        kernel series); a reset is a registry-wide epoch, not a per-field
        poke.
        """
        self._registry.reset()

    def __repr__(self) -> str:
        return f"ServiceStatistics({self.as_dict()!r})"
