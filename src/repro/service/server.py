"""The query service: prepare once, serve many.

:class:`QueryService` is the long-lived serving façade over the one-shot
:class:`~repro.disconnection.engine.DisconnectionSetEngine`.  It composes the
pieces of this package:

* a :class:`~repro.service.cache.LRUCache` of answers addressed by a typed
  :class:`~repro.service.cache.CacheKey`, each entry recording the
  per-fragment versions it depends on,
* an optional worker pool that keeps the fragment sites pinned in
  persistent worker processes — replicated
  (:class:`~repro.service.pool.ResidentWorkerPool`) or shared-nothing
  (:class:`~repro.service.pool.PlacedWorkerPool`, selected with
  ``placement=...``: a :class:`~repro.placement.plan.PlacementPlan` routes
  every fragment's subqueries and re-pins to its owner worker, and
  :meth:`QueryService.migrate` / :meth:`QueryService.rebalance` move
  fragments between live workers),
* the :class:`~repro.service.batch.BatchPlanner` that evaluates a batch's
  shared local subqueries once,
* the update hooks of
  :class:`~repro.disconnection.maintenance.FragmentedDatabase`: with the
  default ``incremental=True`` an update is absorbed in place by the
  :mod:`repro.incremental` subsystem — only the dirty fragments' versions
  move, only the answers depending on them are evicted, and only their
  payloads are re-pinned into the workers; a fall-back full rebuild flushes
  everything (the pre-incremental behaviour, kept as ``incremental=False``),
* :class:`~repro.service.stats.ServiceStatistics` making hit rates, latency
  and per-site load observable — backed by a shared
  :class:`~repro.observability.MetricsRegistry`, alongside a
  :class:`~repro.observability.Tracer` (every ``query`` / ``query_batch`` /
  ``update_edge`` / ``refragment`` call is one trace with spans for cache
  lookup, planning, routing, per-worker evaluation and kernel execution,
  worker-side spans timed in the worker and shipped back over the private
  result channels) and a :class:`~repro.observability.QueryLog` capturing
  the served workload for the placement and refragmentation advisors.
  :meth:`QueryService.metrics` exports the whole registry as JSON or
  Prometheus text exposition.

``QueryService.from_snapshot`` restores a service from a directory written by
:func:`~repro.service.snapshot.save_snapshot` without recomputing any closure
or complementary-information work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from ..closure import (
    KERNEL_BACKENDS,
    KERNEL_SELECTIONS_COUNTER,
    Semiring,
    merge_selection_metrics,
    shortest_path_semiring,
)
from ..disconnection import (
    CompactFragmentSite,
    ComplementaryInformation,
    DisconnectionSetEngine,
    FragmentedDatabase,
    LocalQueryEvaluator,
    LocalQueryResult,
    QueryPlanner,
    assemble_best_chain,
    collect_task_keys,
)
from ..disconnection.maintenance import UpdateEvent
from ..disconnection.planner import LocalQuerySpec
from ..exceptions import NoChainError
from ..fragmentation import Fragmentation, Fragmenter
from ..graph.compact import merge_overlay_metrics
from ..incremental import DeltaLog, VersionVector
from ..observability import (
    DEFAULT_SLOW_THRESHOLD_SECONDS,
    MetricsRegistry,
    QueryLog,
    Tracer,
)
from ..observability.querylog import DEFAULT_CAPACITY as DEFAULT_QUERY_LOG_CAPACITY
from ..placement import (
    PLACEMENT_POLICIES,
    Migration,
    PlacementError,
    PlacementPlan,
    RebalanceAdvisor,
    plan_placement,
)
from ..refragmentation import (
    RefragmentationAdvisor,
    RefragmentResult,
    fragmenter_for,
)
from .batch import BatchPlanner
from .cache import CachedAnswer, CacheKey, LRUCache
from .pool import (
    PICKLABLE_SEMIRINGS,
    PinUpdate,
    PlacedWorkerPool,
    ResidentWorkerPool,
    TaskKey,
)
from .snapshot import SnapshotManifest, load_snapshot, save_snapshot
from .stats import ServiceStatistics

Node = Hashable
Query = Tuple[Node, Node]
PathLike = Union[str, Path]
WorkerPool = Union[ResidentWorkerPool, PlacedWorkerPool]

# After the advisor's recommendation fails the worthwhile bar, skip this many
# check intervals before paying for trial-run recommendations again.
_REFRAGMENT_REJECTION_BACKOFF = 4


@dataclass(frozen=True)
class ServiceAnswer:
    """One answered service query.

    Attributes:
        source, target: the queried endpoints.
        value: the best path value (``None`` when no path exists or the
            query failed — see ``error``).
        chain: the fragment chain that produced the value (``None`` for
            trivial/cached-without-chain answers).
        cached: whether the answer came from the result cache.
        error: planning failure message (unknown endpoint / no connecting
            chain) for batch queries; ``None`` on success.
    """

    source: Node
    target: Node
    value: Optional[object]
    chain: Optional[Tuple[int, ...]]
    cached: bool = False
    error: Optional[str] = None

    def exists(self) -> bool:
        """Return ``True`` when a path was found."""
        return self.value is not None


class QueryService:
    """A long-lived query server over a prepared fragmentation.

    Args:
        fragmentation: the prepared fragmentation to serve.
        semiring: the path problem (defaults to shortest paths).
        complementary: reuse already-precomputed complementary information
            (e.g. from a snapshot) so construction costs no search work.
        cache_size: capacity of the LRU result cache.
        workers: when set (> 0), evaluate local subqueries on a resident
            pool of that many worker processes; when ``None`` the service
            evaluates them in-process (still sharing subqueries and caching
            results — the right choice for small fragments, where process
            messaging would dominate).
        placement: shared-nothing placement of fragments onto the workers.
            ``None`` (default) keeps the replicated pool: every worker pins
            every fragment.  A policy name (``"round_robin"``,
            ``"cost_balanced"``, ``"workload_aware"``) or an explicit
            :class:`~repro.placement.plan.PlacementPlan` switches to the
            routed :class:`~repro.service.pool.PlacedWorkerPool`: each
            worker pins only the fragments it owns, subqueries are routed
            to owners, re-pins reach only the dirty fragment's owner(s),
            and :meth:`migrate` / :meth:`rebalance` move fragments between
            live workers.  Implies pooled evaluation (``workers`` defaults
            to the plan's worker count, or the fragment count capped at the
            CPU count for a policy name).
        compact_sites: seed the per-fragment compact kernel graphs (snapshot
            reload fast path; ``from_snapshot`` wires this automatically).
        use_compact: evaluate local subqueries with the compact kernels
            (default); ``False`` restores the dict-based evaluation — kept
            for the kernel benchmarks.
        max_chains: cap on fragment chains examined per query.
        incremental: absorb updates in place (scoped complementary repair,
            per-fragment cache eviction, worker re-pinning) — the default.
            ``False`` restores the full-invalidation behaviour: every update
            tears the engine down and flushes the whole cache (kept as the
            update benchmark's baseline).
        version_vector: seed the per-fragment version vector (wired by
            ``from_snapshot`` so a restored service resumes mid-stream).
        delta_sequence: seed the delta log's numbering (wired by
            ``from_snapshot`` so replayed tail records keep their original
            sequence numbers).
        auto_refragment: watch the layout's locality and redraw boundaries
            automatically.  ``True`` installs a default
            :class:`~repro.refragmentation.RefragmentationAdvisor`; an
            advisor instance installs it as configured.  Every
            ``refragment_check_interval`` applied updates the advisor
            assesses the layout (border growth, cross-fragment edge ratio,
            update skew, captured query skew) and — when triggered and a
            measured improvement exists — executes :meth:`refragment` live.
        refragment_check_interval: applied updates between advisor checks.
        refragment_cadence: when the advisor assessment runs.  ``"update"``
            (the default) checks inline every ``refragment_check_interval``
            applied updates — simple, but the assessment (and any redraw)
            rides on the update hot path.  ``"background"`` never assesses
            inside :meth:`update_edge`; a host loop (the network server's
            idle task, a cron) calls :meth:`auto_refragment_now` in quiet
            moments instead, so updates stay uniformly fast and redraws land
            when nothing is waiting.
        tracing: produce a request trace per service call (cache lookup,
            planning, routing, per-worker evaluation, kernel execution
            spans).  Toggle live via ``service.tracer``.
        query_log_size: entries retained by the structured query log the
            advisors mine (0 disables capture entirely).
        slow_query_threshold: seconds past which a query is also retained in
            the log's bounded slow-query window.
    """

    def __init__(
        self,
        fragmentation: Fragmentation,
        *,
        semiring: Optional[Semiring] = None,
        complementary: Optional[ComplementaryInformation] = None,
        cache_size: int = 1024,
        workers: Optional[int] = None,
        placement: Optional[Union[str, PlacementPlan]] = None,
        compact_sites: Optional[Dict[int, CompactFragmentSite]] = None,
        use_compact: bool = True,
        max_chains: Optional[int] = 32,
        incremental: bool = True,
        version_vector: Optional[VersionVector] = None,
        delta_sequence: int = 0,
        auto_refragment: Union[bool, RefragmentationAdvisor] = False,
        refragment_check_interval: int = 32,
        refragment_cadence: str = "update",
        tracing: bool = True,
        query_log_size: int = DEFAULT_QUERY_LOG_CAPACITY,
        slow_query_threshold: float = DEFAULT_SLOW_THRESHOLD_SECONDS,
    ) -> None:
        self._semiring = semiring or shortest_path_semiring()
        if isinstance(placement, str) and placement not in PLACEMENT_POLICIES:
            raise PlacementError(
                f"unknown placement policy {placement!r} "
                f"(expected one of {PLACEMENT_POLICIES})"
            )
        if (
            isinstance(placement, PlacementPlan)
            and workers
            and workers != placement.worker_count
        ):
            raise PlacementError(
                f"workers={workers} conflicts with the placement plan's "
                f"worker_count={placement.worker_count}; drop one or pass a "
                "policy name to recompute the plan for the requested workers"
            )
        if placement is not None and not workers:
            # Placement implies pooled evaluation: an explicit plan fixes the
            # worker count, a policy name defaults to one worker per
            # fragment, capped at the CPU count.
            import multiprocessing

            workers = (
                placement.worker_count
                if isinstance(placement, PlacementPlan)
                else max(1, min(fragmentation.fragment_count(), multiprocessing.cpu_count()))
            )
        if workers and self._semiring.name not in PICKLABLE_SEMIRINGS:
            raise ValueError(
                "worker processes support the "
                f"{' and '.join(PICKLABLE_SEMIRINGS)} semirings only"
            )
        self._database = FragmentedDatabase(
            fragmentation,
            semiring=self._semiring,
            complementary=complementary,
            compact_sites=compact_sites,
            incremental=incremental,
            version_vector=version_vector,
        )
        self._database.add_update_listener(self._on_update)
        self._database.delta_log.resume_at(delta_sequence)
        # One registry backs everything: the statistics view, the result
        # cache's mirrored counters, the latency/planning histograms, and the
        # worker-side kernel series merged in from evaluate replies.
        self._registry = MetricsRegistry()
        self._cache = LRUCache(cache_size, registry=self._registry)
        self._stats = ServiceStatistics(self._registry)
        self._tracer = Tracer(enabled=tracing)
        self._query_log = QueryLog(
            capacity=query_log_size, slow_threshold=slow_query_threshold
        )
        self._planning_hist = self._registry.histogram(
            "repro_batch_planning_seconds",
            "Wall-clock seconds spent planning one query batch.",
        )
        self._workers = workers
        self._placement = placement
        self._max_chains = max_chains
        self._pool: Optional[WorkerPool] = None
        self._evaluator = LocalQueryEvaluator(semiring=self._semiring, use_compact=use_compact)
        self._base_version = "live"
        self._current_engine: Optional[DisconnectionSetEngine] = None
        self._planner: Optional[QueryPlanner] = None
        self._batch_planner: Optional[BatchPlanner] = None
        if refragment_check_interval <= 0:
            raise ValueError(
                f"refragment_check_interval must be positive, got {refragment_check_interval}"
            )
        if refragment_cadence not in ("update", "background"):
            raise ValueError(
                f"refragment_cadence must be 'update' or 'background', "
                f"got {refragment_cadence!r}"
            )
        self._refragment_check_interval = refragment_check_interval
        self._refragment_cadence = refragment_cadence
        self._updates_at_last_check = 0
        self._refragment_backoff_until = 0
        if auto_refragment is True:
            self._refragment_advisor: Optional[RefragmentationAdvisor] = (
                RefragmentationAdvisor()
            )
        elif isinstance(auto_refragment, RefragmentationAdvisor):
            self._refragment_advisor = auto_refragment
        else:
            self._refragment_advisor = None
        if self._refragment_advisor is not None and self._refragment_advisor.baseline is None:
            self._refragment_advisor.observe(fragmentation)
        self._refresh_engine()

    # ---------------------------------------------------------- constructors

    @classmethod
    def from_snapshot(
        cls,
        directory: PathLike,
        *,
        replay_log: Optional[DeltaLog] = None,
        **kwargs,
    ) -> "QueryService":
        """Restore a service from a snapshot directory (no recomputation).

        The snapshot's persisted compact fragments seed the kernel caches, so
        the restored service serves its first query without ever rebuilding
        adjacency.  A persisted placement plan is re-adopted the same way —
        pass ``placement=...`` to override it (including an explicit
        ``placement=None`` to force the replicated pool), or a different
        ``workers=`` count to recompute the plan with the persisted policy
        for the new pool shape.

        ``replay_log`` catches the restored service up with a *live*
        database: the snapshot records the delta sequence it was taken at,
        and every newer record in the given log is re-applied through the
        incremental maintainer — so a replica that restores an old snapshot
        converges on the live state without forcing a fresh snapshot.  The
        tail may contain ``refragment`` records: they carry the complete
        aligned layout, so the replica follows the reorganisation (and every
        later record's fragment ids line up) instead of resnapshotting.

        Raises:
            ValueError: when ``replay_log`` no longer retains the records
                after the snapshot's sequence (the restore fell off the
                log's tail), or the tail contains a legacy ``refragment``
                record written before layouts were recorded — that one
                cannot be reconstructed; resynchronise from a newer
                snapshot either way.
        """
        loaded = load_snapshot(directory)
        kwargs.setdefault("compact_sites", loaded.compact_sites)
        kwargs.setdefault("version_vector", loaded.version_vector)
        kwargs.setdefault("delta_sequence", loaded.delta_sequence)
        if loaded.placement_plan is not None:
            if (
                kwargs.get("workers")
                and kwargs["workers"] != loaded.placement_plan.worker_count
            ):
                # An explicit worker count that differs from the persisted
                # plan's is a new deployment shape: keep the persisted
                # *policy* and recompute the plan for the requested workers.
                kwargs.setdefault("placement", loaded.placement_plan.policy)
            else:
                kwargs.setdefault("placement", loaded.placement_plan)
        if replay_log is not None:
            # Fail before doing any restore work when the tail is gone or
            # contains a record replay cannot reconstruct (a legacy
            # refragment without a recorded layout — see replay_record).
            tail = replay_log.records_since(loaded.delta_sequence)
            for record in tail:
                replayable_refragment = (
                    record.kind == "refragment" and record.layout is not None
                )
                if not replayable_refragment and not record.changes:
                    raise ValueError(
                        f"the replay tail contains record {record.sequence} "
                        f"({record.kind!r}) with no recorded layout or edge "
                        "changes; resynchronise from a snapshot taken after it"
                    )
        service = cls(
            loaded.fragmentation,
            semiring=loaded.semiring,
            complementary=loaded.complementary,
            **kwargs,
        )
        service._base_version = loaded.manifest.version
        service._stats.snapshots_loaded += 1
        if replay_log is not None:
            for record in tail:
                service._database.replay_record(record)
                service._stats.replayed_records += 1
        return service

    @classmethod
    def from_engine(cls, engine: DisconnectionSetEngine, **kwargs) -> "QueryService":
        """Wrap an already-prepared engine (reusing its complementary information)."""
        return cls(
            engine.catalog.fragmentation,
            semiring=engine.semiring,
            complementary=engine.catalog.complementary,
            **kwargs,
        )

    # ------------------------------------------------------------- accessors

    @property
    def semiring(self) -> Semiring:
        """The path problem being served."""
        return self._semiring

    @property
    def stats(self) -> ServiceStatistics:
        """The service's operational counters."""
        return self._stats

    @property
    def cache(self) -> LRUCache:
        """The bounded LRU result cache."""
        return self._cache

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry every telemetry series of this service lives in."""
        return self._registry

    @property
    def tracer(self) -> Tracer:
        """The request tracer (toggle with ``enable()`` / ``disable()``)."""
        return self._tracer

    @property
    def query_log(self) -> QueryLog:
        """The bounded structured log of answered queries (workload capture)."""
        return self._query_log

    def metrics(self, format: str = "json"):
        """Export the service's telemetry.

        ``format="json"`` returns a plain-data dictionary: the flat
        statistics view, p50/p90/p99 latency quantiles per cache outcome,
        every registry metric's series, and query-log / tracing summaries.
        ``format="prometheus"`` returns the registry in Prometheus text
        exposition format, ready for a scrape endpoint.
        """
        # Fold any kernel-selection counts and overlay depth/compaction
        # counters recorded in this process (engine builds, in-process
        # evaluation, complementary precompute, mirror splices) into the
        # registry before exporting; worker-side series arrive through the
        # drained worker registries instead.
        merge_selection_metrics(self._registry)
        merge_overlay_metrics(self._registry)
        if format == "prometheus":
            return self._registry.to_prometheus()
        if format != "json":
            raise ValueError(f"unknown metrics format {format!r} (json or prometheus)")
        return {
            "stats": self._stats.as_dict(),
            "latency_quantiles": {
                "evaluated": self._stats.latency_quantiles("evaluated"),
                "cached": self._stats.latency_quantiles("cached"),
            },
            "metrics": self._registry.as_dict(),
            "query_log": {
                "recorded": self._query_log.recorded,
                "retained": len(self._query_log),
                "slow_count": self._query_log.slow_count,
                "slow_threshold": self._query_log.slow_threshold,
                "cached_share": round(self._query_log.cached_share(), 4),
                "query_skew": round(self._query_log.query_skew(), 4),
                "error_count": self._query_log.error_count(),
            },
            "tracing": {
                "enabled": self._tracer.enabled,
                "traces_finished": self._tracer.traces_finished,
                "traces_dropped": self._tracer.traces_dropped,
            },
        }

    @property
    def database(self) -> FragmentedDatabase:
        """The mutable fragmented database behind the service."""
        return self._database

    @property
    def catalog_version(self) -> str:
        """The catalog's version identity (moves on every update).

        Folds the snapshot lineage with the per-fragment version vector's
        tag, so a local update moves only the dirty fragments' components
        while whole-catalog events advance the epoch.
        """
        return f"{self._base_version}.{self._database.version_vector.tag()}"

    @property
    def version_vector(self) -> VersionVector:
        """The per-fragment version vector scoped invalidation runs on."""
        return self._database.version_vector

    @property
    def refragment_advisor(self) -> Optional[RefragmentationAdvisor]:
        """The installed auto-refragmentation advisor (``None`` when disabled).

        This is the advisor — with its deployment baseline — that
        ``auto_refragment`` consults; surfacing it lets operators (the CLI's
        ``advise`` command) see exactly the signals the automatic path acts
        on.
        """
        return self._refragment_advisor

    @property
    def placement_plan(self) -> Optional[PlacementPlan]:
        """The live fragment -> owner-worker plan (``None`` outside placement mode).

        Once the routed pool runs this is its live plan, migrations
        included.  Before that, a policy name is materialised into a
        concrete plan here (and pinned, so the pool later starts with
        exactly this plan) — a service configured with ``placement=...``
        therefore always reports and persists its placement, even before
        the first query forces the pool up.
        """
        if isinstance(self._pool, PlacedWorkerPool):
            return self._pool.plan
        if self._placement is None:
            return None
        if isinstance(self._placement, PlacementPlan):
            return self._placement
        engine = self._refresh_engine()
        catalog = engine.catalog
        plan = plan_placement(
            self._placement,
            self._workers or 1,
            fragment_ids=[site.fragment_id for site in catalog.sites()],
            fragment_costs={
                site.fragment_id: float(site.edge_count()) for site in catalog.sites()
            },
            dispatch_counts=dict(self._stats.per_site_load),
        )
        self._placement = plan
        return plan

    def engine(self) -> DisconnectionSetEngine:
        """The current engine (rebuilt lazily after updates)."""
        return self._refresh_engine()

    # --------------------------------------------------------------- queries

    def query(self, source: Node, target: Node) -> ServiceAnswer:
        """Answer one best-path query, consulting the result cache first.

        Raises:
            NoChainError: if an endpoint is stored nowhere or no fragment
                chain connects the endpoints (mirrors the engine contract).
        """
        started = time.perf_counter()
        with self._tracer.span("query", source=source, target=target) as root:
            engine = self._refresh_engine()
            key = self._cache_key(source, target)
            # No child span for the lookup here: a cache hit costs a few
            # tens of microseconds all-in, and the root span's "cached"
            # outcome already tells the whole story.  query_batch keeps its
            # cache_lookup span — one per batch, amortised.
            hit = self._lookup(key)
            if hit is not None:
                root.set("outcome", "cached")
                latency = time.perf_counter() - started
                self._stats.record_query(latency, cached=True)
                self._log_query(
                    source,
                    target,
                    fragments=[f for f, _ in hit.fragment_versions],
                    latency=latency,
                    cached=True,
                )
                return ServiceAnswer(
                    source=source, target=target, value=hit.value, chain=hit.chain, cached=True
                )
            involved = engine.catalog.sites_storing_node(source) if source == target else []
            if involved:
                value, chain = self._semiring.one, None
            else:
                assert self._planner is not None
                with self._tracer.span("plan"):
                    try:
                        plan = self._planner.plan(source, target)
                    except NoChainError as error:
                        root.set("outcome", "error")
                        self._log_query(
                            source,
                            target,
                            fragments=(),
                            latency=time.perf_counter() - started,
                            cached=False,
                            error=str(error),
                        )
                        raise
                tasks, references = collect_task_keys([plan])
                results = self._evaluate_tasks(tasks)
                self._stats.shared_subqueries_saved += references - len(tasks)
                value, chain = assemble_best_chain(plan, results, semiring=self._semiring)
                involved = plan.fragments_involved()
            self._cache.put(key, self._entry(value, chain, involved))
            root.set("outcome", "evaluated")
            latency = time.perf_counter() - started
            self._stats.record_query(latency, cached=False)
            self._log_query(
                source, target, fragments=involved, latency=latency, cached=False
            )
            return ServiceAnswer(
                source=source, target=target, value=value, chain=chain, cached=False
            )

    def query_batch(self, queries: Sequence[Query]) -> List[ServiceAnswer]:
        """Answer a batch of queries, sharing duplicated and overlapping work.

        Unlike :meth:`query`, planning failures do not raise: the affected
        answers carry an ``error`` message, so one unknown endpoint cannot
        poison a batch.
        """
        started = time.perf_counter()
        submitted = [tuple(query) for query in queries]
        self._stats.batches += 1
        self._stats.batched_queries += len(submitted)
        with self._tracer.span("query_batch", queries=len(submitted)) as root:
            engine = self._refresh_engine()

            distinct: List[Query] = []
            seen = set()
            for query in submitted:
                if query not in seen:
                    seen.add(query)
                    distinct.append(query)
            self._stats.duplicate_queries_saved += len(submitted) - len(distinct)

            resolved: Dict[Query, ServiceAnswer] = {}
            fragments_of: Dict[Query, Tuple[int, ...]] = {}
            pending: List[Query] = []
            with self._tracer.span("cache_lookup", queries=len(distinct)) as cache_span:
                for source, target in distinct:
                    key = self._cache_key(source, target)
                    hit = self._lookup(key)
                    if hit is not None:
                        resolved[(source, target)] = ServiceAnswer(
                            source=source, target=target, value=hit.value,
                            chain=hit.chain, cached=True,
                        )
                        fragments_of[(source, target)] = tuple(
                            f for f, _ in hit.fragment_versions
                        )
                    else:
                        storing = (
                            engine.catalog.sites_storing_node(source)
                            if source == target
                            else []
                        )
                        if storing:
                            value, chain = self._semiring.one, None
                            self._cache.put(key, self._entry(value, chain, storing))
                            resolved[(source, target)] = ServiceAnswer(
                                source=source, target=target, value=value,
                                chain=chain, cached=False,
                            )
                            fragments_of[(source, target)] = tuple(storing)
                        else:
                            pending.append((source, target))
                cache_span.set("hits", len(distinct) - len(pending))

            if pending:
                assert self._batch_planner is not None
                with self._tracer.span("batch_plan", queries=len(pending)) as plan_span:
                    batch = self._batch_planner.plan_batch(pending)
                    plan_span.set("tasks", len(batch.tasks))
                    plan_span.set("owner_rounds", batch.owner_rounds())
                self._planning_hist.observe(batch.planning_seconds)
                if batch.owner_groups:
                    # Placement-aware batch: the planner grouped the whole
                    # batch's tasks per owner, so the routed pool ships exactly
                    # one message round per owner instead of re-deriving routes.
                    self._stats.placement_aware_batches += 1
                    self._stats.batch_owner_rounds += batch.owner_rounds()
                results = self._evaluate_tasks(
                    batch.tasks, owner_groups=batch.owner_groups or None
                )
                self._stats.shared_subqueries_saved += batch.shared_subqueries_saved()
                with self._tracer.span("assemble", queries=len(batch.unique_queries)):
                    for index, query in enumerate(batch.unique_queries):
                        source, target = query
                        plan = batch.plans[index]
                        if plan is None:
                            resolved[query] = ServiceAnswer(
                                source=source, target=target, value=None, chain=None,
                                cached=False, error=batch.errors[index],
                            )
                            fragments_of[query] = ()
                            continue
                        value, chain = assemble_best_chain(
                            plan, results, semiring=self._semiring
                        )
                        involved = plan.fragments_involved()
                        self._cache.put(
                            self._cache_key(source, target),
                            self._entry(value, chain, involved),
                        )
                        resolved[query] = ServiceAnswer(
                            source=source, target=target, value=value,
                            chain=chain, cached=False,
                        )
                        fragments_of[query] = tuple(involved)

            elapsed = time.perf_counter() - started
            per_query = elapsed / len(submitted) if submitted else 0.0
            answers = []
            first_occurrence_seen = set()
            # Per-entry log costs that are invariant across the batch (trace
            # id, semiring name, timestamp) are paid once, not per query.
            log = self._query_log if self._query_log.enabled else None
            if log is not None:
                trace_id = self._tracer.current_trace_id
                semiring_name = self._semiring.name
                now = time.time()
            for query in submitted:
                answer = resolved[query]
                # A duplicate of an already-resolved query was served without
                # any work of its own: count it as a hit, whatever its first
                # occurrence cost.  The recorded latency is the batch's
                # amortised per-query share.
                duplicate = query in first_occurrence_seen
                first_occurrence_seen.add(query)
                cached = answer.cached or duplicate
                self._stats.record_query(per_query, cached=cached)
                if log is not None:
                    log.push(
                        answer.source,
                        answer.target,
                        semiring_name,
                        fragments_of.get(query, ()),
                        per_query,
                        cached,
                        True,
                        trace_id,
                        answer.error,
                        now,
                    )
                answers.append(answer)
            root.set("outcome", "evaluated" if pending else "cached")
            return answers

    # --------------------------------------------------------------- updates

    def update_edge(
        self,
        source: Node,
        target: Node,
        weight: float = 1.0,
        *,
        delete: bool = False,
        symmetric: bool = False,
    ) -> int:
        """Apply one edge change and return the fragment that absorbed it.

        Inserts the edge when it does not exist, reweights it when it does,
        and deletes it with ``delete=True``.  The registered update hook
        bumps the catalog version and flushes the result cache, so stale
        answers can never be served.  With ``auto_refragment`` enabled, every
        ``refragment_check_interval``-th update also asks the advisor
        whether the layout's locality has eroded enough to redraw.
        """
        with self._tracer.span("update_edge", source=source, target=target) as root:
            if delete:
                with self._tracer.span("apply_update", kind="delete"):
                    owner = self._database.delete_edge(source, target, symmetric=symmetric)
            elif self._database.graph.has_edge(source, target):
                with self._tracer.span("apply_update", kind="reweight"):
                    owner = self._database.update_edge_weight(source, target, weight)
            else:
                with self._tracer.span("apply_update", kind="insert"):
                    owner = self._database.insert_edge(
                        source, target, weight, symmetric=symmetric
                    )
            root.set("owner", owner)
            with self._tracer.span("auto_refragment_check"):
                self._maybe_auto_refragment()
            return owner

    # -------------------------------------------------------- refragmentation

    def refragment(
        self,
        fragmenter: Optional[Union[str, Fragmenter]] = None,
        *,
        fragment_count: Optional[int] = None,
        advisor: Optional[RefragmentationAdvisor] = None,
    ) -> Optional[RefragmentResult]:
        """Redraw the fragment boundaries over the live graph, in place.

        ``fragmenter`` may be a configured
        :class:`~repro.fragmentation.Fragmenter`, an algorithm name
        (``"auto"``, ``"bond-energy"``, ``"linear"``, ...) or ``None`` — the
        default asks the (given or installed) refragmentation advisor for a
        recommended layout.  With a live engine and a standard semiring the
        redraw is scoped: fragment ids are aligned so surviving fragments
        keep their sites, only changed fragments are rebuilt and re-pinned,
        a routed pool keeps its workers (unchanged fragments stay pinned on
        the same PIDs) under a remapped plan, and the delta log records the
        layout so replicas can replay across it.  Outside that envelope the
        classic full rebuild applies.

        Returns the :class:`~repro.refragmentation.RefragmentResult` of a
        scoped redraw, or ``None`` when the full-rebuild path ran — or when
        the advisor path found no worthwhile candidate and left the layout
        untouched (distinguish via ``stats.refragments``).
        """
        with self._tracer.span("refragment") as root:
            self._refresh_engine()
            database = self._database
            if fragmenter is None:
                chooser = advisor or self._refragment_advisor or RefragmentationAdvisor()
                with self._tracer.span("recommend"):
                    advice = chooser.recommend(
                        database.fragmentation(), fragment_count=fragment_count
                    )
                if not advice.worthwhile:
                    # The advisor's contract: a redraw is a measured improvement.
                    # A candidate that does not shrink the border set is not
                    # executed — the deployed layout stays.
                    root.set("outcome", "rejected")
                    return None
                root.set("outcome", "applied")
                return self._apply_advice(advice)
            if isinstance(fragmenter, str):
                count = fragment_count or database.fragmentation().fragment_count()
                chosen: Fragmenter = fragmenter_for(fragmenter, count, graph=database.graph)
            else:
                chosen = fragmenter
            with self._tracer.span("redraw"):
                database.refragment(chosen)  # the update listener evicts and re-pins
            result = database.last_refragment
            with self._tracer.span("rebuild"):
                # Full-rebuild path: rebuild (and restart the pool) now.
                self._refresh_engine()
            root.set("outcome", "applied")
            return result

    def _apply_advice(self, advice) -> Optional[RefragmentResult]:
        """Execute exactly the layout an advisor judged worthwhile.

        Not a re-run of the fragmenter: that would cost another full
        fragmentation pass and — for a nondeterministic fragmenter — could
        apply a layout that was never measured.
        """
        self._database.refragment(
            layout=[list(f.edges) for f in advice.proposed.fragments],
            algorithm=advice.proposed.algorithm,
            aligned=False,
        )
        result = self._database.last_refragment
        self._refresh_engine()  # full-rebuild path: rebuild (and restart the pool) now
        return result

    def _maybe_auto_refragment(self) -> None:
        if self._refragment_cadence != "update":
            # Background cadence: the update hot path never assesses; a host
            # loop calls :meth:`auto_refragment_now` in quiet moments.
            return
        if self._refragment_advisor is None:
            return
        applied = self._stats.updates_applied
        if applied - self._updates_at_last_check < self._refragment_check_interval:
            return
        self._updates_at_last_check = applied
        self._assess_and_maybe_redraw(applied)

    def auto_refragment_now(self) -> str:
        """Run one advisor assessment immediately; returns the outcome.

        This is the ``refragment_cadence="background"`` entry point: the
        network server's idle task (or any host scheduler) calls it between
        requests, so assessment and redraw cost land in quiet moments
        instead of on the update hot path.  Callable under either cadence.

        Returns:
            ``"disabled"`` (no advisor), ``"unchanged"`` (no updates since
            the last assessment), ``"backoff"`` (recently rejected),
            ``"not_triggered"``, ``"rejected"`` (triggered but no worthwhile
            candidate), or ``"redrawn"``.
        """
        if self._refragment_advisor is None:
            return "disabled"
        applied = self._stats.updates_applied
        if applied == self._updates_at_last_check:
            return "unchanged"
        self._updates_at_last_check = applied
        return self._assess_and_maybe_redraw(applied)

    def _assess_and_maybe_redraw(self, applied: int) -> str:
        advisor = self._refragment_advisor
        assert advisor is not None
        if applied < self._refragment_backoff_until:
            # A persistently-triggered assessment whose candidates keep
            # failing the worthwhile bar must not pay the trial-run
            # recommendation on every interval: back off after a rejection.
            return "backoff"
        fragmentation = self._database.fragmentation()
        assessment = advisor.assess(
            fragmentation,
            version_vector=self._database.version_vector,
            delta_log=self._database.delta_log,
            query_log=self._query_log,
        )
        if not assessment.triggered:
            return "not_triggered"
        advice = advisor.recommend(fragmentation, current_signals=assessment.signals)
        if advice.worthwhile:
            self._refragment_backoff_until = 0
            self._apply_advice(advice)
            return "redrawn"
        self._refragment_backoff_until = (
            applied + _REFRAGMENT_REJECTION_BACKOFF * self._refragment_check_interval
        )
        return "rejected"

    # ------------------------------------------------------------- placement

    def migrate(self, fragment_id: int, to_worker: int) -> bool:
        """Move one fragment's pinned state to another live worker (no restart).

        Returns ``False`` when the fragment already lives there.

        Raises:
            PlacementError: when the service runs without a placement plan,
                the fragment is unplaced, or the worker index is invalid.
        """
        pool = self._require_placed_pool()
        moved = pool.migrate(fragment_id, to_worker)
        if moved:
            self._stats.migrations += 1
        return moved

    def rebalance(
        self,
        *,
        apply: bool = True,
        advisor: Optional[RebalanceAdvisor] = None,
    ) -> List[Migration]:
        """Ask the advisor for migrations against the observed load; optionally apply.

        The advisor folds the per-fragment dispatch counts
        (``stats.per_site_load``) with the delta log's re-pin locality, and
        recommends moves only while the modelled owner skew exceeds its
        threshold — a balanced pool returns ``[]``.  With ``apply=True``
        (default) the recommended migrations are executed immediately on the
        live pool.

        Raises:
            PlacementError: when the service runs without a placement plan.
        """
        pool = self._require_placed_pool()
        advisor = advisor or RebalanceAdvisor()
        migrations = advisor.recommend(
            pool.plan,
            dict(self._stats.per_site_load),
            delta_log=self._database.delta_log,
            query_log=self._query_log,
        )
        if apply:
            for migration in migrations:
                if pool.migrate(migration.fragment_id, migration.to_worker):
                    self._stats.migrations += 1
        return migrations

    def _require_placed_pool(self) -> PlacedWorkerPool:
        if self._placement is None:
            raise PlacementError(
                "this service runs the replicated pool; construct it with "
                "placement=... to route fragments to owner workers"
            )
        self._refresh_engine()
        pool = self._ensure_pool()
        assert isinstance(pool, PlacedWorkerPool)
        return pool

    def pool_health(self) -> Dict[str, object]:
        """Worker-pool liveness, as the health endpoints report it.

        A dead owner worker is only *observed* when something looks — the
        routed pool respawns crashed workers lazily on the next evaluate —
        so the liveness probe checks the processes directly; a worker killed
        while idle flips ``healthy`` before any query fails.
        """
        if not self._workers:
            return {"mode": "in-process", "workers": 0, "alive": 0, "healthy": True}
        pool = self._pool
        if pool is None:
            # Not started yet: healthy by definition (it will be built on
            # first use), but report the configured size.
            return {
                "mode": "unstarted",
                "workers": self._workers,
                "alive": self._workers,
                "healthy": True,
            }
        if isinstance(pool, PlacedWorkerPool):
            liveness = pool.liveness()
            alive = sum(1 for is_alive in liveness.values() if is_alive)
            return {
                "mode": "placed",
                "workers": len(liveness),
                "alive": alive,
                "healthy": alive == len(liveness),
                "per_worker": {str(worker): bool(is_alive) for worker, is_alive in sorted(liveness.items())},
            }
        alive = pool.alive_workers()
        return {
            "mode": "replicated",
            "workers": self._workers,
            "alive": alive,
            "healthy": alive == self._workers,
        }

    # -------------------------------------------------------------- snapshot

    def snapshot(self, directory: PathLike) -> SnapshotManifest:
        """Serialise the service's current prepared state to ``directory``.

        The per-fragment version vector, the live placement plan (migrations
        included) and the delta log's sequence position are persisted
        alongside the catalog, so a service restored from this snapshot
        resumes mid-stream — with the same placement, and able to replay a
        live delta log's tail from exactly where this snapshot left off.
        """
        manifest = save_snapshot(
            directory,
            self._refresh_engine(),
            version_vector=self._database.version_vector,
            placement=self.placement_plan,
            delta_sequence=self._database.delta_log.last_sequence,
        )
        self._stats.snapshots_saved += 1
        return manifest

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release the resident worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------- internals

    def _cache_key(self, source: Node, target: Node) -> CacheKey:
        return CacheKey(
            source=source,
            target=target,
            semiring=self._semiring.name,
            base_version=self._base_version,
        )

    def _entry(
        self, value: Optional[object], chain: Optional[Tuple[int, ...]], fragments
    ) -> CachedAnswer:
        vector = self._database.version_vector
        return CachedAnswer(
            value=value,
            chain=chain,
            epoch=vector.epoch,
            fragment_versions=vector.snapshot_of(fragments),
        )

    def _log_query(
        self,
        source: Node,
        target: Node,
        *,
        fragments,
        latency: float,
        cached: bool,
        batched: bool = False,
        error: Optional[str] = None,
    ) -> None:
        """Record one answered (or failed) query in the workload log."""
        if not self._query_log.enabled:
            return
        self._query_log.push(
            source,
            target,
            self._semiring.name,
            tuple(fragments),
            latency,
            cached,
            batched,
            self._tracer.current_trace_id,
            error,
        )

    def _lookup(self, key: CacheKey) -> Optional[CachedAnswer]:
        """Return a cached answer whose recorded fragment versions are current."""
        entry = self._cache.get(key)
        if entry is None:
            return None
        assert isinstance(entry, CachedAnswer)
        vector = self._database.version_vector
        if not vector.matches(entry.epoch, entry.fragment_versions):
            # Belt and braces: scoped eviction should already have dropped
            # it, but a stale entry must never be served.
            self._cache.discard(key)
            return None
        return entry

    def _on_update(self, event: UpdateEvent) -> None:
        self._stats.invalidations += 1
        if event.kind == "refragment":
            self._on_refragment(event)
            return
        self._stats.updates_applied += 1
        if event.incremental and event.dirty_fragments:
            # Scoped invalidation: the maintainer absorbed the change in
            # place and named exactly the fragments whose state moved — only
            # answers depending on them are dropped, and only their payloads
            # are re-pinned into the resident workers.
            dirty = set(event.dirty_fragments)
            evicted = self._cache.evict_where(
                lambda key, entry: entry.depends_on(dirty)  # type: ignore[union-attr]
            )
            self._stats.scoped_invalidations += 1
            self._stats.cache_entries_evicted += evicted
            self._repin_dirty(sorted(dirty))
            return
        # Full invalidation: the engine will be rebuilt; every cached answer
        # and every pinned worker payload is stale (the pool restarts when
        # _refresh_engine notices the new engine object).
        self._stats.cache_entries_evicted += self._cache.clear()

    def _on_refragment(self, event: UpdateEvent) -> None:
        """Absorb a boundary redraw: scoped eviction + live re-pins when possible."""
        self._stats.refragments += 1
        if self._refragment_advisor is not None:
            # The redraw is the new normal: growth is measured against it.
            # Re-observing here (the update listener) covers every path a
            # redraw can arrive by — refragment(), delta-log replay, or a
            # direct database.refragment().
            self._refragment_advisor.observe(self._database.fragmentation())
        result = self._database.last_refragment
        if event.incremental and event.dirty_fragments and result is not None:
            dirty = set(event.dirty_fragments)
            evicted = self._cache.evict_where(
                lambda key, entry: entry.depends_on(dirty)  # type: ignore[union-attr]
            )
            self._stats.scoped_invalidations += 1
            self._stats.cache_entries_evicted += evicted
            self._stats.scoped_refragments += 1
            self._stats.refragment_fragments_rebuilt += len(result.changed)
            self._stats.refragment_fragments_kept += len(result.unchanged)
            self._stats.refragment_moved_edges += result.moved_edges
            self._stats.border_nodes_recovered += result.border_nodes_recovered()
            self._repin_refragment(result)
            return
        # Full-rebuild redraw: every answer and every pinned payload is
        # stale; the pool restarts when _refresh_engine sees the new engine.
        # A pinned explicit plan must still follow the new fragment ids — a
        # pool built *after* this redraw starts from self._placement, and a
        # plan missing the redrawn ids would refuse to start.
        if isinstance(self._placement, PlacementPlan):
            count = self._database.fragmentation().fragment_count()
            self._placement = self._placement.remap(range(count))
        self._stats.cache_entries_evicted += self._cache.clear()

    def _repin_refragment(self, result: RefragmentResult) -> None:
        """Push a scoped redraw's rebuilt fragments into the live pool."""
        engine = self._current_engine
        assert engine is not None
        catalog = engine.catalog
        surviving = [site.fragment_id for site in catalog.sites()]
        if self._pool is None:
            if isinstance(self._placement, PlacementPlan):
                # Keep the pinned (not-yet-started) plan shaped like the new
                # layout, owners of surviving fragments preserved.
                self._placement = self._placement.remap(surviving)
            return
        updates: List[PinUpdate] = []
        for fragment_id in result.changed:
            site = catalog.site(fragment_id)
            updates.append(
                PinUpdate(
                    fragment_id=fragment_id,
                    estimated_iterations=site.local_iterations(),
                    payload=site.to_compact_site(),
                )
            )
        for fragment_id in result.dropped:
            updates.append(
                PinUpdate(fragment_id=fragment_id, estimated_iterations=0, remove=True)
            )
        try:
            if isinstance(self._pool, PlacedWorkerPool):
                new_plan = self._pool.plan.remap(surviving)
                self._pool.apply_refragmentation(updates, new_plan)
                if isinstance(self._placement, PlacementPlan):
                    self._placement = new_plan
            else:
                self._pool.repin(updates)
        except Exception:
            # A broken apply (dead worker mid-redraw, barrier timeout) must
            # not leave half-reorganised replicas behind.
            self._pool.restart(engine.catalog)

    def _repin_dirty(self, dirty_fragments: List[int]) -> None:
        """Push the dirty fragments' new state into the resident workers."""
        if self._pool is None:
            return
        engine = self._current_engine
        assert engine is not None
        applied = self._database.last_delta
        updates: List[PinUpdate] = []
        for fragment_id in dirty_fragments:
            site = engine.catalog.site(fragment_id)
            delta = applied.site_deltas.get(fragment_id) if applied is not None else None
            # The payload is always supplied: live workers receive the small
            # delta when one exists, but the pool needs the refreshed site to
            # keep its respawn-initialisation list current.
            updates.append(
                PinUpdate(
                    fragment_id=fragment_id,
                    estimated_iterations=site.local_iterations(),
                    delta=delta,
                    payload=site.to_compact_site(),
                )
            )
        placed = isinstance(self._pool, PlacedWorkerPool)
        deferred_before = self._pool.replica_repins_deferred if placed else 0
        try:
            self._pool.repin(updates)
            if placed:
                self._stats.replica_repins_deferred += (
                    self._pool.replica_repins_deferred - deferred_before
                )
        except Exception:
            # A broken broadcast (dead worker, barrier timeout) must not
            # leave stale replicas behind: fall back to a full restart.
            self._pool.restart(engine.catalog)

    def _live_placement_plan(self) -> Optional[PlacementPlan]:
        """The batch planner's view of the current placement (``None`` = blind)."""
        if self._placement is None or not self._workers:
            # In-process evaluation never consumes owner groups: planning
            # them (and reporting placement-aware batches) would be noise.
            return None
        if isinstance(self._pool, PlacedWorkerPool):
            return self._pool.plan
        return self.placement_plan

    def _refresh_engine(self) -> DisconnectionSetEngine:
        engine = self._database.engine()
        if engine is not self._current_engine:
            self._current_engine = engine
            self._planner = QueryPlanner(engine.catalog, max_chains=self._max_chains)
            self._batch_planner = BatchPlanner(
                self._planner, placement_provider=self._live_placement_plan
            )
            if self._pool is not None:
                self._pool.restart(engine.catalog)
        return engine

    def _ensure_pool(self) -> WorkerPool:
        """Return the worker pool, building it (and its plan) on first use."""
        if self._pool is not None:
            return self._pool
        engine = self._current_engine
        assert engine is not None
        if self._placement is None:
            self._pool = ResidentWorkerPool(engine.catalog, processes=self._workers)
            return self._pool
        plan = self.placement_plan
        assert plan is not None
        self._pool = PlacedWorkerPool(engine.catalog, plan)
        return self._pool

    def _evaluate_tasks(
        self,
        tasks: Sequence[TaskKey],
        *,
        owner_groups: Optional[Dict[int, List[TaskKey]]] = None,
    ) -> Dict[TaskKey, LocalQueryResult]:
        engine = self._current_engine
        assert engine is not None
        with self._tracer.span("evaluate", tasks=len(tasks)) as espan:
            if self._workers:
                pool = self._ensure_pool()
                if isinstance(pool, PlacedWorkerPool):
                    espan.set("pool", "placed")
                    refreshes_before = pool.replica_refreshes
                    results = pool.evaluate(
                        tasks,
                        owner_groups=owner_groups,
                        trace_id=self._tracer.current_trace_id,
                    )
                    self._stats.replica_refreshes += (
                        pool.replica_refreshes - refreshes_before
                    )
                    # Per-owner load comes from the pool's actual routing
                    # (which may differ from plan ownership when a replica or
                    # respawned worker ran a task), accumulated here so it
                    # survives pool restarts.
                    for worker, count in pool.last_route_counts.items():
                        self._stats.per_owner_dispatch[worker] = (
                            self._stats.per_owner_dispatch.get(worker, 0) + count
                        )
                    self._stats.observe_owner_queues(
                        owner_count=pool.worker_count,
                        queue_depth_peak=pool.queue_depth_peak,
                        queue_depth=pool.queue_depth,
                    )
                    # Fold the workers' drained in-process registries into the
                    # service registry (kernel time/tuples per worker+fragment)
                    # and attach worker-side spans: one worker_evaluate span
                    # per owner that ran tasks, parenting one kernel span per
                    # task it evaluated.  Durations were timed inside the
                    # worker processes and shipped back with the results.
                    for payload in pool.last_worker_metrics:
                        self._registry.merge_dict(payload)
                    by_worker: Dict[int, List[TaskKey]] = {}
                    for key, worker in pool.last_task_workers.items():
                        by_worker.setdefault(worker, []).append(key)
                    for worker, keys in sorted(by_worker.items()):
                        worker_span = self._tracer.remote_span(
                            "worker_evaluate",
                            sum(results[k].statistics.elapsed_seconds for k in keys),
                            worker=worker,
                            tasks=len(keys),
                            # The trace id the worker echoed back over its
                            # result channel: proof the client's context
                            # actually crossed the task queue.
                            trace_echo=pool.last_trace_ids.get(worker),
                        )
                        for key in keys:
                            self._tracer.remote_span(
                                "kernel",
                                results[key].statistics.elapsed_seconds,
                                parent=worker_span,
                                worker=worker,
                                fragment=key[0],
                                backend=results[key].backend,
                                overlay=results[key].overlay,
                            )
                else:
                    espan.set("pool", "replicated")
                    results = pool.evaluate(tasks)
                    # Replicated workers keep no persistent registry, so
                    # their dispatch decisions are re-counted here from the
                    # backend each payload reports (exactly one kernel
                    # selection happens per reachability task).
                    selections = self._registry.counter(
                        KERNEL_SELECTIONS_COUNTER,
                        "Closure kernel backend selections by dispatch context.",
                        labelnames=("backend", "context"),
                    )
                    for key in tasks:
                        if results[key].backend in KERNEL_BACKENDS:
                            selections.inc(
                                backend=results[key].backend, context="local_query"
                            )
                        self._tracer.remote_span(
                            "kernel",
                            results[key].statistics.elapsed_seconds,
                            fragment=key[0],
                            backend=results[key].backend,
                            overlay=results[key].overlay,
                        )
            else:
                espan.set("pool", "in-process")
                results = {}
                # The evaluator already timed each kernel; aggregate the
                # durations per fragment and attach one kernel span per
                # fragment, so trace size (and hot-path span cost) is
                # bounded by the layout rather than the batch's task count.
                tracing = self._tracer.current_span is not None
                kernel_seconds: Dict[int, float] = {}
                kernel_tasks: Dict[int, int] = {}
                kernel_backends: Dict[int, Optional[str]] = {}
                kernel_overlays: Dict[int, bool] = {}
                for key in tasks:
                    fragment_id, entry_nodes, exit_nodes = key
                    spec = LocalQuerySpec(
                        fragment_id=fragment_id,
                        entry_nodes=entry_nodes,
                        exit_nodes=exit_nodes,
                    )
                    result = self._evaluator.evaluate(
                        engine.catalog.site(fragment_id), spec
                    )
                    results[key] = result
                    if tracing:
                        kernel_seconds[fragment_id] = (
                            kernel_seconds.get(fragment_id, 0.0)
                            + result.statistics.elapsed_seconds
                        )
                        kernel_tasks[fragment_id] = (
                            kernel_tasks.get(fragment_id, 0) + 1
                        )
                        kernel_backends[fragment_id] = result.backend
                        kernel_overlays[fragment_id] = (
                            kernel_overlays.get(fragment_id, False) or result.overlay
                        )
                if tracing:
                    attach = self._tracer.attach_span
                    for fragment_id, seconds in kernel_seconds.items():
                        attach(
                            "kernel",
                            seconds,
                            fragment=fragment_id,
                            tasks=kernel_tasks[fragment_id],
                            backend=kernel_backends[fragment_id],
                            overlay=kernel_overlays[fragment_id],
                        )
                # In-process selections and overlay counters land on the
                # module-level registries; fold the deltas here so scrapes
                # between queries stay fresh.
                merge_selection_metrics(self._registry)
                merge_overlay_metrics(self._registry)
        # One dispatch per *task*: a batch of n shared subqueries records n
        # site dispatches, never one per batch.
        for key in tasks:
            self._stats.record_dispatch(key[0])
        return results
