"""Snapshot store: pay the preparation once, reload it per process.

The expensive half of the disconnection set approach is preparation —
fragmenting the base relation and precomputing the complementary information
(one global search per border node).  A snapshot captures the prepared state
— base graph, fragment edge lists, complementary values — in a directory with
a JSON manifest and a binary payload, so a serving process reloads a ready
:class:`~repro.disconnection.engine.DisconnectionSetEngine` without redoing
any search work.

The payload deliberately stores *plain data* (edge tuples, value mappings)
rather than pickling live engine objects: the wire format stays inspectable,
stable across refactors of the in-memory classes, and restricted to the two
standard semirings whose values (floats / booleans) serialise losslessly.
The manifest carries a content hash that doubles as the catalog version for
the result cache.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Hashable, List, Optional, Tuple, Union

from ..closure import Semiring
from ..disconnection import CompactFragmentSite, ComplementaryInformation, DisconnectionSetEngine
from ..exceptions import ReproError
from ..fragmentation import Fragmentation
from ..graph import DiGraph, Point
from ..incremental import VersionVector
from ..placement import PlacementPlan
from .pool import semiring_from_name

Node = Hashable
PathLike = Union[str, Path]

MANIFEST_FILE = "manifest.json"
PAYLOAD_FILE = "payload.pkl"
SNAPSHOT_FORMAT = "repro-snapshot-v1"


class SnapshotError(ReproError):
    """A snapshot directory is missing, corrupt, or incompatible."""


@dataclass
class SnapshotPayload:
    """The plain-data body of a snapshot (everything needed to rebuild an engine).

    ``compact_fragments`` carries each site's prepared kernel form — the
    augmented :class:`~repro.graph.compact.CompactGraph` state (interned node
    list + CSR arrays) and the cached iteration estimate — so a reloaded
    service starts with warm kernels and never rebuilds adjacency.
    ``version_vector`` persists the per-fragment update versions, so a
    restored service resumes its incremental-maintenance stream instead of
    restarting from version zero.  ``placement`` persists the fragment ->
    owner-worker plan a routed pool was serving with (migrations included),
    and ``delta_sequence`` records where in the source database's delta log
    the snapshot was taken — the position a restored service replays a live
    log's tail from.  All of these are derived/operational data: the content
    hash deliberately excludes them, and snapshots written before they
    existed reload fine without them.
    """

    nodes: List[Node]
    edges: List[Tuple[Node, Node, float]]
    coordinates: Dict[Node, Tuple[float, float]]
    fragment_edges: List[List[Tuple[Node, Node]]]
    algorithm: str
    semiring_name: str
    complementary_values: Dict[Tuple[int, int], Dict[Tuple[Node, Node], object]]
    complementary_paths: Dict[Tuple[int, int], Dict[Tuple[Node, Node], List[Node]]]
    precompute_work: int = 0
    compact_fragments: Dict[int, Dict[str, object]] = field(default_factory=dict)
    version_vector: Dict[str, object] = field(default_factory=dict)
    placement: Dict[str, object] = field(default_factory=dict)
    delta_sequence: int = 0


@dataclass
class SnapshotManifest:
    """The JSON-visible description of a snapshot.

    Attributes:
        version: content hash of the payload; the service uses it as the
            catalog version in cache keys, so two snapshots of the same state
            share cached results.
        semiring_name / algorithm: what was prepared and how.
        fragment_count / node_count / edge_count / complementary_facts:
            size figures (the paper's storage-overhead accounting).
        format: payload format tag, checked on load.
    """

    version: str
    semiring_name: str
    algorithm: str
    fragment_count: int
    node_count: int
    edge_count: int
    complementary_facts: int
    format: str = SNAPSHOT_FORMAT

    def as_dict(self) -> Dict[str, object]:
        """Return the manifest as a JSON-serialisable dictionary."""
        return {
            "format": self.format,
            "version": self.version,
            "semiring": self.semiring_name,
            "algorithm": self.algorithm,
            "fragment_count": self.fragment_count,
            "node_count": self.node_count,
            "edge_count": self.edge_count,
            "complementary_facts": self.complementary_facts,
        }

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "SnapshotManifest":
        """Rebuild a manifest from its JSON dictionary."""
        return cls(
            version=str(document["version"]),
            semiring_name=str(document["semiring"]),
            algorithm=str(document["algorithm"]),
            fragment_count=int(document["fragment_count"]),  # type: ignore[arg-type]
            node_count=int(document["node_count"]),  # type: ignore[arg-type]
            edge_count=int(document["edge_count"]),  # type: ignore[arg-type]
            complementary_facts=int(document["complementary_facts"]),  # type: ignore[arg-type]
            format=str(document.get("format", SNAPSHOT_FORMAT)),
        )


@dataclass
class LoadedSnapshot:
    """A reloaded snapshot: the prepared state plus its manifest."""

    manifest: SnapshotManifest
    fragmentation: Fragmentation
    complementary: ComplementaryInformation
    semiring: Semiring
    compact_sites: Dict[int, CompactFragmentSite] = field(default_factory=dict)
    version_vector: VersionVector = field(default_factory=VersionVector)
    placement_plan: Optional[PlacementPlan] = None
    delta_sequence: int = 0

    def build_engine(self, **kwargs) -> DisconnectionSetEngine:
        """Return a query engine over the snapshot — no search work recomputed.

        The persisted compact fragments seed the engine's kernel caches, so
        not even adjacency indexing is redone.
        """
        kwargs.setdefault("compact_sites", self.compact_sites)
        return DisconnectionSetEngine(
            self.fragmentation,
            semiring=self.semiring,
            complementary=self.complementary,
            **kwargs,
        )


# ----------------------------------------------------------- payload building


def _payload_from_engine(
    engine: DisconnectionSetEngine,
    *,
    version_vector: Optional[VersionVector] = None,
    placement: Optional[PlacementPlan] = None,
    delta_sequence: int = 0,
) -> SnapshotPayload:
    catalog = engine.catalog
    fragmentation = catalog.fragmentation
    semiring_from_name(catalog.semiring.name)  # reject non-serialisable semirings early
    graph = fragmentation.graph
    complementary = catalog.complementary
    compact_fragments = {
        fragment_id: {
            "state": compact_site.state,
            "iterations": compact_site.estimated_iterations,
        }
        for fragment_id, compact_site in catalog.compact_sites().items()
    }
    return SnapshotPayload(
        nodes=list(graph.nodes()),
        edges=list(graph.weighted_edges()),
        coordinates={node: (point.x, point.y) for node, point in graph.coordinates().items()},
        fragment_edges=[sorted(fragment.edges, key=repr) for fragment in fragmentation.fragments],
        algorithm=fragmentation.algorithm,
        semiring_name=catalog.semiring.name,
        complementary_values={pair: dict(values) for pair, values in complementary.values.items()},
        complementary_paths={
            pair: {key: list(path) for key, path in paths.items()}
            for pair, paths in complementary.paths.items()
        },
        precompute_work=complementary.precompute_work,
        compact_fragments=compact_fragments,
        version_vector=version_vector.as_dict() if version_vector is not None else {},
        placement=placement.as_dict() if placement is not None else {},
        delta_sequence=delta_sequence,
    )


def compute_version(payload: SnapshotPayload) -> str:
    """Return the content hash of a payload (the snapshot / catalog version)."""
    digest = hashlib.sha256()
    canonical = (
        sorted(payload.nodes, key=repr),
        sorted(payload.edges, key=repr),
        sorted(payload.coordinates.items(), key=repr),
        [sorted(edges, key=repr) for edges in payload.fragment_edges],
        payload.algorithm,
        payload.semiring_name,
        sorted(
            (pair, sorted(values.items(), key=repr))
            for pair, values in payload.complementary_values.items()
        ),
    )
    digest.update(repr(canonical).encode("utf-8"))
    return digest.hexdigest()[:16]


# ----------------------------------------------------------------- save / load


def save_snapshot(
    directory: PathLike,
    engine: DisconnectionSetEngine,
    *,
    version_vector: Optional[VersionVector] = None,
    placement: Optional[PlacementPlan] = None,
    delta_sequence: int = 0,
) -> SnapshotManifest:
    """Serialise a prepared engine into ``directory`` and return its manifest.

    ``version_vector`` (when given) persists the per-fragment update
    versions, ``placement`` the fragment -> owner-worker plan, and
    ``delta_sequence`` the source delta log's position at snapshot time
    (what a restored service replays a live log from).  Like the compact
    fragments they are operational data and excluded from the content hash.
    """
    payload = _payload_from_engine(
        engine,
        version_vector=version_vector,
        placement=placement,
        delta_sequence=delta_sequence,
    )
    manifest = SnapshotManifest(
        version=compute_version(payload),
        semiring_name=payload.semiring_name,
        algorithm=payload.algorithm,
        fragment_count=len(payload.fragment_edges),
        node_count=len(payload.nodes),
        edge_count=len(payload.edges),
        complementary_facts=sum(len(values) for values in payload.complementary_values.values()),
    )
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    (target / PAYLOAD_FILE).write_bytes(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    (target / MANIFEST_FILE).write_text(json.dumps(manifest.as_dict(), indent=2, sort_keys=True))
    return manifest


def is_snapshot_directory(directory: PathLike) -> bool:
    """Return ``True`` when ``directory`` looks like a saved snapshot."""
    target = Path(directory)
    return (target / MANIFEST_FILE).is_file() and (target / PAYLOAD_FILE).is_file()


def load_snapshot(directory: PathLike) -> LoadedSnapshot:
    """Reload a snapshot directory into a ready-to-query state.

    Raises:
        SnapshotError: when the directory is not a snapshot or its format tag
            is not understood.
    """
    target = Path(directory)
    if not is_snapshot_directory(target):
        raise SnapshotError(f"{target} is not a snapshot directory (missing manifest or payload)")
    manifest = SnapshotManifest.from_dict(json.loads((target / MANIFEST_FILE).read_text()))
    if manifest.format != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"snapshot format {manifest.format!r} is not supported (expected {SNAPSHOT_FORMAT!r})"
        )
    payload: SnapshotPayload = pickle.loads((target / PAYLOAD_FILE).read_bytes())
    actual_version = compute_version(payload)
    if actual_version != manifest.version:
        raise SnapshotError(
            f"snapshot payload does not match its manifest (payload hashes to "
            f"{actual_version}, manifest says {manifest.version}) — the directory "
            "is corrupt or mixes files from different snapshots"
        )
    graph = DiGraph()
    for node in payload.nodes:
        graph.add_node(node)
    for source, target_node, weight in payload.edges:
        graph.add_edge(source, target_node, weight)
    for node, (x, y) in payload.coordinates.items():
        graph.set_coordinate(node, Point(x, y))
    fragmentation = Fragmentation(graph, payload.fragment_edges, algorithm=payload.algorithm)
    complementary = ComplementaryInformation(
        semiring_name=payload.semiring_name,
        values={pair: dict(values) for pair, values in payload.complementary_values.items()},
        paths={
            pair: {key: list(path) for key, path in paths.items()}
            for pair, paths in payload.complementary_paths.items()
        },
        precompute_work=payload.precompute_work,
    )
    compact_sites = {
        fragment_id: CompactFragmentSite(
            fragment_id=fragment_id,
            state=entry["state"],  # type: ignore[arg-type]
            estimated_iterations=int(entry["iterations"]),  # type: ignore[arg-type]
        )
        for fragment_id, entry in getattr(payload, "compact_fragments", {}).items()
    }
    placement_state = getattr(payload, "placement", {}) or {}
    return LoadedSnapshot(
        manifest=manifest,
        fragmentation=fragmentation,
        complementary=complementary,
        semiring=semiring_from_name(payload.semiring_name),
        compact_sites=compact_sites,
        version_vector=VersionVector.from_dict(getattr(payload, "version_vector", {}) or {}),
        placement_plan=PlacementPlan.from_dict(placement_state) if placement_state else None,
        delta_sequence=int(getattr(payload, "delta_sequence", 0)),
    )


class SnapshotStore:
    """A directory of named snapshots (one subdirectory per snapshot).

    Args:
        root: the directory holding the snapshots (created lazily).
    """

    def __init__(self, root: PathLike) -> None:
        self._root = Path(root)

    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    def path(self, name: str) -> Path:
        """Return the directory a snapshot of this name lives in."""
        return self._root / name

    def save(self, name: str, engine: DisconnectionSetEngine) -> SnapshotManifest:
        """Save a prepared engine under ``name`` and return the manifest."""
        return save_snapshot(self.path(name), engine)

    def load(self, name: str) -> LoadedSnapshot:
        """Reload the snapshot saved under ``name``."""
        return load_snapshot(self.path(name))

    def manifest(self, name: str) -> SnapshotManifest:
        """Read only the manifest of a snapshot (no payload deserialisation)."""
        manifest_path = self.path(name) / MANIFEST_FILE
        if not manifest_path.is_file():
            raise SnapshotError(f"no snapshot named {name!r} under {self._root}")
        return SnapshotManifest.from_dict(json.loads(manifest_path.read_text()))

    def list_snapshots(self) -> List[str]:
        """Return the names of every snapshot in the store, sorted."""
        if not self._root.is_dir():
            return []
        return sorted(
            entry.name for entry in self._root.iterdir() if is_snapshot_directory(entry)
        )
