"""Batch planning: answer many queries with one pass of local work.

A serving workload arrives in batches, and the disconnection set approach
makes batches unusually cheap: every query decomposes into per-fragment
``(fragment, entry set, exit set)`` subqueries, and queries whose chains share
a fragment pair share the *identical* border-to-border subquery — the entry
and exit sets are the disconnection sets, independent of the endpoints.  The
batch planner therefore:

1. deduplicates the submitted ``(source, target)`` pairs,
2. plans each distinct query (grouping its chains),
3. pools the local query specs of *all* chains of *all* queries into one
   duplicate-free task list, so shared subqueries are evaluated exactly once
   and the fan-out to worker sites happens in a single round, and
4. under a shared-nothing placement, groups that task list per *owner
   worker* (``owner_groups``), so the routed pool ships exactly one message
   per owner with the whole batch's work for that owner — the batch is
   planned placement-aware instead of placement-blind.

The saved work is reported per batch (``shared_subqueries_saved``,
``duplicate_queries_saved``) and surfaces in the service statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..disconnection.planner import QueryPlan, QueryPlanner
from ..exceptions import NoChainError
from ..placement import PlacementError, PlacementPlan
from .pool import TaskKey

Node = Hashable
Query = Tuple[Node, Node]


@dataclass
class BatchPlan:
    """The shared execution plan for one batch of queries.

    Attributes:
        queries: the batch as submitted (duplicates included).
        unique_queries: the distinct queries, in first-appearance order.
        assignments: for every submitted query, the index of its distinct
            query in ``unique_queries``.
        plans: per distinct query, its :class:`QueryPlan` (``None`` when
            planning failed — see ``errors``).
        errors: per distinct-query index, the planning error message
            (endpoints not stored / no connecting chain).
        tasks: the duplicate-free union of every chain's local query specs.
        spec_references: how many spec references the chains contain in
            total; ``spec_references - len(tasks)`` evaluations were saved.
        chain_groups: fragment chain -> indices of the distinct queries whose
            plans use that chain (the grouping that exposes the sharing).
        owner_groups: owner worker -> the batch's tasks for that owner, in
            task order (empty when the batch was planned without a placement
            plan).  The routed pool ships each group as one message.
        planning_seconds: wall-clock seconds :meth:`BatchPlanner.plan_batch`
            spent producing this plan (the service's planning histogram and
            the batch-planning trace span read it).
    """

    queries: List[Query]
    unique_queries: List[Query] = field(default_factory=list)
    assignments: List[int] = field(default_factory=list)
    plans: List[Optional[QueryPlan]] = field(default_factory=list)
    errors: Dict[int, str] = field(default_factory=dict)
    tasks: List[TaskKey] = field(default_factory=list)
    spec_references: int = 0
    chain_groups: Dict[Tuple[int, ...], List[int]] = field(default_factory=dict)
    owner_groups: Dict[int, List[TaskKey]] = field(default_factory=dict)
    planning_seconds: float = 0.0

    def duplicate_queries_saved(self) -> int:
        """Return how many submitted queries were answered by deduplication."""
        return len(self.queries) - len(self.unique_queries)

    def shared_subqueries_saved(self) -> int:
        """Return how many local evaluations the pooled task list avoided."""
        return self.spec_references - len(self.tasks)

    def owner_rounds(self) -> int:
        """Return how many routed messages the placement-aware grouping ships."""
        return len(self.owner_groups)


class BatchPlanner:
    """Plans batches of queries over a :class:`QueryPlanner`.

    Args:
        planner: the per-query planner.
        placement_provider: optional zero-argument callable returning the
            live :class:`~repro.placement.plan.PlacementPlan` (or ``None``).
            When it yields a plan, every batch is additionally grouped per
            owner worker — consulted at plan time, so the grouping always
            reflects the *current* placement, migrations included.
    """

    def __init__(
        self,
        planner: QueryPlanner,
        *,
        placement_provider: Optional[Callable[[], Optional[PlacementPlan]]] = None,
    ) -> None:
        self._planner = planner
        self._placement_provider = placement_provider

    def plan_batch(self, queries: Sequence[Query]) -> BatchPlan:
        """Return the shared :class:`BatchPlan` for ``queries``.

        Planning failures (unknown endpoints, no connecting chain) do not
        abort the batch; the affected queries are recorded in ``errors`` and
        the rest of the batch proceeds.
        """
        started = perf_counter()
        batch = BatchPlan(queries=list(queries))
        index_of: Dict[Query, int] = {}
        for query in batch.queries:
            if query not in index_of:
                index_of[query] = len(batch.unique_queries)
                batch.unique_queries.append(query)
            batch.assignments.append(index_of[query])

        seen_tasks: Dict[TaskKey, None] = {}
        for unique_index, (source, target) in enumerate(batch.unique_queries):
            try:
                plan = self._planner.plan(source, target)
            except NoChainError as error:
                batch.plans.append(None)
                batch.errors[unique_index] = str(error)
                continue
            batch.plans.append(plan)
            for chain_plan in plan.chains:
                batch.chain_groups.setdefault(chain_plan.chain, []).append(unique_index)
                for spec in chain_plan.local_queries:
                    batch.spec_references += 1
                    seen_tasks.setdefault(spec.key(), None)
        batch.tasks = list(seen_tasks)
        placement = self._placement_provider() if self._placement_provider else None
        if placement is not None and batch.tasks:
            try:
                for task in batch.tasks:
                    batch.owner_groups.setdefault(placement.owner(task[0]), []).append(task)
            except PlacementError:
                # A fragment the plan does not place (e.g. a query planned
                # mid-reorganisation): fall back to placement-blind routing
                # rather than ship a partial grouping.
                batch.owner_groups = {}
        batch.planning_seconds = perf_counter() - started
        return batch
