"""Resident worker pool: fragment sites pinned in long-lived processes.

The per-query executor of :mod:`repro.parallel.executor` originally spawned a
fresh ``multiprocessing.Pool`` for every query, re-shipping every fragment
site each time; for a serving workload that start-up cost dwarfs the local
evaluation the paper parallelises.  :class:`ResidentWorkerPool` keeps the
workers alive for the lifetime of the service: each worker receives the
fragment sites exactly once at start-up — in their *compact* form
(:class:`~repro.disconnection.catalog.CompactFragmentSite`: augmented CSR
arrays plus the interned node list, which pickle as flat buffers instead of
dict-of-dicts adjacency) — and per-query messages carry only the
``(fragment, entry, exit)`` specs and the per-fragment path relations coming
back, which is what the paper's final joins consume.  Workers evaluate
directly with the compact kernels; no ``DiGraph`` is ever rebuilt inside a
worker.

Note on placement fidelity: every worker currently pins a *replica* of all
sites, so any worker can evaluate any fragment's spec (simple scheduling, at
the cost of catalog-size x workers resident memory).  Routing each fragment
to a dedicated owner process — the paper's true shared-nothing placement —
needs per-worker task queues and is left for a sharding PR.

Only the two standard semirings are supported because semiring callables do
not pickle; the sequential fallback of the service handles arbitrary
semirings in-process.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

from ..closure import ClosureStatistics, Semiring, reachability_semiring, shortest_path_semiring
from ..disconnection import LocalQueryEvaluator, LocalQueryResult
from ..disconnection.catalog import CompactFragmentSite, DistributedCatalog
from ..disconnection.planner import LocalQuerySpec
from ..graph.compact import CompactDelta

Node = Hashable
TaskKey = Tuple[int, FrozenSet[Node], FrozenSet[Node]]

PICKLABLE_SEMIRINGS = ("shortest_path", "reachability")

REPIN_TIMEOUT_SECONDS = 30.0

# Module-level worker state, initialised once per worker process.
_WORKER_SITES: Dict[int, CompactFragmentSite] = {}
_WORKER_EVALUATOR: Optional[LocalQueryEvaluator] = None
_WORKER_BARRIER: Optional[multiprocessing.synchronize.Barrier] = None


@dataclass(frozen=True)
class PinUpdate:
    """One fragment's re-pin message after an incremental update.

    The scoped alternative to restarting the pool: only the dirty fragment
    crosses the process boundary, and when the coordinator knows the exact
    compact delta, only the delta does.

    Attributes:
        fragment_id: the fragment to refresh.
        estimated_iterations: the fragment's new iteration estimate.
        delta: the augmented graph's edge delta (applied in place to the
            worker's pinned replica); when present, only the delta crosses
            the process boundary.
        payload: the fragment's full refreshed compact site.  Live workers
            receive it only when no delta is available, but the pool always
            folds it into its parent-side pinned list so a worker process
            respawned later (after a crash) re-initialises from current
            state, not from the sites captured at pool start.
    """

    fragment_id: int
    estimated_iterations: int
    delta: Optional[CompactDelta] = None
    payload: Optional[CompactFragmentSite] = None


def semiring_from_name(name: str) -> Semiring:
    """Reconstruct one of the standard (picklable / serialisable) semirings.

    Raises:
        ValueError: for a non-standard semiring name; those carry callables
            that cannot cross a process or snapshot boundary.
    """
    if name == "reachability":
        return reachability_semiring()
    if name == "shortest_path":
        return shortest_path_semiring()
    raise ValueError(
        f"semiring {name!r} is not one of the standard semirings {PICKLABLE_SEMIRINGS}"
    )


def _worker_init(
    sites: List[CompactFragmentSite],
    semiring_name: str,
    barrier: Optional["multiprocessing.synchronize.Barrier"] = None,
) -> None:
    """Initialise a worker process with its pinned compact sites and evaluator."""
    global _WORKER_SITES, _WORKER_EVALUATOR, _WORKER_BARRIER
    _WORKER_SITES = {site.fragment_id: site for site in sites}
    _WORKER_EVALUATOR = LocalQueryEvaluator(semiring=semiring_from_name(semiring_name))
    _WORKER_BARRIER = barrier


def _worker_repin(updates: Sequence[PinUpdate]) -> int:
    """Apply pin updates inside one worker; returns the fragments refreshed.

    The coordinator submits exactly one copy of this task per worker
    (chunksize 1) and every copy blocks on the shared barrier before
    returning, which guarantees each worker takes exactly one copy — a
    broadcast over a work-stealing pool.
    """
    assert _WORKER_BARRIER is not None
    _WORKER_BARRIER.wait(timeout=REPIN_TIMEOUT_SECONDS)
    refreshed = 0
    for update in updates:
        if update.delta is not None and update.fragment_id in _WORKER_SITES:
            _WORKER_SITES[update.fragment_id].apply_delta(
                update.delta, update.estimated_iterations
            )
            refreshed += 1
        elif update.payload is not None:
            _WORKER_SITES[update.fragment_id] = update.payload
            refreshed += 1
    return refreshed


def _worker_evaluate(task: TaskKey) -> Tuple[TaskKey, Dict]:
    """Evaluate one local query spec inside a worker process."""
    fragment_id, entry_nodes, exit_nodes = task
    spec = LocalQuerySpec(fragment_id=fragment_id, entry_nodes=entry_nodes, exit_nodes=exit_nodes)
    assert _WORKER_EVALUATOR is not None
    result = _WORKER_EVALUATOR.evaluate(_WORKER_SITES[fragment_id], spec)
    # Ship back a plain dict; LocalQueryResult contains only picklable data but
    # keeping the wire format explicit makes the message size obvious.
    return task, {
        "values": dict(result.values),
        "iterations": result.estimated_iterations,
        "tuples": result.statistics.tuples_produced,
    }


def result_from_payload(
    key: TaskKey, payload: Dict, *, semiring: Optional[Semiring] = None
) -> LocalQueryResult:
    """Rebuild a :class:`LocalQueryResult` from a worker's wire payload.

    The semiring is re-attached on the coordinator side (callables never
    cross the process boundary) so ``exit_values`` picks "best" correctly.
    """
    statistics = ClosureStatistics()
    statistics.tuples_produced = payload["tuples"]
    return LocalQueryResult(
        fragment_id=key[0],
        values=dict(payload["values"]),
        statistics=statistics,
        estimated_iterations=payload["iterations"],
        semiring=semiring,
    )


class ResidentWorkerPool:
    """A persistent pool of worker processes holding the fragment sites.

    Args:
        catalog: the distributed catalog whose sites the workers pin.
        processes: number of worker processes (defaults to the fragment
            count, capped at the CPU count).

    The pool is started eagerly so the site shipping cost is paid at
    construction, not on the first query.  Use :meth:`close` (or a ``with``
    block) to release the workers; :meth:`restart` re-pins the sites of a new
    catalog after the base relation changed.
    """

    def __init__(self, catalog: DistributedCatalog, *, processes: Optional[int] = None) -> None:
        if catalog.semiring.name not in PICKLABLE_SEMIRINGS:
            raise ValueError(
                "the resident worker pool supports the "
                f"{' and '.join(PICKLABLE_SEMIRINGS)} semirings only"
            )
        default_processes = min(catalog.site_count(), multiprocessing.cpu_count())
        self._processes = max(1, processes if processes is not None else default_processes)
        self._semiring_name = catalog.semiring.name
        self._semiring = semiring_from_name(self._semiring_name)
        self.dispatch_counts: Dict[int, int] = {}
        self.repins = 0
        self.repinned_fragments = 0
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._barrier: Optional[multiprocessing.synchronize.Barrier] = None
        self._start(catalog)

    def _start(self, catalog: DistributedCatalog) -> None:
        # The pinned list is shared with the Pool's respawn machinery: a
        # worker that dies is re-initialised from these initargs, so repin()
        # must keep the list current or a respawned worker would silently
        # serve the state captured at pool start.
        self._pinned_sites = list(catalog.compact_sites().values())
        self._barrier = multiprocessing.Barrier(self._processes)
        self._pool = multiprocessing.Pool(
            processes=self._processes,
            initializer=_worker_init,
            initargs=(self._pinned_sites, self._semiring_name, self._barrier),
        )

    # ------------------------------------------------------------ accessors

    @property
    def worker_count(self) -> int:
        """The number of resident worker processes."""
        return self._processes

    def is_running(self) -> bool:
        """Return ``True`` while the workers are alive."""
        return self._pool is not None

    # ------------------------------------------------------------ operations

    def evaluate(self, tasks: Sequence[TaskKey]) -> Dict[TaskKey, LocalQueryResult]:
        """Evaluate the (already deduplicated) tasks across the resident workers.

        Returns a mapping from task key to the per-fragment path relation.

        Raises:
            RuntimeError: if the pool was closed.
        """
        if self._pool is None:
            raise RuntimeError("the resident worker pool has been closed")
        results: Dict[TaskKey, LocalQueryResult] = {}
        if not tasks:
            return results
        for key, payload in self._pool.map(_worker_evaluate, tasks):
            results[key] = result_from_payload(key, payload, semiring=self._semiring)
            self.dispatch_counts[key[0]] = self.dispatch_counts.get(key[0], 0) + 1
        return results

    def repin(self, updates: Sequence[PinUpdate]) -> None:
        """Refresh only the given fragments in every worker, without a restart.

        The broadcast submits one repin task per worker; a shared barrier
        makes each worker take exactly one, so after this call returns every
        worker's replica of the dirty fragments matches the coordinator —
        all other pinned fragments (and the processes themselves, with their
        warm state) are untouched.  This is the scoped counterpart of
        :meth:`restart`, whose full re-ship is only needed when the whole
        catalog changed.

        Raises:
            RuntimeError: if the pool was closed.
        """
        if self._pool is None:
            raise RuntimeError("the resident worker pool has been closed")
        if not updates:
            return
        # Live workers get the small delta when one exists; the full payload
        # only crosses the boundary when a replica must be replaced wholesale.
        wire_updates = [
            PinUpdate(
                fragment_id=update.fragment_id,
                estimated_iterations=update.estimated_iterations,
                delta=update.delta,
                payload=None if update.delta is not None else update.payload,
            )
            for update in updates
        ]
        self._pool.map(_worker_repin, [wire_updates] * self._processes, 1)
        for update in updates:
            if update.payload is None:
                continue
            for index, pinned in enumerate(self._pinned_sites):
                if pinned.fragment_id == update.fragment_id:
                    self._pinned_sites[index] = update.payload
                    break
            else:
                self._pinned_sites.append(update.payload)
        self.repins += 1
        self.repinned_fragments += len(updates)

    def restart(self, catalog: DistributedCatalog) -> None:
        """Replace the pinned sites with those of ``catalog`` (after an update)."""
        if catalog.semiring.name != self._semiring_name:
            raise ValueError(
                f"cannot restart a {self._semiring_name} pool with a "
                f"{catalog.semiring.name} catalog"
            )
        self.close()
        self._start(catalog)

    def close(self) -> None:
        """Terminate the worker processes (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    # --------------------------------------------------------------- context

    def __enter__(self) -> "ResidentWorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
