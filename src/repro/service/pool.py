"""Resident worker pool: fragment sites pinned in long-lived processes.

The per-query executor of :mod:`repro.parallel.executor` originally spawned a
fresh ``multiprocessing.Pool`` for every query, re-shipping every fragment
site each time; for a serving workload that start-up cost dwarfs the local
evaluation the paper parallelises.  :class:`ResidentWorkerPool` keeps the
workers alive for the lifetime of the service: each worker receives the
fragment sites exactly once at start-up — in their *compact* form
(:class:`~repro.disconnection.catalog.CompactFragmentSite`: augmented CSR
arrays plus the interned node list, which pickle as flat buffers instead of
dict-of-dicts adjacency) — and per-query messages carry only the
``(fragment, entry, exit)`` specs and the per-fragment path relations coming
back, which is what the paper's final joins consume.  Workers evaluate
directly with the compact kernels; no ``DiGraph`` is ever rebuilt inside a
worker.

Two pools implement two placement disciplines:

* :class:`ResidentWorkerPool` — every worker pins a *replica* of all sites,
  so any worker can evaluate any fragment's spec (simple work-stealing
  scheduling, at the cost of catalog-size x workers resident memory and
  broadcast re-pins).
* :class:`PlacedWorkerPool` — the paper's true shared-nothing placement: a
  :class:`~repro.placement.plan.PlacementPlan` names one *owner* worker per
  fragment (plus optional hot-fragment replicas), each worker pins **only**
  the fragments placed on it, every worker has its own routed task queue,
  re-pins go to the dirty fragment's owner(s) only, and
  :meth:`PlacedWorkerPool.migrate` moves a fragment's compact state between
  live workers without a restart.  Per-worker resident memory drops from
  ``O(fragments)`` to ``O(fragments / workers)``.

Only the two standard semirings are supported because semiring callables do
not pickle; the sequential fallback of the service handles arbitrary
semirings in-process.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

from ..closure import (
    ClosureStatistics,
    Semiring,
    merge_selection_metrics,
    reachability_semiring,
    shortest_path_semiring,
)
from ..disconnection import LocalQueryEvaluator, LocalQueryResult
from ..disconnection.catalog import CompactFragmentSite, DistributedCatalog
from ..disconnection.planner import LocalQuerySpec
from ..graph.compact import CompactDelta, merge_overlay_metrics
from ..observability import MetricsRegistry
from ..placement import PlacementError, PlacementPlan

Node = Hashable
TaskKey = Tuple[int, FrozenSet[Node], FrozenSet[Node]]

PICKLABLE_SEMIRINGS = ("shortest_path", "reachability")

# Metric names for the routed workers' in-process registries; the coordinator
# merges the drained payloads under the same names.
WORKER_KERNEL_HISTOGRAM = "repro_worker_kernel_seconds"
WORKER_TUPLES_COUNTER = "repro_worker_kernel_tuples_total"

REPIN_TIMEOUT_SECONDS = 30.0
ROUTED_REPLY_TIMEOUT_SECONDS = 60.0
_POLL_SECONDS = 0.2

# Module-level worker state, initialised once per worker process.
_WORKER_SITES: Dict[int, CompactFragmentSite] = {}
_WORKER_EVALUATOR: Optional[LocalQueryEvaluator] = None
_WORKER_BARRIER: Optional[multiprocessing.synchronize.Barrier] = None


@dataclass(frozen=True)
class PinUpdate:
    """One fragment's re-pin message after an incremental update.

    The scoped alternative to restarting the pool: only the dirty fragment
    crosses the process boundary, and when the coordinator knows the exact
    compact delta, only the delta does.

    Attributes:
        fragment_id: the fragment to refresh.
        estimated_iterations: the fragment's new iteration estimate.
        delta: the augmented graph's edge delta (applied in place to the
            worker's pinned replica); when present, only the delta crosses
            the process boundary.
        payload: the fragment's full refreshed compact site.  Live workers
            receive it only when no delta is available, but the pool always
            folds it into its parent-side pinned list so a worker process
            respawned later (after a crash) re-initialises from current
            state, not from the sites captured at pool start.
        remove: the fragment no longer exists (a refragmentation dropped
            it); workers discard their pinned copy instead of refreshing it.
    """

    fragment_id: int
    estimated_iterations: int
    delta: Optional[CompactDelta] = None
    payload: Optional[CompactFragmentSite] = None
    remove: bool = False

    def wire(self) -> "PinUpdate":
        """Return the copy that crosses the process boundary.

        Live workers get the small delta when one exists; the full payload
        only ships when a replica must be replaced wholesale.
        """
        return PinUpdate(
            fragment_id=self.fragment_id,
            estimated_iterations=self.estimated_iterations,
            delta=self.delta,
            payload=None if self.delta is not None else self.payload,
            remove=self.remove,
        )


def apply_pin_updates(
    sites: Dict[int, CompactFragmentSite], updates: Sequence[PinUpdate]
) -> int:
    """Apply pin updates to a worker's pinned-site map; returns the count refreshed.

    The single worker-side interpretation of the delta-vs-payload protocol,
    shared by the replicated and the routed pool.
    """
    refreshed = 0
    for update in updates:
        if update.remove:
            if sites.pop(update.fragment_id, None) is not None:
                refreshed += 1
        elif update.delta is not None and update.fragment_id in sites:
            sites[update.fragment_id].apply_delta(update.delta, update.estimated_iterations)
            refreshed += 1
        elif update.payload is not None:
            sites[update.fragment_id] = update.payload
            refreshed += 1
    return refreshed


def semiring_from_name(name: str) -> Semiring:
    """Reconstruct one of the standard (picklable / serialisable) semirings.

    Raises:
        ValueError: for a non-standard semiring name; those carry callables
            that cannot cross a process or snapshot boundary.
    """
    if name == "reachability":
        return reachability_semiring()
    if name == "shortest_path":
        return shortest_path_semiring()
    raise ValueError(
        f"semiring {name!r} is not one of the standard semirings {PICKLABLE_SEMIRINGS}"
    )


def _worker_init(
    sites: List[CompactFragmentSite],
    semiring_name: str,
    barrier: Optional["multiprocessing.synchronize.Barrier"] = None,
) -> None:
    """Initialise a worker process with its pinned compact sites and evaluator."""
    global _WORKER_SITES, _WORKER_EVALUATOR, _WORKER_BARRIER
    _WORKER_SITES = {site.fragment_id: site for site in sites}
    _WORKER_EVALUATOR = LocalQueryEvaluator(semiring=semiring_from_name(semiring_name))
    _WORKER_BARRIER = barrier


def _worker_repin(updates: Sequence[PinUpdate]) -> int:
    """Apply pin updates inside one worker; returns the fragments refreshed.

    The coordinator submits exactly one copy of this task per worker
    (chunksize 1) and every copy blocks on the shared barrier before
    returning, which guarantees each worker takes exactly one copy — a
    broadcast over a work-stealing pool.
    """
    assert _WORKER_BARRIER is not None
    _WORKER_BARRIER.wait(timeout=REPIN_TIMEOUT_SECONDS)
    return apply_pin_updates(_WORKER_SITES, updates)


def _worker_evaluate(task: TaskKey) -> Tuple[TaskKey, Dict]:
    """Evaluate one local query spec inside a worker process."""
    fragment_id, entry_nodes, exit_nodes = task
    spec = LocalQuerySpec(fragment_id=fragment_id, entry_nodes=entry_nodes, exit_nodes=exit_nodes)
    assert _WORKER_EVALUATOR is not None
    result = _WORKER_EVALUATOR.evaluate(_WORKER_SITES[fragment_id], spec)
    # Ship back a plain dict; LocalQueryResult contains only picklable data but
    # keeping the wire format explicit makes the message size obvious.
    return task, {
        "values": dict(result.values),
        "iterations": result.estimated_iterations,
        "tuples": result.statistics.tuples_produced,
        "elapsed": result.statistics.elapsed_seconds,
        "backend": result.backend,
        "overlay": result.overlay,
    }


def result_from_payload(
    key: TaskKey, payload: Dict, *, semiring: Optional[Semiring] = None
) -> LocalQueryResult:
    """Rebuild a :class:`LocalQueryResult` from a worker's wire payload.

    The semiring is re-attached on the coordinator side (callables never
    cross the process boundary) so ``exit_values`` picks "best" correctly.
    """
    statistics = ClosureStatistics()
    statistics.tuples_produced = payload["tuples"]
    statistics.elapsed_seconds = payload.get("elapsed", 0.0)
    return LocalQueryResult(
        fragment_id=key[0],
        values=dict(payload["values"]),
        statistics=statistics,
        estimated_iterations=payload["iterations"],
        semiring=semiring,
        backend=payload.get("backend"),
        overlay=payload.get("overlay", False),
    )


class ResidentWorkerPool:
    """A persistent pool of worker processes holding the fragment sites.

    Args:
        catalog: the distributed catalog whose sites the workers pin.
        processes: number of worker processes (defaults to the fragment
            count, capped at the CPU count).

    The pool is started eagerly so the site shipping cost is paid at
    construction, not on the first query.  Use :meth:`close` (or a ``with``
    block) to release the workers; :meth:`restart` re-pins the sites of a new
    catalog after the base relation changed.
    """

    def __init__(self, catalog: DistributedCatalog, *, processes: Optional[int] = None) -> None:
        if catalog.semiring.name not in PICKLABLE_SEMIRINGS:
            raise ValueError(
                "the resident worker pool supports the "
                f"{' and '.join(PICKLABLE_SEMIRINGS)} semirings only"
            )
        default_processes = min(catalog.site_count(), multiprocessing.cpu_count())
        self._processes = max(1, processes if processes is not None else default_processes)
        self._semiring_name = catalog.semiring.name
        self._semiring = semiring_from_name(self._semiring_name)
        self.dispatch_counts: Dict[int, int] = {}
        self.repins = 0
        self.repinned_fragments = 0
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._barrier: Optional[multiprocessing.synchronize.Barrier] = None
        self._start(catalog)

    def _start(self, catalog: DistributedCatalog) -> None:
        # The pinned list is shared with the Pool's respawn machinery: a
        # worker that dies is re-initialised from these initargs, so repin()
        # must keep the list current or a respawned worker would silently
        # serve the state captured at pool start.
        self._pinned_sites = list(catalog.compact_sites().values())
        self._barrier = multiprocessing.Barrier(self._processes)
        self._pool = multiprocessing.Pool(
            processes=self._processes,
            initializer=_worker_init,
            initargs=(self._pinned_sites, self._semiring_name, self._barrier),
        )

    # ------------------------------------------------------------ accessors

    @property
    def worker_count(self) -> int:
        """The number of resident worker processes."""
        return self._processes

    def is_running(self) -> bool:
        """Return ``True`` while the workers are alive."""
        return self._pool is not None

    def alive_workers(self) -> int:
        """Count the pool's live worker processes (0 when closed).

        ``multiprocessing.Pool`` hides its process list behind ``_pool``;
        the health probe only needs a count, so a missing attribute (future
        stdlib reshuffle) degrades to "all alive" rather than crashing the
        probe.
        """
        if self._pool is None:
            return 0
        processes = getattr(self._pool, "_pool", None)
        if processes is None:
            return self._processes
        return sum(1 for process in processes if process.is_alive())

    # ------------------------------------------------------------ operations

    def evaluate(self, tasks: Sequence[TaskKey]) -> Dict[TaskKey, LocalQueryResult]:
        """Evaluate the (already deduplicated) tasks across the resident workers.

        Returns a mapping from task key to the per-fragment path relation.

        Raises:
            RuntimeError: if the pool was closed.
        """
        if self._pool is None:
            raise RuntimeError("the resident worker pool has been closed")
        results: Dict[TaskKey, LocalQueryResult] = {}
        if not tasks:
            return results
        for key, payload in self._pool.map(_worker_evaluate, tasks):
            results[key] = result_from_payload(key, payload, semiring=self._semiring)
            self.dispatch_counts[key[0]] = self.dispatch_counts.get(key[0], 0) + 1
        return results

    def repin(self, updates: Sequence[PinUpdate]) -> None:
        """Refresh only the given fragments in every worker, without a restart.

        The broadcast submits one repin task per worker; a shared barrier
        makes each worker take exactly one, so after this call returns every
        worker's replica of the dirty fragments matches the coordinator —
        all other pinned fragments (and the processes themselves, with their
        warm state) are untouched.  This is the scoped counterpart of
        :meth:`restart`, whose full re-ship is only needed when the whole
        catalog changed.

        Raises:
            RuntimeError: if the pool was closed.
        """
        if self._pool is None:
            raise RuntimeError("the resident worker pool has been closed")
        if not updates:
            return
        wire_updates = [update.wire() for update in updates]
        self._pool.map(_worker_repin, [wire_updates] * self._processes, 1)
        for update in updates:
            if update.remove:
                self._pinned_sites = [
                    pinned
                    for pinned in self._pinned_sites
                    if pinned.fragment_id != update.fragment_id
                ]
                continue
            if update.payload is None:
                continue
            for index, pinned in enumerate(self._pinned_sites):
                if pinned.fragment_id == update.fragment_id:
                    self._pinned_sites[index] = update.payload
                    break
            else:
                self._pinned_sites.append(update.payload)
        self.repins += 1
        self.repinned_fragments += len(updates)

    def restart(self, catalog: DistributedCatalog) -> None:
        """Replace the pinned sites with those of ``catalog`` (after an update)."""
        if catalog.semiring.name != self._semiring_name:
            raise ValueError(
                f"cannot restart a {self._semiring_name} pool with a "
                f"{catalog.semiring.name} catalog"
            )
        self.close()
        self._start(catalog)

    def close(self) -> None:
        """Terminate the worker processes (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    # --------------------------------------------------------------- context

    def __enter__(self) -> "ResidentWorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass


# --------------------------------------------------------------- routed pool


def _routed_worker_loop(
    worker_index: int,
    semiring_name: str,
    task_queue: "multiprocessing.queues.Queue",
    result_conn: "multiprocessing.connection.Connection",
    initial_sites: List[CompactFragmentSite],
) -> None:
    """The owner-worker main loop: serve one routed task queue until ``stop``.

    The worker pins only ``initial_sites`` (its owned/replicated fragments)
    plus whatever later ``pin`` messages hand it.  Replies travel over the
    worker's *private* result pipe — deliberately not a queue shared with
    the siblings: a worker terminated mid-write can only ever corrupt its
    own channel, which the coordinator discards (with the process) on
    respawn.  Every reply carries the request id so the coordinator can
    match out-of-order completions.

    The worker keeps a local :class:`MetricsRegistry` and times every kernel
    in-process; each ``evaluated`` reply ships the registry's drained delta
    alongside the result payloads, so the coordinator's merged view never
    double-counts and needs no cross-process clock agreement.
    """
    sites: Dict[int, CompactFragmentSite] = {site.fragment_id: site for site in initial_sites}
    evaluator = LocalQueryEvaluator(semiring=semiring_from_name(semiring_name))
    registry = MetricsRegistry()
    kernel_seconds = registry.histogram(
        WORKER_KERNEL_HISTOGRAM,
        "In-process kernel execution time per routed task.",
        labelnames=("worker", "fragment"),
    )
    kernel_tuples = registry.counter(
        WORKER_TUPLES_COUNTER,
        "Tuples produced by routed kernel executions.",
        labelnames=("worker", "fragment"),
    )
    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "stop":
            break
        request_id = message[1]
        try:
            if kind == "evaluate":
                tasks: Sequence[TaskKey] = message[2]
                # The coordinator's distributed trace id rides the message as
                # an optional fourth element (older coordinators omit it); the
                # worker echoes it back so the coordinator can prove which
                # trace each worker's kernel spans were timed under.
                trace_id = message[3] if len(message) > 3 else None
                payloads = []
                for task in tasks:
                    fragment_id, entry_nodes, exit_nodes = task
                    if fragment_id not in sites:
                        raise KeyError(
                            f"fragment {fragment_id} is not pinned on worker {worker_index}"
                        )
                    spec = LocalQuerySpec(
                        fragment_id=fragment_id, entry_nodes=entry_nodes, exit_nodes=exit_nodes
                    )
                    result = evaluator.evaluate(sites[fragment_id], spec)
                    kernel_seconds.observe(
                        result.statistics.elapsed_seconds,
                        worker=worker_index,
                        fragment=fragment_id,
                    )
                    kernel_tuples.inc(
                        result.statistics.tuples_produced,
                        worker=worker_index,
                        fragment=fragment_id,
                    )
                    payloads.append(
                        (
                            task,
                            {
                                "values": dict(result.values),
                                "iterations": result.estimated_iterations,
                                "tuples": result.statistics.tuples_produced,
                                "elapsed": result.statistics.elapsed_seconds,
                                "backend": result.backend,
                                "overlay": result.overlay,
                            },
                        )
                    )
                # Fold this worker's kernel-selection and overlay counters
                # into its local registry so the drained delta carries them
                # to the coordinator alongside the timing series.
                merge_selection_metrics(registry)
                merge_overlay_metrics(registry)
                result_conn.send(
                    (
                        request_id,
                        worker_index,
                        "evaluated",
                        {
                            "payloads": payloads,
                            "metrics": registry.drain(),
                            "trace_id": trace_id,
                        },
                    )
                )
            elif kind == "pin":
                for site in message[2]:
                    sites[site.fragment_id] = site
                result_conn.send((request_id, worker_index, "pinned", len(message[2])))
            elif kind == "unpin":
                for fragment_id in message[2]:
                    sites.pop(fragment_id, None)
                result_conn.send((request_id, worker_index, "unpinned", len(message[2])))
            elif kind == "repin":
                refreshed = apply_pin_updates(sites, message[2])
                result_conn.send((request_id, worker_index, "repinned", refreshed))
            elif kind == "census":
                result_conn.send((request_id, worker_index, "census", sorted(sites)))
            else:
                raise ValueError(f"unknown worker message kind {kind!r}")
        except Exception:
            result_conn.send((request_id, worker_index, "error", traceback.format_exc()))


@dataclass
class _WorkerHandle:
    """The coordinator's view of one owner worker.

    ``pinned`` mirrors the worker's resident sites so a crashed process can
    be respawned with its *current* state (post-repin, post-migration), not
    the state captured at pool start.  ``reader`` is the coordinator's end
    of the worker's private result pipe — per-worker by design, so a worker
    terminated mid-reply corrupts only a channel that dies with it.
    """

    index: int
    process: multiprocessing.Process
    queue: "multiprocessing.queues.Queue"
    reader: "multiprocessing.connection.Connection"
    pinned: Dict[int, CompactFragmentSite] = field(default_factory=dict)

    def is_alive(self) -> bool:
        return self.process.is_alive()


class WorkerPoolError(RuntimeError):
    """A routed worker failed, timed out, or was asked the impossible."""


class PlacedWorkerPool:
    """Shared-nothing worker pool: per-owner routed task queues.

    Args:
        catalog: the distributed catalog whose sites the workers pin.
        plan: the fragment -> owner-worker placement to execute; every
            fragment of the catalog must be placed.
        reply_timeout: seconds to wait for a routed worker's reply before
            declaring the request failed (dead workers are detected and
            respawned much sooner).

    Unlike :class:`ResidentWorkerPool` (one replicated ``multiprocessing.Pool``
    with work stealing), each worker here is a dedicated process draining its
    own queue and pinning only the fragments the plan places on it.
    ``evaluate`` routes every task to its fragment's owner — falling back to
    a live replica (and respawning the owner) when the owner process died —
    so the coordinator, not the OS scheduler, decides where data-dependent
    work runs; that is what makes scoped re-pins and live migration possible.
    """

    def __init__(
        self,
        catalog: DistributedCatalog,
        plan: PlacementPlan,
        *,
        reply_timeout: float = ROUTED_REPLY_TIMEOUT_SECONDS,
    ) -> None:
        if catalog.semiring.name not in PICKLABLE_SEMIRINGS:
            raise ValueError(
                "the placed worker pool supports the "
                f"{' and '.join(PICKLABLE_SEMIRINGS)} semirings only"
            )
        self._semiring_name = catalog.semiring.name
        self._semiring = semiring_from_name(self._semiring_name)
        self._reply_timeout = reply_timeout
        self._context = multiprocessing.get_context()
        self._next_request_id = 0
        self._running = False
        self._workers: List[_WorkerHandle] = []
        # Observability counters (the service folds these into its stats).
        self.dispatch_counts: Dict[int, int] = {}
        self.last_route_counts: Dict[int, int] = {}
        # Per-evaluate telemetry: which worker actually ran each task (the
        # replica/respawn fallbacks make this differ from the plan's owner),
        # and the drained worker-registry payloads for the service to merge.
        self.last_task_workers: Dict[TaskKey, int] = {}
        self.last_worker_metrics: List[Dict] = []
        # Per-evaluate trace plumbing: the trace id each replying worker
        # echoed back, so the service can stamp worker spans with proof that
        # the kernel work ran under the client's distributed trace.
        self.last_trace_ids: Dict[int, Optional[str]] = {}
        self.queue_depth = 0
        self.queue_depth_peak = 0
        self.repins = 0
        self.repinned_fragments = 0
        self.repin_messages = 0
        self.last_repin_workers: Tuple[int, ...] = ()
        self.migrations = 0
        self.respawns = 0
        self.replica_fallbacks = 0
        # Replica version fencing: a repin reaches only the *owner* eagerly;
        # replicas are fenced at the stale version and refreshed lazily from
        # the coordinator mirror on their first routed read.
        self.replica_refreshes = 0
        self.replica_repins_deferred = 0
        self.refragments = 0
        self._stale_replicas: Dict[int, set] = {}
        self._start(catalog, plan)

    # ------------------------------------------------------------- lifecycle

    def _start(self, catalog: DistributedCatalog, plan: PlacementPlan) -> None:
        sites = catalog.compact_sites()
        missing = sorted(set(sites) - set(plan.owner_of))
        if missing:
            raise PlacementError(f"placement plan does not place fragments {missing}")
        self._plan = plan.copy()
        self._workers = []
        self._stale_replicas = {}
        for worker_index in range(self._plan.worker_count):
            pinned = {
                fragment_id: sites[fragment_id]
                for fragment_id in self._plan.fragments_on(worker_index)
                if fragment_id in sites
            }
            self._workers.append(self._spawn(worker_index, pinned))
        self._running = True

    def _spawn(self, worker_index: int, pinned: Dict[int, CompactFragmentSite]) -> _WorkerHandle:
        task_queue = self._context.Queue()
        reader, writer = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_routed_worker_loop,
            args=(
                worker_index,
                self._semiring_name,
                task_queue,
                writer,
                list(pinned.values()),
            ),
            daemon=True,
        )
        process.start()
        # Drop the coordinator's copy of the write end: once the worker dies,
        # its pipe reaches EOF and `connection.wait` reports it immediately.
        writer.close()
        return _WorkerHandle(
            index=worker_index,
            process=process,
            queue=task_queue,
            reader=reader,
            pinned=dict(pinned),
        )

    def _respawn(self, worker_index: int) -> _WorkerHandle:
        """Re-home a dead owner: a fresh process re-pins the current mirror.

        A fresh task queue and result pipe replace the dead worker's: the
        queue's buffer may hold undelivered messages that would replay out
        of order, and the pipe may hold a half-written reply.
        """
        stale = self._workers[worker_index]
        for closer in (stale.queue.close, stale.queue.cancel_join_thread, stale.reader.close):
            try:
                closer()
            except Exception:
                pass
        handle = self._spawn(worker_index, stale.pinned)
        self._workers[worker_index] = handle
        # The fresh process pinned the current mirror, so nothing it holds is
        # behind a fence any more.
        self._stale_replicas.pop(worker_index, None)
        self.respawns += 1
        return handle

    def restart(self, catalog: DistributedCatalog) -> None:
        """Replace every pinned site with ``catalog``'s under a fresh plan.

        Kept for the full-rebuild path (refragmentation, incremental
        fallback), where the fragment set itself may have changed; scoped
        updates go through :meth:`repin` and skew through :meth:`migrate`
        instead.  The plan is recomputed with the same policy when the
        catalog's fragments no longer match the old plan.
        """
        if catalog.semiring.name != self._semiring_name:
            raise ValueError(
                f"cannot restart a {self._semiring_name} pool with a "
                f"{catalog.semiring.name} catalog"
            )
        plan = self._plan
        fragment_ids = {site.fragment_id for site in catalog.sites()}
        if fragment_ids != set(plan.owner_of):
            from ..placement import plan_placement  # local import to keep startup light

            plan = plan_placement(
                plan.policy,
                plan.worker_count,
                fragment_ids=sorted(fragment_ids),
                fragment_costs={
                    site.fragment_id: float(site.edge_count()) for site in catalog.sites()
                },
            )
        self.close()
        self._start(catalog, plan)

    def close(self) -> None:
        """Stop and reap the worker processes (idempotent)."""
        if not self._running:
            return
        self._running = False
        for handle in self._workers:
            try:
                if handle.is_alive():
                    handle.queue.put(("stop",))
            except Exception:
                pass
        deadline = time.monotonic() + 2.0
        for handle in self._workers:
            handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            for closer in (
                handle.queue.close,
                handle.queue.cancel_join_thread,
                handle.reader.close,
            ):
                try:
                    closer()
                except Exception:
                    pass
        self._workers = []

    # ------------------------------------------------------------- accessors

    @property
    def plan(self) -> PlacementPlan:
        """The live placement plan (mutated in place by :meth:`migrate`)."""
        return self._plan

    @property
    def worker_count(self) -> int:
        """The number of routed worker slots."""
        return self._plan.worker_count

    def is_running(self) -> bool:
        """Return ``True`` while the pool serves its queues."""
        return self._running

    def worker_pids(self) -> List[Optional[int]]:
        """Return each worker's OS pid (stable across repins and migrations)."""
        return [handle.process.pid for handle in self._workers]

    def liveness(self) -> Dict[int, bool]:
        """Return worker index -> process-alive, the health probe's raw signal.

        Deliberately a pure read (no respawn side effects): ``healthz`` must
        be able to report a degraded pool without mutating it — the next
        routed evaluate is what heals dead owners.
        """
        return {handle.index: handle.is_alive() for handle in self._workers}

    def pinned_census(self, *, ask_workers: bool = True) -> Dict[int, List[int]]:
        """Return worker -> pinned fragment ids.

        With ``ask_workers`` the figures come from the live processes (the
        ground truth the placement benchmark audits); otherwise from the
        coordinator's mirrors.
        """
        if not ask_workers or not self._running:
            return {h.index: sorted(h.pinned) for h in self._workers}
        request_id = self._request_id()
        targets = []
        for handle in self._workers:
            if handle.is_alive():
                handle.queue.put(("census", request_id))
                targets.append(handle.index)
        replies = self._collect(request_id, targets, resubmit=None)
        census = {h.index: sorted(h.pinned) for h in self._workers if h.index not in replies}
        census.update({worker: list(fragments) for worker, fragments in replies.items()})
        return dict(sorted(census.items()))

    # ------------------------------------------------------------ operations

    def evaluate(
        self,
        tasks: Sequence[TaskKey],
        *,
        owner_groups: Optional[Dict[int, List[TaskKey]]] = None,
        trace_id: Optional[str] = None,
    ) -> Dict[TaskKey, LocalQueryResult]:
        """Route each task to its fragment's owner queue and gather the results.

        Routing prefers the owner; when the owner process died, a live
        replica takes the task and the owner is respawned (from the
        coordinator's pinned mirror) for the next round.  Mid-flight worker
        deaths are detected while waiting and the lost tasks are resubmitted
        to the respawned owner, so a crash costs latency, never answers.

        ``owner_groups`` is the placement-aware batch planner's pre-computed
        worker -> tasks grouping: groups whose worker is alive and still pins
        every named fragment ship as-is (one message per owner, no
        re-derivation), anything else falls back to live routing — a batch
        planned just before a migration or a crash still lands correctly.

        ``trace_id`` is the caller's distributed trace id; it rides every
        routed message and each worker echoes it back in its reply
        (collected into :attr:`last_trace_ids`), so worker-side kernel spans
        can be attributed to the client trace that caused them.

        Raises:
            WorkerPoolError: when the pool is closed, a fragment is not
                placed, or workers keep failing past the reply timeout.
        """
        if not self._running:
            raise WorkerPoolError("the placed worker pool has been closed")
        results: Dict[TaskKey, LocalQueryResult] = {}
        # Reset before the empty-batch return: a no-task call must not leave
        # the previous call's counts behind for the caller to re-accumulate.
        self.last_route_counts = {}
        self.last_task_workers = {}
        self.last_worker_metrics = []
        self.last_trace_ids = {}
        if not tasks:
            return results
        if owner_groups is not None:
            groups = self._adopt_groups(owner_groups)
        else:
            groups = self._route(tasks)
        request_id = self._request_id()
        # Per-owner accounting counts *tasks* (the unit of local work), never
        # messages: one routed message may batch many subqueries.
        self.last_route_counts = {w: len(ts) for w, ts in groups.items()}
        # The live queue depth is this round's largest per-owner batch
        # (overwritten every round); the peak is its high-water mark.
        self.queue_depth = max((len(ts) for ts in groups.values()), default=0)
        for worker_index, worker_tasks in groups.items():
            # Fenced replicas refresh from the mirror before the read; queue
            # order guarantees the pin applies before the evaluate.
            self._refresh_fenced(worker_index, {task[0] for task in worker_tasks})
            self._workers[worker_index].queue.put(
                ("evaluate", request_id, worker_tasks, trace_id)
            )
            self.queue_depth_peak = max(self.queue_depth_peak, len(worker_tasks))
        replies = self._collect(
            request_id,
            list(groups),
            resubmit={worker: list(worker_tasks) for worker, worker_tasks in groups.items()},
            trace_id=trace_id,
        )
        for worker_index, reply in replies.items():
            self.last_trace_ids[worker_index] = reply.get("trace_id")
            metrics = reply.get("metrics")
            if metrics:
                self.last_worker_metrics.append(metrics)
            for key, payload in reply["payloads"]:
                results[key] = result_from_payload(key, payload, semiring=self._semiring)
                self.dispatch_counts[key[0]] = self.dispatch_counts.get(key[0], 0) + 1
                self.last_task_workers[key] = worker_index
        missing = [task for task in tasks if task not in results]
        if missing:
            raise WorkerPoolError(f"routed evaluation lost tasks {missing}")
        return results

    def repin(self, updates: Sequence[PinUpdate]) -> None:
        """Refresh dirty fragments on their owner only — replicas are fenced.

        This is the shared-nothing counterpart of
        :meth:`ResidentWorkerPool.repin`: instead of a barrier broadcast to
        every worker, each update travels eagerly only to the fragment's
        *owner* — the worker every read routes to — so a hot fragment's
        update cost stays O(1) however widely it is replicated.  Replica
        processes keep serving their old version behind a fence: the
        coordinator mirror records the new payload, the replica is marked
        stale, and the first routed read that actually falls back to it
        (owner death) refreshes it from the mirror before the read runs.
        """
        if not self._running:
            raise WorkerPoolError("the placed worker pool has been closed")
        if not updates:
            return
        owner_groups: Dict[int, List[PinUpdate]] = {}
        for update in updates:
            workers = self._plan.workers_for(update.fragment_id)
            if len(workers) > 1 and update.payload is None and not update.remove:
                # The fence (and the lazy refresh behind it, and a respawn)
                # serves from the coordinator mirror, which only a payload
                # can refresh; applying a bare delta to a possibly-stale
                # replica would corrupt it silently.
                raise WorkerPoolError(
                    f"re-pinning replicated fragment {update.fragment_id} "
                    "requires a full payload, not just a delta"
                )
            owner = workers[0]
            owner_groups.setdefault(owner, []).append(update)
            for replica in workers[1:]:
                # Mirror now, process later: the replica's live state is
                # fenced at its old version until a routed read needs it.
                if update.remove:
                    self._workers[replica].pinned.pop(update.fragment_id, None)
                else:
                    self._workers[replica].pinned[update.fragment_id] = update.payload
                self._stale_replicas.setdefault(replica, set()).add(update.fragment_id)
                self.replica_repins_deferred += 1
        request_id = self._request_id()
        targets: List[int] = []
        for worker_index, worker_updates in owner_groups.items():
            handle = self._workers[worker_index]
            # The coordinator mirror is refreshed regardless of process
            # health: a dead owner respawns from this mirror later.
            for update in worker_updates:
                if update.remove:
                    handle.pinned.pop(update.fragment_id, None)
                elif update.payload is not None:
                    handle.pinned[update.fragment_id] = update.payload
            self._stale_replicas.get(worker_index, set()).difference_update(
                update.fragment_id for update in worker_updates
            )
            if not handle.is_alive():
                continue
            handle.queue.put(("repin", request_id, [u.wire() for u in worker_updates]))
            targets.append(worker_index)
        self._collect(request_id, targets, resubmit=None)
        self.repins += 1
        self.repinned_fragments += len(updates)
        self.repin_messages += len(targets)
        self.last_repin_workers = tuple(sorted(owner_groups))

    def migrate(self, fragment_id: int, to_worker: int) -> bool:
        """Move a fragment's compact state to ``to_worker`` — live, no restart.

        The fragment's current payload (the coordinator's mirror, which every
        repin keeps current) is pinned on the destination first, the plan is
        flipped, and only then is the source told to unpin — a reader routed
        mid-migration always finds the fragment somewhere.  Returns ``False``
        when the fragment already lives on ``to_worker``.

        Raises:
            WorkerPoolError: when the pool is closed or the coordinator has
                no payload for the fragment.
            PlacementError: when the fragment is unplaced or the destination
                worker index is out of range.
        """
        if not self._running:
            raise WorkerPoolError("the placed worker pool has been closed")
        if not 0 <= to_worker < self._plan.worker_count:
            # Validated before any side effect: an out-of-range index (or a
            # negative one, which Python would silently wrap) must not pin
            # state onto a worker the plan does not list.
            raise PlacementError(
                f"destination worker {to_worker} is outside "
                f"0..{self._plan.worker_count - 1}"
            )
        from_worker = self._plan.owner(fragment_id)
        if from_worker == to_worker:
            return False
        source = self._workers[from_worker]
        payload = source.pinned.get(fragment_id)
        if payload is None:
            raise WorkerPoolError(
                f"no pinned payload for fragment {fragment_id} on worker {from_worker}"
            )
        destination = self._workers[to_worker]
        if not destination.is_alive():
            destination = self._respawn(to_worker)
        # The mirror is updated *before* the pin is sent: if the destination
        # dies mid-pin, _collect respawns it from this mirror — fragment
        # included — so the move is self-healing instead of stranding the
        # fragment on a new owner that never pinned it.
        destination.pinned[fragment_id] = payload
        request_id = self._request_id()
        destination.queue.put(("pin", request_id, [payload]))
        self._collect(request_id, [to_worker], resubmit=None)
        # The destination just pinned the mirror's current payload: whatever
        # fence it carried for this fragment is satisfied.
        self._stale_replicas.get(to_worker, set()).discard(fragment_id)
        self._plan.move(fragment_id, to_worker)
        # move() always takes the fragment off its previous owner entirely
        # (a destination replica is absorbed into ownership, never the other
        # way around), so the source unpins unconditionally.
        source.pinned.pop(fragment_id, None)
        self._stale_replicas.get(from_worker, set()).discard(fragment_id)
        if source.is_alive():
            request_id = self._request_id()
            source.queue.put(("unpin", request_id, [fragment_id]))
            self._collect(request_id, [from_worker], resubmit=None)
        self.migrations += 1
        return True

    def apply_refragmentation(
        self, updates: Sequence[PinUpdate], new_plan: PlacementPlan
    ) -> None:
        """Execute a live boundary redraw: scoped pin changes, then the new plan.

        ``updates`` carries the rebuilt fragments' full payloads plus
        ``remove`` markers for fragments the redraw dropped; ``new_plan`` is
        the remapped placement (surviving fragments keep their owners — see
        :meth:`PlacementPlan.remap`).  Each rebuilt fragment ships to its
        (new) owner only, with replicas fenced exactly like an ordinary
        repin; dropped fragments are unpinned from every worker holding
        them.  Worker processes are never restarted — unchanged fragments
        stay pinned where they are, warm state and PIDs intact.  Dead
        workers are skipped (their mirrors are refreshed, so the eventual
        respawn pins current state).

        Raises:
            WorkerPoolError: when the pool is closed.
        """
        if not self._running:
            raise WorkerPoolError("the placed worker pool has been closed")
        old_plan = self._plan
        groups: Dict[int, List[PinUpdate]] = {}
        for update in updates:
            fragment_id = update.fragment_id
            if update.remove:
                # Unpin everywhere the old plan put it; the fragment id no
                # longer exists, so there is nothing to fence.
                for worker_index in range(len(self._workers)):
                    handle = self._workers[worker_index]
                    if handle.pinned.pop(fragment_id, None) is not None:
                        groups.setdefault(worker_index, []).append(update)
                    stale = self._stale_replicas.get(worker_index)
                    if stale:
                        stale.discard(fragment_id)
                continue
            workers = new_plan.workers_for(fragment_id)
            owner = workers[0]
            self._workers[owner].pinned[fragment_id] = update.payload
            self._stale_replicas.get(owner, set()).discard(fragment_id)
            groups.setdefault(owner, []).append(update)
            for replica in workers[1:]:
                self._workers[replica].pinned[fragment_id] = update.payload
                self._stale_replicas.setdefault(replica, set()).add(fragment_id)
                self.replica_repins_deferred += 1
            # The redraw may have re-owned the fragment (a created id landing
            # on a new worker): the old owner no longer pins it.
            try:
                previous = old_plan.owner(fragment_id)
            except PlacementError:
                previous = None
            if previous is not None and previous not in workers:
                handle = self._workers[previous]
                if handle.pinned.pop(fragment_id, None) is not None:
                    groups.setdefault(previous, []).append(
                        PinUpdate(fragment_id=fragment_id, estimated_iterations=0, remove=True)
                    )
        request_id = self._request_id()
        targets: List[int] = []
        for worker_index, worker_updates in groups.items():
            handle = self._workers[worker_index]
            if not handle.is_alive():
                continue
            handle.queue.put(("repin", request_id, [u.wire() for u in worker_updates]))
            targets.append(worker_index)
        self._collect(request_id, targets, resubmit=None)
        self._plan = new_plan.copy()
        self.refragments += 1
        self.repinned_fragments += len(updates)
        self.repin_messages += len(targets)
        self.last_repin_workers = tuple(sorted(groups))

    # ------------------------------------------------------------- internals

    def _request_id(self) -> int:
        self._next_request_id += 1
        return self._next_request_id

    def _adopt_groups(
        self, owner_groups: Dict[int, List[TaskKey]]
    ) -> Dict[int, List[TaskKey]]:
        """Validate a pre-computed batch grouping against the live pool.

        A group ships untouched when its worker index is in range, the
        process is alive, and the worker pins every fragment the group
        names; otherwise its tasks re-route live (owner first, replica
        fallback, respawn) exactly like un-grouped evaluation.
        """
        groups: Dict[int, List[TaskKey]] = {}
        stragglers: List[TaskKey] = []
        for worker_index, worker_tasks in owner_groups.items():
            usable = (
                0 <= worker_index < len(self._workers)
                and self._workers[worker_index].is_alive()
                and all(
                    task[0] in self._workers[worker_index].pinned
                    for task in worker_tasks
                )
            )
            if usable:
                groups.setdefault(worker_index, []).extend(worker_tasks)
            else:
                stragglers.extend(worker_tasks)
        if stragglers:
            for worker_index, worker_tasks in self._route(stragglers).items():
                groups.setdefault(worker_index, []).extend(worker_tasks)
        return groups

    def _refresh_fenced(self, worker_index: int, fragment_ids: set) -> None:
        """Push mirror payloads for fenced fragments ahead of a routed read."""
        stale = self._stale_replicas.get(worker_index)
        if not stale:
            return
        needed = sorted(stale & fragment_ids)
        if not needed:
            return
        handle = self._workers[worker_index]
        if not handle.is_alive():
            return  # the respawn pins the fresh mirror anyway
        refresh = [handle.pinned[fid] for fid in needed if fid in handle.pinned]
        drop = [fid for fid in needed if fid not in handle.pinned]
        if refresh:
            # The reply is intentionally not awaited: queue order guarantees
            # the pin applies before the evaluate behind it, and _collect
            # discards the out-of-band "pinned" acknowledgement.
            handle.queue.put(("pin", self._request_id(), refresh))
            self.replica_refreshes += len(refresh)
        if drop:
            handle.queue.put(("unpin", self._request_id(), drop))
        stale.difference_update(needed)

    def _route(self, tasks: Sequence[TaskKey]) -> Dict[int, List[TaskKey]]:
        """Group tasks by the worker that will run them (owner, else replica)."""
        groups: Dict[int, List[TaskKey]] = {}
        respawned: set = set()
        for task in tasks:
            fragment_id = task[0]
            candidates = self._plan.workers_for(fragment_id)
            owner = candidates[0]
            chosen: Optional[int] = None
            if self._workers[owner].is_alive():
                chosen = owner
            else:
                for replica in candidates[1:]:
                    if self._workers[replica].is_alive():
                        chosen = replica
                        self.replica_fallbacks += 1
                        break
                if owner not in respawned:
                    # Re-home the dead owner's fragments either way: a fresh
                    # process re-pins the mirror and takes the next round.
                    self._respawn(owner)
                    respawned.add(owner)
                if chosen is None:
                    chosen = owner  # the respawned owner takes it now
            groups.setdefault(chosen, []).append(task)
        return groups

    def _collect(
        self,
        request_id: int,
        workers: List[int],
        *,
        resubmit: Optional[Dict[int, List[TaskKey]]],
        trace_id: Optional[str] = None,
    ) -> Dict[int, object]:
        """Gather one reply per worker for ``request_id`` from the result pipes.

        Each worker owns a private result pipe, multiplexed here with
        :func:`multiprocessing.connection.wait` — a dead worker's pipe hits
        EOF and is reported ready immediately, so crashes surface as fast as
        replies.  ``resubmit`` (evaluate only) maps each worker to the tasks
        it was sent: when a worker dies before replying, it is respawned
        from its mirror and its tasks are resubmitted under the same request
        id.

        Raises:
            WorkerPoolError: on a worker-side error or an overall timeout.
        """
        outstanding = set(workers)
        replies: Dict[int, object] = {}
        deadline = time.monotonic() + self._reply_timeout
        while outstanding:
            if time.monotonic() > deadline:
                raise WorkerPoolError(
                    f"workers {sorted(outstanding)} did not reply within "
                    f"{self._reply_timeout:.0f}s"
                )
            reader_of = {self._workers[w].reader: w for w in outstanding}
            ready = multiprocessing.connection.wait(
                list(reader_of), timeout=_POLL_SECONDS
            )
            failed: List[int] = []
            for reader in ready:
                worker_index = reader_of[reader]
                try:
                    reply_id, _, kind, payload = reader.recv()
                except (EOFError, OSError):
                    failed.append(worker_index)
                    continue
                if reply_id != request_id:
                    continue  # a stale reply from a superseded request
                if kind == "error":
                    raise WorkerPoolError(f"worker {worker_index} failed:\n{payload}")
                replies[worker_index] = payload
                outstanding.discard(worker_index)
            if not ready:
                failed = [w for w in sorted(outstanding) if not self._workers[w].is_alive()]
            for worker_index in failed:
                handle = self._respawn(worker_index)
                if resubmit is not None and worker_index in resubmit:
                    handle.queue.put(
                        ("evaluate", request_id, resubmit[worker_index], trace_id)
                    )
                else:
                    # Non-evaluate requests (pin/repin/census) were already
                    # folded into the mirror the respawn used.
                    outstanding.discard(worker_index)
        return replies

    # --------------------------------------------------------------- context

    def __enter__(self) -> "PlacedWorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
