"""Bounded LRU cache for query results, with fragment-scoped invalidation.

The disconnection set approach pays its preparation cost once and answers
queries cheaply afterwards; a result cache takes the next step and makes the
*second* identical query free.  Entries are addressed by a typed
:class:`CacheKey` and carry, in their :class:`CachedAnswer`, the exact
``(epoch, fragment -> version)`` slice of the catalog's
:class:`~repro.incremental.versions.VersionVector` they were computed under.
An update therefore invalidates *scoped*: the service evicts only the entries
whose recorded fragments moved (:meth:`LRUCache.evict_where`), and answers
touching untouched fragments keep serving from cache.  Whole-catalog events
(refragmentation, a full-rebuild fallback) advance the epoch, which ages
every entry at once.

The implementation is a plain ``OrderedDict`` LRU — no external dependencies,
O(1) get/put — with hit/miss/eviction counters the service statistics expose.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Iterator, Optional, Tuple

from ..observability import MetricsRegistry

Key = Tuple[Hashable, ...]

# Metric names the cache mirrors its counters into (labeled by event).
CACHE_EVENTS_COUNTER = "repro_result_cache_events_total"
CACHE_SIZE_GAUGE = "repro_result_cache_entries"


@dataclass(frozen=True)
class CacheKey:
    """The typed identity of one cached query answer.

    Replaces the old positional tuple (whose version lived at ``key[3]`` and
    could only be poked by index): the key names *what* was asked, while the
    staleness bookkeeping lives in the stored :class:`CachedAnswer`, where
    scoped invalidation can address it by fragment.

    Attributes:
        source, target: the queried endpoints.
        semiring: the path problem's name.
        base_version: the snapshot lineage the serving catalog descends from
            (two services restored from the same snapshot share entries; a
            different lineage can never collide).
    """

    source: Hashable
    target: Hashable
    semiring: str
    base_version: str


@dataclass(frozen=True)
class CachedAnswer:
    """One cached answer plus the catalog slice it depends on.

    Attributes:
        value: the answer's path value (``None`` when no path exists).
        chain: the fragment chain that produced it.
        epoch: the version-vector epoch the answer was computed under.
        fragment_versions: sorted ``(fragment, version)`` pairs for every
            fragment the answer's plan involved; the answer is valid exactly
            while all of them (and the epoch) are current.
    """

    value: Optional[object]
    chain: Optional[Tuple[int, ...]]
    epoch: int = 0
    fragment_versions: Tuple[Tuple[int, int], ...] = ()

    def depends_on(self, fragment_ids: Iterable[int]) -> bool:
        """Return ``True`` when any of the given fragments backs this answer."""
        dirty = set(fragment_ids)
        return any(fragment_id in dirty for fragment_id, _ in self.fragment_versions)


class LRUCache:
    """A bounded least-recently-used mapping with observability counters.

    Args:
        capacity: maximum number of entries kept; the least recently used
            entry is evicted when a put exceeds it.  Must be positive.
        registry: optional metrics registry to mirror the counters into
            (``repro_result_cache_events_total{event=...}`` plus a resident
            entry-count gauge).  The plain int attributes remain the
            in-process source of truth; the registry view exists for export
            and is reset on a registry-wide epoch without touching them.
    """

    def __init__(self, capacity: int = 1024, *, registry: Optional[MetricsRegistry] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[Key, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._events = (
            registry.counter(
                CACHE_EVENTS_COUNTER,
                "Result-cache events by kind (hit, miss, eviction, invalidation).",
                labelnames=("event",),
            )
            if registry is not None
            else None
        )
        self._size_gauge = (
            registry.gauge(CACHE_SIZE_GAUGE, "Entries resident in the result cache.")
            if registry is not None
            else None
        )

    def _observe(self, event: str, amount: int = 1) -> None:
        if self._events is not None and amount:
            self._events.inc(amount, event=event)
        if self._size_gauge is not None:
            self._size_gauge.set(len(self._entries))

    # -------------------------------------------------------------- protocol

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Key]:
        return iter(self._entries)

    # ------------------------------------------------------------ operations

    @property
    def capacity(self) -> int:
        """The maximum number of entries retained."""
        return self._capacity

    def get(self, key: Key) -> Optional[object]:
        """Return the cached value for ``key`` (refreshing it) or ``None``."""
        if key not in self._entries:
            self.misses += 1
            self._observe("miss")
            return None
        self.hits += 1
        self._observe("hit")
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key: Key, value: object) -> None:
        """Store ``value`` under ``key``, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._observe("eviction")
        else:
            self._observe("stored", 0)

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self.invalidations += dropped
        self._observe("invalidation", dropped)
        return dropped

    def discard(self, key: Key) -> bool:
        """Drop one entry if present; returns whether it existed.

        Used when a get-side validation discovers a stale answer (its
        recorded fragment versions no longer match the catalog's vector).
        """
        if key in self._entries:
            del self._entries[key]
            self.invalidations += 1
            self._observe("invalidation")
            return True
        return False

    def evict_stale(self, is_stale: Callable[[Key], bool]) -> int:
        """Drop every entry whose key satisfies ``is_stale``; returns the count.

        Used to reclaim the slots of entries keyed on an outdated catalog
        version (they could never be hit again, but would still occupy
        capacity until LRU pressure pushed them out).
        """
        stale = [key for key in self._entries if is_stale(key)]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
        self._observe("invalidation", len(stale))
        return len(stale)

    def evict_where(self, is_stale: Callable[[Key, object], bool]) -> int:
        """Drop every entry whose ``(key, value)`` satisfies ``is_stale``.

        The scoped-invalidation hook: the service passes a predicate testing
        whether a :class:`CachedAnswer` depends on any dirty fragment, so an
        update evicts only the answers it could actually have changed.
        """
        stale = [key for key, value in self._entries.items() if is_stale(key, value)]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
        self._observe("invalidation", len(stale))
        return len(stale)
