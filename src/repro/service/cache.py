"""Bounded LRU cache for query results.

The disconnection set approach pays its preparation cost once and answers
queries cheaply afterwards; a result cache takes the next step and makes the
*second* identical query free.  Keys carry the catalog version, so an update
to the base relation (see :mod:`repro.disconnection.maintenance`) naturally
invalidates every cached answer: the service bumps its version and stale
entries can no longer be hit.  :meth:`LRUCache.evict_stale` reclaims their
slots eagerly so a busy service does not waste capacity on dead versions.

The implementation is a plain ``OrderedDict`` LRU — no external dependencies,
O(1) get/put — with hit/miss/eviction counters the service statistics expose.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Iterator, Optional, Tuple

Key = Tuple[Hashable, ...]


class LRUCache:
    """A bounded least-recently-used mapping with observability counters.

    Args:
        capacity: maximum number of entries kept; the least recently used
            entry is evicted when a put exceeds it.  Must be positive.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[Key, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # -------------------------------------------------------------- protocol

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Key) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Key]:
        return iter(self._entries)

    # ------------------------------------------------------------ operations

    @property
    def capacity(self) -> int:
        """The maximum number of entries retained."""
        return self._capacity

    def get(self, key: Key) -> Optional[object]:
        """Return the cached value for ``key`` (refreshing it) or ``None``."""
        if key not in self._entries:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key: Key, value: object) -> None:
        """Store ``value`` under ``key``, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self.invalidations += dropped
        return dropped

    def evict_stale(self, is_stale: Callable[[Key], bool]) -> int:
        """Drop every entry whose key satisfies ``is_stale``; returns the count.

        Used to reclaim the slots of entries keyed on an outdated catalog
        version (they could never be hit again, but would still occupy
        capacity until LRU pressure pushed them out).
        """
        stale = [key for key in self._entries if is_stale(key)]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
        return len(stale)
