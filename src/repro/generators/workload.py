"""Query workload generators.

The paper's performance claims are about *queries*: "Is A connected to B?",
"what is the shortest path from Amsterdam to Milan?".  The speed-up and
query-cost benchmarks therefore need streams of source/destination pairs with
controllable locality (within one fragment vs. across fragments).  These
generators produce such workloads deterministically from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

from ..exceptions import FragmenterConfigurationError
from ..graph import DiGraph

Node = Hashable


@dataclass(frozen=True)
class PathQuery:
    """A single source/destination query.

    Attributes:
        source: the start node.
        target: the destination node.
        kind: ``"reachability"`` ("is A connected to B?") or
            ``"shortest_path"`` ("what is the cheapest path from A to B?").
    """

    source: Node
    target: Node
    kind: str = "shortest_path"

    def __post_init__(self) -> None:
        if self.kind not in ("reachability", "shortest_path"):
            raise FragmenterConfigurationError(
                f"query kind must be 'reachability' or 'shortest_path', got {self.kind!r}"
            )


def random_queries(
    graph: DiGraph,
    count: int,
    *,
    seed: int = 0,
    kind: str = "shortest_path",
    distinct_endpoints: bool = True,
) -> List[PathQuery]:
    """Return ``count`` uniformly random queries over the nodes of ``graph``."""
    rng = random.Random(seed)
    nodes = graph.nodes()
    if len(nodes) < 2:
        raise FragmenterConfigurationError("need at least two nodes to generate queries")
    queries: List[PathQuery] = []
    while len(queries) < count:
        source, target = rng.choice(nodes), rng.choice(nodes)
        if distinct_endpoints and source == target:
            continue
        queries.append(PathQuery(source=source, target=target, kind=kind))
    return queries


def cross_cluster_queries(
    clusters: Sequence[set],
    count: int,
    *,
    seed: int = 0,
    kind: str = "shortest_path",
    minimum_cluster_distance: int = 1,
) -> List[PathQuery]:
    """Return queries whose endpoints lie in different clusters.

    ``minimum_cluster_distance`` is the minimum difference between the cluster
    indices (clusters are assumed to be laid out as a chain, as in the
    transportation generator), so a value of ``len(clusters) - 1`` forces
    end-to-end queries across the whole chain.
    """
    rng = random.Random(seed)
    if len(clusters) < 2:
        raise FragmenterConfigurationError("need at least two clusters for cross-cluster queries")
    queries: List[PathQuery] = []
    while len(queries) < count:
        i, j = rng.randrange(len(clusters)), rng.randrange(len(clusters))
        if abs(i - j) < max(1, minimum_cluster_distance):
            continue
        source = rng.choice(sorted(clusters[i], key=repr))
        target = rng.choice(sorted(clusters[j], key=repr))
        queries.append(PathQuery(source=source, target=target, kind=kind))
    return queries


def intra_cluster_queries(
    clusters: Sequence[set],
    count: int,
    *,
    seed: int = 0,
    kind: str = "shortest_path",
) -> List[PathQuery]:
    """Return queries whose endpoints lie in the same cluster.

    These are the "shortest path between two Dutch cities" queries that the
    disconnection set approach can answer at a single site.
    """
    rng = random.Random(seed)
    queries: List[PathQuery] = []
    eligible = [cluster for cluster in clusters if len(cluster) >= 2]
    if not eligible:
        raise FragmenterConfigurationError("need at least one cluster with two or more nodes")
    while len(queries) < count:
        cluster = sorted(rng.choice(eligible), key=repr)
        source, target = rng.sample(cluster, 2)
        queries.append(PathQuery(source=source, target=target, kind=kind))
    return queries


def mixed_workload(
    graph: DiGraph,
    clusters: Sequence[set],
    count: int,
    *,
    cross_fraction: float = 0.5,
    seed: int = 0,
    kind: str = "shortest_path",
) -> List[PathQuery]:
    """Return a workload mixing intra- and cross-cluster queries.

    Args:
        graph: the graph being queried (used only for validation).
        clusters: the ground-truth or discovered clusters.
        count: total number of queries.
        cross_fraction: fraction of queries that cross clusters.
        seed: RNG seed.
        kind: query kind for every generated query.
    """
    if not 0.0 <= cross_fraction <= 1.0:
        raise FragmenterConfigurationError("cross_fraction must be between 0 and 1")
    cross_count = int(round(count * cross_fraction))
    intra_count = count - cross_count
    queries: List[PathQuery] = []
    if cross_count:
        queries.extend(cross_cluster_queries(clusters, cross_count, seed=seed, kind=kind))
    if intra_count:
        queries.extend(intra_cluster_queries(clusters, intra_count, seed=seed + 1, kind=kind))
    rng = random.Random(seed + 2)
    rng.shuffle(queries)
    return queries
