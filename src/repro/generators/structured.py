"""Deterministic structured graphs used in tests, examples and ablations.

These small generators produce graphs whose transitive closures and shortest
paths are known in closed form, which makes them the backbone of the unit and
property-based tests: chains (worst-case diameter), cycles, grids (the shape
of many transportation networks), stars, complete graphs and layered DAGs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..exceptions import FragmenterConfigurationError
from ..graph import DiGraph, Point

Node = int


def chain_graph(length: int, *, symmetric: bool = True, weight: float = 1.0) -> DiGraph:
    """Return a path ``0 - 1 - ... - length-1`` with coordinates along the x-axis.

    Raises:
        FragmenterConfigurationError: if ``length`` is not positive.
    """
    if length <= 0:
        raise FragmenterConfigurationError("length must be positive")
    graph = DiGraph()
    for node in range(length):
        graph.set_coordinate(node, Point(float(node), 0.0))
    for node in range(length - 1):
        if symmetric:
            graph.add_symmetric_edge(node, node + 1, weight)
        else:
            graph.add_edge(node, node + 1, weight)
    return graph


def cycle_graph(length: int, *, symmetric: bool = True, weight: float = 1.0) -> DiGraph:
    """Return a cycle of ``length`` nodes laid out on a circle."""
    import math

    if length < 3:
        raise FragmenterConfigurationError("a cycle needs at least 3 nodes")
    graph = DiGraph()
    for node in range(length):
        angle = 2.0 * math.pi * node / length
        graph.set_coordinate(node, Point(math.cos(angle) * length, math.sin(angle) * length))
    for node in range(length):
        successor = (node + 1) % length
        if symmetric:
            graph.add_symmetric_edge(node, successor, weight)
        else:
            graph.add_edge(node, successor, weight)
    return graph


def grid_graph(rows: int, columns: int, *, symmetric: bool = True, spacing: float = 1.0) -> DiGraph:
    """Return a ``rows x columns`` grid with unit edge weights and planar coordinates."""
    if rows <= 0 or columns <= 0:
        raise FragmenterConfigurationError("rows and columns must be positive")
    graph = DiGraph()

    def node_id(r: int, c: int) -> Node:
        return r * columns + c

    for r in range(rows):
        for c in range(columns):
            graph.set_coordinate(node_id(r, c), Point(c * spacing, r * spacing))
    for r in range(rows):
        for c in range(columns):
            if c + 1 < columns:
                _add(graph, node_id(r, c), node_id(r, c + 1), symmetric)
            if r + 1 < rows:
                _add(graph, node_id(r, c), node_id(r + 1, c), symmetric)
    return graph


def star_graph(leaves: int, *, symmetric: bool = True) -> DiGraph:
    """Return a star: node 0 in the middle connected to ``leaves`` outer nodes."""
    import math

    if leaves <= 0:
        raise FragmenterConfigurationError("leaves must be positive")
    graph = DiGraph()
    graph.set_coordinate(0, Point(0.0, 0.0))
    for leaf in range(1, leaves + 1):
        angle = 2.0 * math.pi * leaf / leaves
        graph.set_coordinate(leaf, Point(math.cos(angle), math.sin(angle)))
        _add(graph, 0, leaf, symmetric)
    return graph


def complete_graph(node_count: int, *, symmetric: bool = True) -> DiGraph:
    """Return the complete graph on ``node_count`` nodes (all pairs adjacent)."""
    import math

    if node_count <= 0:
        raise FragmenterConfigurationError("node_count must be positive")
    graph = DiGraph()
    for node in range(node_count):
        angle = 2.0 * math.pi * node / max(node_count, 1)
        graph.set_coordinate(node, Point(math.cos(angle), math.sin(angle)))
    for a in range(node_count):
        for b in range(a + 1, node_count):
            _add(graph, a, b, symmetric)
    return graph


def layered_dag(layers: int, width: int, *, weight: float = 1.0) -> DiGraph:
    """Return a layered DAG: every node of layer ``i`` points to every node of layer ``i+1``.

    Layered DAGs model bill-of-material style part hierarchies, one of the
    motivating applications for transitive closure in the paper's
    introduction.
    """
    if layers <= 0 or width <= 0:
        raise FragmenterConfigurationError("layers and width must be positive")
    graph = DiGraph()

    def node_id(layer: int, slot: int) -> Node:
        return layer * width + slot

    for layer in range(layers):
        for slot in range(width):
            graph.set_coordinate(node_id(layer, slot), Point(float(layer), float(slot)))
    for layer in range(layers - 1):
        for a in range(width):
            for b in range(width):
                graph.add_edge(node_id(layer, a), node_id(layer + 1, b), weight)
    return graph


def two_cluster_dumbbell(
    cluster_size: int,
    *,
    bridge_nodes: int = 1,
    symmetric: bool = True,
) -> DiGraph:
    """Return two cliques joined by ``bridge_nodes`` parallel bridges.

    This is the smallest interesting input for fragmentation algorithms: the
    ideal fragmentation puts one clique in each fragment with the bridge
    endpoints in the disconnection set.
    """
    if cluster_size <= 1:
        raise FragmenterConfigurationError("cluster_size must be at least 2")
    if bridge_nodes <= 0 or bridge_nodes > cluster_size:
        raise FragmenterConfigurationError("bridge_nodes must be between 1 and cluster_size")
    graph = DiGraph()
    left = list(range(cluster_size))
    right = list(range(cluster_size, 2 * cluster_size))
    for index, node in enumerate(left):
        graph.set_coordinate(node, Point(float(index % 3), float(index // 3)))
    for index, node in enumerate(right):
        graph.set_coordinate(node, Point(10.0 + float(index % 3), float(index // 3)))
    for cluster in (left, right):
        for i, a in enumerate(cluster):
            for b in cluster[i + 1:]:
                _add(graph, a, b, symmetric)
    for offset in range(bridge_nodes):
        _add(graph, left[offset], right[offset], symmetric)
    return graph


def european_railway_example() -> Tuple[DiGraph, dict]:
    """Return the small Europe-like railway network used in the examples.

    The graph has three "countries" (Holland, Germany, Italy) whose cities
    form dense regional networks, connected by a few border crossings — a
    hand-built instance of the Amsterdam-to-Milan scenario in Sec. 2.1 of the
    paper.  Returns the graph and a mapping from country name to its city
    list.
    """
    countries = {
        "holland": ["amsterdam", "utrecht", "rotterdam", "eindhoven", "arnhem", "enschede"],
        "germany": ["duisburg", "cologne", "frankfurt", "stuttgart", "munich", "mannheim"],
        "italy": ["bolzano", "verona", "milan", "venice", "bologna", "florence"],
    }
    coordinates = {
        "amsterdam": (4.9, 52.4), "utrecht": (5.1, 52.1), "rotterdam": (4.5, 51.9),
        "eindhoven": (5.5, 51.4), "arnhem": (5.9, 52.0), "enschede": (6.9, 52.2),
        "duisburg": (6.8, 51.4), "cologne": (7.0, 50.9), "frankfurt": (8.7, 50.1),
        "mannheim": (8.5, 49.5), "stuttgart": (9.2, 48.8), "munich": (11.6, 48.1),
        "bolzano": (11.3, 46.5), "verona": (11.0, 45.4), "milan": (9.2, 45.5),
        "venice": (12.3, 45.4), "bologna": (11.3, 44.5), "florence": (11.3, 43.8),
    }
    # Regional connections (weights are rough rail distances in tens of km).
    regional = [
        ("amsterdam", "utrecht", 4), ("utrecht", "rotterdam", 6), ("utrecht", "arnhem", 6),
        ("utrecht", "eindhoven", 9), ("rotterdam", "eindhoven", 11), ("arnhem", "enschede", 9),
        ("eindhoven", "arnhem", 7), ("amsterdam", "rotterdam", 7),
        ("duisburg", "cologne", 6), ("cologne", "frankfurt", 19), ("frankfurt", "mannheim", 8),
        ("mannheim", "stuttgart", 12), ("stuttgart", "munich", 22), ("frankfurt", "stuttgart", 20),
        ("cologne", "mannheim", 24), ("duisburg", "frankfurt", 22),
        ("bolzano", "verona", 15), ("verona", "milan", 16), ("verona", "venice", 12),
        ("verona", "bologna", 14), ("bologna", "florence", 10), ("bologna", "venice", 15),
        ("milan", "bologna", 21), ("milan", "venice", 27),
    ]
    # Border crossings (few, as the disconnection set approach assumes).
    crossings = [
        ("arnhem", "duisburg", 7), ("enschede", "duisburg", 9), ("eindhoven", "cologne", 12),
        ("munich", "bolzano", 28), ("stuttgart", "bolzano", 40),
    ]
    graph = DiGraph()
    for city, (x, y) in coordinates.items():
        graph.set_coordinate(city, Point(x * 10.0, y * 10.0))
    for a, b, distance in regional + crossings:
        graph.add_symmetric_edge(a, b, float(distance))
    return graph, countries


def _add(graph: DiGraph, a: Node, b: Node, symmetric: bool, weight: float = 1.0) -> None:
    if symmetric:
        graph.add_symmetric_edge(a, b, weight)
    else:
        graph.add_edge(a, b, weight)
