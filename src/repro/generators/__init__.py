"""Graph and workload generators used by the experiments.

The random generator reproduces the paper's Sec. 4.1 process (coordinates plus
the distance probability ``P(p,q) = (c1/n^2) e^{-c2 d(p,q)}``); the
transportation generator builds the clustered graphs of Fig. 3; the structured
generators provide deterministic graphs for tests; the workload generators
produce query streams for the speed-up benchmarks.
"""

from .random_graph import (
    RandomGraphConfig,
    calibrate_c1,
    edge_probability,
    generate_coordinates,
    generate_random_graph,
    graph_from_coordinates,
)
from .structured import (
    chain_graph,
    complete_graph,
    cycle_graph,
    european_railway_example,
    grid_graph,
    layered_dag,
    star_graph,
    two_cluster_dumbbell,
)
from .transportation import (
    TransportationGraph,
    TransportationGraphConfig,
    generate_transportation_graph,
    paper_table1_config,
    paper_table2_config,
)
from .workload import (
    PathQuery,
    cross_cluster_queries,
    intra_cluster_queries,
    mixed_workload,
    random_queries,
)

__all__ = [
    "PathQuery",
    "RandomGraphConfig",
    "TransportationGraph",
    "TransportationGraphConfig",
    "calibrate_c1",
    "chain_graph",
    "complete_graph",
    "cross_cluster_queries",
    "cycle_graph",
    "edge_probability",
    "european_railway_example",
    "generate_coordinates",
    "generate_random_graph",
    "generate_transportation_graph",
    "graph_from_coordinates",
    "grid_graph",
    "intra_cluster_queries",
    "layered_dag",
    "mixed_workload",
    "paper_table1_config",
    "paper_table2_config",
    "random_queries",
    "star_graph",
    "two_cluster_dumbbell",
]
