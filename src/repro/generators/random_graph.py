"""Random graph generation with the paper's distance-biased probability.

Section 4.1 of the paper generates test graphs as follows: nodes receive
coordinates evenly spread over an interval, and an edge between nodes ``p``
and ``q`` is created with probability::

    P(p, q) = (c1 / n^2) * exp(-c2 * d(p, q))

where ``d`` is the Euclidean distance, ``c1`` controls the expected number of
edges (connectivity) and ``c2`` how strongly long edges are suppressed.  The
general-graph experiments of Table 3 use exactly this generator with a single
cluster of 100 nodes; the transportation-graph generator builds on it
per cluster.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import FragmenterConfigurationError
from ..graph import DiGraph, Point

Node = int


@dataclass(frozen=True)
class RandomGraphConfig:
    """Parameters of the distance-biased random graph generator.

    Attributes:
        node_count: number of nodes ``n``.
        c1: connectivity parameter; the expected number of undirected edges is
            roughly ``c1 / 2`` when ``c2`` is small (each of the ~``n^2/2``
            pairs is accepted with probability about ``c1/n^2``).
        c2: locality parameter; larger values suppress long edges more.
        extent: side length of the square the coordinates are spread over.
        symmetric: create both directions of each generated adjacency, the
            natural reading of an undirected transportation network.
        connect: when ``True``, extra shortest-available edges are added so
            the generated graph is weakly connected (the paper's test graphs
            are connected networks).
        weight_from_distance: when ``True`` edge weights equal the Euclidean
            distance between the endpoints, otherwise 1.0.
    """

    node_count: int
    c1: float
    c2: float
    extent: float = 100.0
    symmetric: bool = True
    connect: bool = True
    weight_from_distance: bool = True

    def __post_init__(self) -> None:
        if self.node_count <= 0:
            raise FragmenterConfigurationError("node_count must be positive")
        if self.c1 <= 0:
            raise FragmenterConfigurationError("c1 must be positive")
        if self.c2 < 0:
            raise FragmenterConfigurationError("c2 must be non-negative")
        if self.extent <= 0:
            raise FragmenterConfigurationError("extent must be positive")


def edge_probability(config: RandomGraphConfig, distance: float) -> float:
    """Return ``P(p, q)`` for a pair at Euclidean ``distance``, capped at 1.0."""
    raw = (config.c1 / float(config.node_count) ** 2) * math.exp(-config.c2 * distance)
    return min(1.0, raw)


def generate_coordinates(
    node_count: int,
    rng: random.Random,
    *,
    extent: float = 100.0,
    offset: Tuple[float, float] = (0.0, 0.0),
    node_offset: int = 0,
) -> Dict[Node, Point]:
    """Return evenly spread random coordinates for ``node_count`` nodes.

    Nodes are numbered ``node_offset .. node_offset + node_count - 1`` so that
    several clusters generated independently do not collide.
    """
    return {
        node_offset + index: Point(
            offset[0] + rng.uniform(0.0, extent),
            offset[1] + rng.uniform(0.0, extent),
        )
        for index in range(node_count)
    }


def generate_random_graph(config: RandomGraphConfig, *, seed: int = 0) -> DiGraph:
    """Generate a random graph according to ``config``.

    The generator is fully deterministic given ``seed``.
    """
    rng = random.Random(seed)
    coordinates = generate_coordinates(config.node_count, rng, extent=config.extent)
    return graph_from_coordinates(config, coordinates, rng)


def graph_from_coordinates(
    config: RandomGraphConfig,
    coordinates: Dict[Node, Point],
    rng: random.Random,
) -> DiGraph:
    """Generate the edges of a random graph over pre-assigned coordinates.

    Exposed separately so the transportation-graph generator can place each
    cluster in its own region of the plane and still use the same edge
    process.
    """
    graph = DiGraph(coordinates=coordinates)
    nodes: List[Node] = sorted(coordinates)
    for i, p in enumerate(nodes):
        for q in nodes[i + 1:]:
            distance = coordinates[p].distance_to(coordinates[q])
            if rng.random() < edge_probability(config, distance):
                weight = distance if config.weight_from_distance else 1.0
                if config.symmetric:
                    graph.add_symmetric_edge(p, q, weight)
                else:
                    graph.add_edge(p, q, weight)
    if config.connect:
        _connect_components(graph, config)
    return graph


def _connect_components(graph: DiGraph, config: RandomGraphConfig) -> None:
    """Add the shortest available inter-component edges until the graph is connected."""
    from ..graph import weakly_connected_components

    components = weakly_connected_components(graph)
    while len(components) > 1:
        coordinates = graph.coordinates()
        best: Optional[Tuple[float, Node, Node]] = None
        anchor = components[0]
        for other in components[1:]:
            for a in anchor:
                for b in other:
                    distance = coordinates[a].distance_to(coordinates[b])
                    if best is None or distance < best[0]:
                        best = (distance, a, b)
        if best is None:
            break
        distance, a, b = best
        weight = distance if config.weight_from_distance else 1.0
        if config.symmetric:
            graph.add_symmetric_edge(a, b, weight)
        else:
            graph.add_edge(a, b, weight)
        components = weakly_connected_components(graph)


def calibrate_c1(
    config: RandomGraphConfig,
    target_undirected_edges: float,
    *,
    seeds: Sequence[int] = (0, 1, 2),
    iterations: int = 12,
) -> RandomGraphConfig:
    """Return a copy of ``config`` with ``c1`` tuned to hit an edge-count target.

    The paper reports its test graphs through their average edge counts
    (e.g. 279.5 edges for the 100-node general graphs) rather than through
    the ``c1``/``c2`` values used.  This helper searches ``c1`` by bisection
    on the average undirected edge count over a few seeds so experiments can
    be parameterised the same way the paper reports them.
    """
    low, high = config.c1 / 64.0, config.c1 * 64.0

    def average_edges(c1: float) -> float:
        trial = RandomGraphConfig(
            node_count=config.node_count,
            c1=c1,
            c2=config.c2,
            extent=config.extent,
            symmetric=config.symmetric,
            connect=config.connect,
            weight_from_distance=config.weight_from_distance,
        )
        counts = [generate_random_graph(trial, seed=seed).undirected_edge_count() for seed in seeds]
        return sum(counts) / len(counts)

    # Expand the bracket until it contains the target.
    for _ in range(20):
        if average_edges(low) > target_undirected_edges:
            low /= 4.0
        else:
            break
    for _ in range(20):
        if average_edges(high) < target_undirected_edges:
            high *= 4.0
        else:
            break
    for _ in range(iterations):
        mid = math.sqrt(low * high)
        if average_edges(mid) < target_undirected_edges:
            low = mid
        else:
            high = mid
    best = math.sqrt(low * high)
    return RandomGraphConfig(
        node_count=config.node_count,
        c1=best,
        c2=config.c2,
        extent=config.extent,
        symmetric=config.symmetric,
        connect=config.connect,
        weight_from_distance=config.weight_from_distance,
    )
