"""Transportation graph generation (Fig. 3 of the paper).

A *transportation graph* consists of a number of clusters, each highly
connected internally, with only a few edges between clusters — think regional
railway networks joined by a handful of intercity lines, or dense local
telephone networks joined by a few optic fibres.  Section 4.1 generates these
by first generating each cluster with the distance-biased random process and
then wiring the clusters together with a user-specified number of
inter-cluster edges.

The generator records the ground-truth cluster of every node so experiments
can compare discovered fragmentations against the intended structure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import FragmenterConfigurationError
from ..graph import DiGraph, Point
from .random_graph import RandomGraphConfig, generate_coordinates, graph_from_coordinates

Node = int


@dataclass(frozen=True)
class TransportationGraphConfig:
    """Parameters for the transportation-graph generator.

    Attributes:
        cluster_count: number of clusters (the paper's tables use 4).
        nodes_per_cluster: nodes in each cluster (25 in Table 1, 150 in Table 2).
        cluster_c1, cluster_c2: the random-graph parameters used inside each
            cluster.
        cluster_extent: side length of the square each cluster occupies.
        cluster_spacing: distance between the origins of adjacent cluster
            regions; keeping it larger than ``cluster_extent`` makes clusters
            geometrically separated, as in Fig. 3.
        inter_cluster_edges: number of connecting edges per pair of adjacent
            clusters (the paper reports an average of 2.25 connecting edges).
        topology: which cluster pairs are connected.  ``"chain"`` connects
            cluster ``i`` to ``i+1`` (the shape of Fig. 1/Fig. 3);
            ``"cycle"`` additionally closes the loop; ``"complete"`` connects
            every pair.  An explicit list of pairs may be given instead via
            ``explicit_pairs``.
        explicit_pairs: optional explicit list of cluster index pairs to
            connect, overriding ``topology``.
        weight_from_distance: use Euclidean distances as edge weights.
    """

    cluster_count: int = 4
    nodes_per_cluster: int = 25
    cluster_c1: float = 800.0
    cluster_c2: float = 0.03
    cluster_extent: float = 100.0
    cluster_spacing: float = 150.0
    inter_cluster_edges: int = 2
    topology: str = "chain"
    explicit_pairs: Optional[Tuple[Tuple[int, int], ...]] = None
    weight_from_distance: bool = True

    def __post_init__(self) -> None:
        if self.cluster_count <= 0:
            raise FragmenterConfigurationError("cluster_count must be positive")
        if self.nodes_per_cluster <= 0:
            raise FragmenterConfigurationError("nodes_per_cluster must be positive")
        if self.inter_cluster_edges <= 0:
            raise FragmenterConfigurationError("inter_cluster_edges must be positive")
        if self.topology not in ("chain", "cycle", "complete"):
            raise FragmenterConfigurationError(
                f"topology must be 'chain', 'cycle' or 'complete', got {self.topology!r}"
            )


@dataclass
class TransportationGraph:
    """A generated transportation graph together with its ground truth."""

    graph: DiGraph
    clusters: List[Set[Node]]
    inter_cluster_pairs: List[Tuple[Node, Node]] = field(default_factory=list)

    def cluster_of(self, node: Node) -> int:
        """Return the index of the cluster containing ``node``.

        Raises:
            KeyError: if the node belongs to no cluster.
        """
        for index, cluster in enumerate(self.clusters):
            if node in cluster:
                return index
        raise KeyError(node)

    def border_nodes(self) -> Set[Node]:
        """Return the nodes incident to an inter-cluster edge."""
        border: Set[Node] = set()
        for a, b in self.inter_cluster_pairs:
            border.add(a)
            border.add(b)
        return border


def _cluster_origin(config: TransportationGraphConfig, index: int) -> Tuple[float, float]:
    """Place cluster regions on a two-row grid, as in the paper's Fig. 3.

    Clusters 0, 2, 4, ... occupy the bottom row and 1, 3, 5, ... the top row,
    so the overall shape is a compact two-dimensional arrangement rather than
    a thin left-to-right chain.  (A purely linear layout would make the
    coordinate-sweep fragmenter trivially optimal, which is not the situation
    the paper evaluates.)
    """
    column = index // 2
    row = index % 2
    return (column * config.cluster_spacing, row * config.cluster_spacing)


def _connected_cluster_pairs(config: TransportationGraphConfig) -> List[Tuple[int, int]]:
    if config.explicit_pairs is not None:
        return [tuple(pair) for pair in config.explicit_pairs]  # type: ignore[list-item]
    pairs: List[Tuple[int, int]] = []
    if config.topology in ("chain", "cycle"):
        pairs = [(i, i + 1) for i in range(config.cluster_count - 1)]
        if config.topology == "cycle" and config.cluster_count > 2:
            pairs.append((config.cluster_count - 1, 0))
    else:  # complete
        pairs = [
            (i, j)
            for i in range(config.cluster_count)
            for j in range(i + 1, config.cluster_count)
        ]
    return pairs


def generate_transportation_graph(
    config: TransportationGraphConfig,
    *,
    seed: int = 0,
) -> TransportationGraph:
    """Generate a transportation graph according to ``config`` (deterministic per seed)."""
    rng = random.Random(seed)
    graph = DiGraph()
    clusters: List[Set[Node]] = []
    coordinates_by_cluster: List[Dict[Node, Point]] = []

    cluster_config = RandomGraphConfig(
        node_count=config.nodes_per_cluster,
        c1=config.cluster_c1,
        c2=config.cluster_c2,
        extent=config.cluster_extent,
        symmetric=True,
        connect=True,
        weight_from_distance=config.weight_from_distance,
    )

    for index in range(config.cluster_count):
        offset = _cluster_origin(config, index)
        node_offset = index * config.nodes_per_cluster
        coordinates = generate_coordinates(
            config.nodes_per_cluster,
            rng,
            extent=config.cluster_extent,
            offset=offset,
            node_offset=node_offset,
        )
        cluster_graph = graph_from_coordinates(cluster_config, coordinates, rng)
        for node, point in cluster_graph.coordinates().items():
            graph.set_coordinate(node, point)
        for source, target, weight in cluster_graph.weighted_edges():
            graph.add_edge(source, target, weight)
        clusters.append(set(coordinates))
        coordinates_by_cluster.append(coordinates)

    inter_cluster_pairs: List[Tuple[Node, Node]] = []
    for i, j in _connected_cluster_pairs(config):
        pairs = _closest_cross_pairs(
            coordinates_by_cluster[i], coordinates_by_cluster[j], config.inter_cluster_edges, rng
        )
        for a, b in pairs:
            weight = (
                graph.coordinate(a).distance_to(graph.coordinate(b))  # type: ignore[union-attr]
                if config.weight_from_distance
                else 1.0
            )
            graph.add_symmetric_edge(a, b, weight)
            inter_cluster_pairs.append((a, b))

    return TransportationGraph(graph=graph, clusters=clusters, inter_cluster_pairs=inter_cluster_pairs)


def _closest_cross_pairs(
    left: Dict[Node, Point],
    right: Dict[Node, Point],
    count: int,
    rng: random.Random,
) -> List[Tuple[Node, Node]]:
    """Pick ``count`` connecting pairs between two clusters.

    Real transportation networks connect clusters through geographically close
    border points; we therefore rank all cross pairs by distance and sample the
    requested number from the closest candidates, with a little randomness so
    different seeds give different borders.
    """
    candidates: List[Tuple[float, Node, Node]] = [
        (left[a].distance_to(right[b]), a, b) for a in left for b in right
    ]
    candidates.sort(key=lambda item: item[0])
    pool_size = max(count, min(len(candidates), count * 3))
    pool = candidates[:pool_size]
    rng.shuffle(pool)
    chosen = pool[:count]
    return [(a, b) for _, a, b in chosen]


def paper_table1_config() -> TransportationGraphConfig:
    """Configuration approximating the Table 1 workload.

    Table 1 uses transportation graphs of 4 clusters with 25 nodes each, an
    average of 429 (undirected) edges in total and about 2.25 inter-cluster
    edges.  429 total edges over 4 clusters means roughly 105 intra-cluster
    edges per 25-node cluster, i.e. very dense clusters; ``cluster_c1`` below
    is calibrated to that density.
    """
    return TransportationGraphConfig(
        cluster_count=4,
        nodes_per_cluster=25,
        cluster_c1=700.0,
        cluster_c2=0.025,
        cluster_extent=100.0,
        cluster_spacing=150.0,
        inter_cluster_edges=2,
        topology="chain",
    )


def paper_table2_config() -> TransportationGraphConfig:
    """Configuration approximating the Table 2 workload.

    Table 2 uses 4 clusters of 150 nodes and 3167 edges in total, i.e. about
    790 intra-cluster edges per 150-node cluster.
    """
    return TransportationGraphConfig(
        cluster_count=4,
        nodes_per_cluster=150,
        cluster_c1=4950.0,
        cluster_c2=0.025,
        cluster_extent=100.0,
        cluster_spacing=150.0,
        inter_cluster_edges=2,
        topology="chain",
    )
