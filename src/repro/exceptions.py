"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class GraphError(ReproError):
    """Base class for errors raised by the graph substrate."""


class NodeNotFoundError(GraphError, KeyError):
    """A node referenced by a graph operation does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """An edge referenced by a graph operation does not exist in the graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r}, {target!r}) is not in the graph")
        self.source = source
        self.target = target


class MissingCoordinatesError(GraphError):
    """An algorithm needed node coordinates, but the graph has none."""


class NegativeWeightError(GraphError):
    """A shortest-path routine received an edge with a negative weight."""


class DisconnectedError(GraphError):
    """A path-dependent quantity was requested for unreachable nodes."""


class RelationalError(ReproError):
    """Base class for errors raised by the relational algebra engine."""


class SchemaError(RelationalError):
    """A relational operation was applied to incompatible schemas."""


class FragmentationError(ReproError):
    """Base class for errors raised while fragmenting a graph."""


class InvalidFragmentationError(FragmentationError):
    """A produced fragmentation violates a structural invariant."""


class FragmenterConfigurationError(FragmentationError):
    """A fragmentation algorithm was configured with invalid parameters."""


class DisconnectionSetError(ReproError):
    """Base class for errors raised by the disconnection set query engine."""


class NoChainError(DisconnectionSetError):
    """No chain of fragments connects the source and destination fragments."""


class ComplementaryInfoError(DisconnectionSetError):
    """Complementary information required by a query is missing or stale."""


class ParallelError(ReproError):
    """Base class for errors raised by the parallel execution substrate."""


class SchedulingError(ParallelError):
    """The scheduler could not produce a valid assignment."""


class ExperimentError(ReproError):
    """An experiment harness was invoked with unknown or invalid settings."""
