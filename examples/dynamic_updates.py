#!/usr/bin/env python3
"""Operating a fragmented graph database: advisor, updates, and routes.

The paper treats fragmentation as an offline design decision whose costs
(complementary-information precomputation, update handling) are amortised over
many queries.  This example plays the role of the operator:

1. ask the advisor which fragmentation algorithm fits the network,
2. deploy the fragmentation in a mutable :class:`FragmentedDatabase`,
3. apply a batch of updates (a new station, a closed track, a re-priced line)
   and observe the maintenance cost,
4. answer cost *and route* queries on the updated database.

Run with:  python examples/dynamic_updates.py
"""

from __future__ import annotations

from repro.disconnection import FragmentedDatabase, RouteReconstructingEngine
from repro.fragmentation import AdvisorConstraints, recommend
from repro.generators import TransportationGraphConfig, generate_transportation_graph


def main() -> None:
    config = TransportationGraphConfig(
        cluster_count=3, nodes_per_cluster=15, cluster_c1=340.0, inter_cluster_edges=2
    )
    network = generate_transportation_graph(config, seed=29)
    graph = network.graph

    # 1. Ask the advisor.
    recommendation = recommend(graph, AdvisorConstraints(processor_count=3))
    print("advisor recommendation:")
    for line in recommendation.rationale:
        print(f"  {line}")
    fragmentation = recommendation.fragment(graph)

    # 2. Deploy.
    database = FragmentedDatabase(fragmentation)
    engine = database.engine()
    nodes = sorted(network.clusters[0]), sorted(network.clusters[2])
    source, target = nodes[0][0], nodes[1][0]
    print(f"\ninitial query {source} -> {target}: cost {engine.shortest_path_cost(source, target):.1f}")

    # 3. Updates: open a new station, close a track, re-price a line.
    hub = nodes[0][1]
    database.insert_edge(hub, "new-station", 4.0, symmetric=True)
    some_edge = next(iter(fragmentation.fragment(0).edges))
    database.update_edge_weight(*some_edge, weight=50.0)
    database.delete_edge(*some_edge)
    print("\nafter updates:")
    print(f"  maintenance statistics: {database.statistics.as_dict()}")
    updated_engine = database.engine()
    print(f"  {source} -> new-station: cost "
          f"{updated_engine.shortest_path_cost(source, 'new-station'):.1f}")

    # 4. Route reconstruction on the updated state.
    routes = RouteReconstructingEngine(database.fragmentation())
    answer = routes.shortest_path(source, target)
    print(f"\nroute {source} -> {target} (cost {answer.cost:.1f}, "
          f"{answer.hops()} hops, fragments {list(answer.chain)}):")
    print("  " + " -> ".join(str(node) for node in answer.route))


if __name__ == "__main__":
    main()
