#!/usr/bin/env python3
"""The Amsterdam-to-Milan scenario of Sec. 2.1 on a European railway network.

The paper motivates the disconnection set approach with a railway network
naturally fragmented by country: a query about the shortest connection between
Amsterdam and Milan is split into independent per-country subqueries (Holland,
Germany, Italy) plus a final assembly of the per-country results; a query
between two Dutch cities is answered by the Dutch site alone, even when the
best route briefly crosses the border.

This example builds that network, fragments it by country, prints the
fragmentation graph and the per-site storage, and answers both kinds of
queries, also through the Parallel Hierarchical Evaluation extension.

Run with:  python examples/european_railway.py
"""

from __future__ import annotations

from repro import (
    DisconnectionSetEngine,
    GroundTruthFragmenter,
    HierarchicalEngine,
    european_railway_example,
    shortest_path_cost,
)
from repro.fragmentation import FragmentationGraph


def main() -> None:
    graph, countries = european_railway_example()
    country_names = list(countries)
    clusters = [set(countries[name]) for name in country_names]

    # Fragment by country: the "natural fragmentation based on application's
    # semantics" the paper assumes.
    fragmentation = GroundTruthFragmenter(clusters).fragment(graph)
    fragmentation.validate()
    fragmentation_graph = FragmentationGraph(fragmentation)

    print("European railway network")
    print(f"  cities: {graph.node_count()}, connections: {graph.undirected_edge_count()}")
    for index, name in enumerate(country_names):
        fragment = fragmentation.fragment(index)
        border = sorted(fragmentation.border_nodes(index))
        print(f"  fragment {index} ({name}): {fragment.undirected_edge_count()} connections, "
              f"border cities: {border}")
    print(f"  fragmentation graph edges: {fragmentation_graph.edges()} "
          f"(loosely connected: {fragmentation_graph.is_loosely_connected()})")

    engine = DisconnectionSetEngine(fragmentation)

    # A cross-Europe query: three independent subqueries, one small assembly.
    answer = engine.query("amsterdam", "milan")
    chain_names = [country_names[f] for f in answer.chain]
    print("\nAmsterdam -> Milan")
    print(f"  disconnection-set answer: {answer.value:.0f} (chain: {' -> '.join(chain_names)})")
    print(f"  centralised reference:    {shortest_path_cost(graph, 'amsterdam', 'milan'):.0f}")
    print(f"  per-site work (tuples):   "
          f"{ {country_names[f]: w.tuples_produced for f, w in answer.report.site_work.items()} }")

    # A domestic query: answered by the Dutch site alone.
    domestic = engine.query("amsterdam", "enschede")
    print("\nAmsterdam -> Enschede (domestic)")
    print(f"  answer: {domestic.value:.0f}, sites involved: "
          f"{[country_names[f] for f in domestic.report.site_work]}")

    # The hierarchical extension: Holland and Italy are not adjacent, so the
    # query is planned over the fixed three-element chain through the
    # high-speed network fragment.
    hierarchical = HierarchicalEngine(fragmentation)
    backbone = hierarchical.backbone_statistics()
    hierarchical_answer = hierarchical.query("rotterdam", "florence")
    print("\nRotterdam -> Florence via parallel hierarchical evaluation")
    print(f"  backbone fragment: {backbone.node_count} border cities, {backbone.edge_count} precomputed links")
    print(f"  answer: {hierarchical_answer.value:.0f} "
          f"(reference {shortest_path_cost(graph, 'rotterdam', 'florence'):.0f})")


if __name__ == "__main__":
    main()
