#!/usr/bin/env python3
"""Measure the speed-up of the disconnection set approach as fragments are added.

The paper claims near-linear speed-up for good fragmentations (Sec. 1): the
per-fragment transitive closures run independently, and each fragment's
diameter — hence its iteration count — shrinks as the graph is split further.
This example sweeps the number of clusters/fragments, simulates an end-to-end
query workload at each point, and prints the speed-up and iteration-reduction
series.  It closes with a real multiprocessing run of one query to show the
subqueries executing as independent OS processes.

Run with:  python examples/parallel_speedup.py
"""

from __future__ import annotations

from repro import CenterBasedFragmenter, GroundTruthFragmenter
from repro.generators import (
    TransportationGraphConfig,
    cross_cluster_queries,
    generate_transportation_graph,
)
from repro.parallel import MultiprocessQueryExecutor, speedup_curve


def network_with(cluster_count: int):
    config = TransportationGraphConfig(
        cluster_count=cluster_count,
        nodes_per_cluster=18,
        cluster_c1=430.0,
        cluster_c2=0.03,
        inter_cluster_edges=2,
    )
    return generate_transportation_graph(config, seed=11)


def main() -> None:
    print("fragments  speedup  iteration_reduction  parallel_time  sequential_time")
    for cluster_count in (2, 3, 4, 6, 8):
        network = network_with(cluster_count)
        queries = cross_cluster_queries(
            network.clusters, 8, seed=2, minimum_cluster_distance=cluster_count - 1
        )
        point = speedup_curve(
            network.graph,
            lambda count: CenterBasedFragmenter(count, center_selection="distributed"),
            fragment_counts=[cluster_count],
            queries=queries,
        )[0]
        print(
            f"{point.fragment_count:^9}  {point.speedup:7.2f}  {point.iteration_reduction():19.2f}  "
            f"{point.parallel_time:13.0f}  {point.sequential_time:15.0f}"
        )

    # One query executed with real worker processes (one per fragment).
    network = network_with(4)
    fragmentation = GroundTruthFragmenter(network.clusters).fragment(network.graph)
    executor = MultiprocessQueryExecutor(fragmentation, processes=4)
    query = cross_cluster_queries(network.clusters, 1, seed=9, minimum_cluster_distance=3)[0]
    answer = executor.query(query.source, query.target)
    print(
        f"\nmultiprocessing run: {query.source} -> {query.target} = {answer.value:.1f} "
        f"({answer.subqueries_executed} subqueries on {answer.worker_count} worker processes)"
    )


if __name__ == "__main__":
    main()
