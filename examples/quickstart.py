#!/usr/bin/env python3
"""Quickstart: fragment a transportation graph and run a parallel path query.

This walks through the whole pipeline of the paper in a few lines:

1. generate a transportation graph (the paper's Fig. 3 workload),
2. fragment it with the bond-energy algorithm (the paper's recommendation for
   small disconnection sets),
3. inspect the fragmentation characteristics the paper's tables report,
4. deploy the fragmentation in a disconnection-set query engine and answer a
   cross-fragment shortest-path query,
5. compare the answer with the centralised evaluation of the whole graph.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    BondEnergyFragmenter,
    DisconnectionSetEngine,
    characterize,
    generate_transportation_graph,
    paper_table1_config,
    shortest_path_cost,
)
from repro.generators import cross_cluster_queries


def main() -> None:
    # 1. A transportation graph: 4 clusters of 25 nodes, loosely interconnected.
    network = generate_transportation_graph(paper_table1_config(), seed=7)
    graph = network.graph
    print(f"generated graph: {graph.node_count()} nodes, "
          f"{graph.undirected_edge_count()} undirected edges, "
          f"{len(network.inter_cluster_pairs)} inter-cluster connections")

    # 2. Fragment it into 4 fragments with the bond-energy algorithm.
    fragmentation = BondEnergyFragmenter(fragment_count=4).fragment(graph)
    fragmentation.validate()

    # 3. The characteristics Tables 1-3 of the paper report.
    characteristics = characterize(fragmentation)
    print(f"fragmentation ({characteristics.algorithm}): "
          f"F = {characteristics.average_fragment_size:.1f}, "
          f"DS = {characteristics.average_disconnection_set_size:.1f}, "
          f"AF = {characteristics.fragment_size_deviation:.1f}, "
          f"ADS = {characteristics.disconnection_set_deviation:.1f}, "
          f"loosely connected = {characteristics.loosely_connected}")

    # 4. Deploy the fragmentation and answer a cross-fragment query.
    engine = DisconnectionSetEngine(fragmentation)
    query = cross_cluster_queries(network.clusters, 1, seed=1, minimum_cluster_distance=3)[0]
    answer = engine.query(query.source, query.target)
    print(f"query {query.source} -> {query.target}: cost {answer.value:.1f} "
          f"via fragment chain {answer.chain}")
    print(f"  sites involved: {sorted(answer.report.site_work)}; "
          f"slowest site ran {answer.report.critical_path_iterations()} iterations")

    # 5. The disconnection set approach is lossless: same answer as Dijkstra
    #    on the unfragmented graph.
    reference = shortest_path_cost(graph, query.source, query.target)
    print(f"  centralised reference cost: {reference:.1f} "
          f"({'match' if abs(reference - answer.value) < 1e-9 else 'MISMATCH'})")


if __name__ == "__main__":
    main()
