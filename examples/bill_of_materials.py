#!/usr/bin/env python3
"""Bill-of-materials queries: the paper's other motivating application.

The introduction of the paper lists part-hierarchy ("bill of material")
questions alongside route questions as the canonical transitive-closure
workloads.  This example models a small product hierarchy, fragments it along
its sub-assemblies, and answers three kinds of queries:

* reachability — "is this bolt used anywhere inside the cargo bike?",
* usage counting — "in how many distinct ways does the cargo bike use M5 bolts?"
  (a non-idempotent semiring, evaluated centrally),
* cheapest sourcing path under the shortest-path semiring, evaluated through
  the disconnection set engine on the fragmented hierarchy.

Run with:  python examples/bill_of_materials.py
"""

from __future__ import annotations

from repro import DiGraph, GroundTruthFragmenter, reachability_engine, shortest_path_engine
from repro.closure import bill_of_materials, is_connected


def build_product_hierarchy() -> tuple:
    """Return (graph, sub-assembly clusters) of a small cargo-bike hierarchy."""
    graph = DiGraph()
    # (assembly, component, assembly cost contribution)
    structure = [
        ("cargo-bike", "frame-assembly", 120.0),
        ("cargo-bike", "drive-assembly", 80.0),
        ("cargo-bike", "cargo-box", 45.0),
        ("frame-assembly", "front-frame", 40.0),
        ("frame-assembly", "rear-frame", 35.0),
        ("frame-assembly", "m5-bolt", 0.2),
        ("front-frame", "steel-tube", 6.0),
        ("front-frame", "m5-bolt", 0.2),
        ("rear-frame", "steel-tube", 6.0),
        ("rear-frame", "dropout", 3.5),
        ("drive-assembly", "crankset", 28.0),
        ("drive-assembly", "chain", 12.0),
        ("drive-assembly", "rear-wheel", 55.0),
        ("crankset", "chainring", 9.0),
        ("crankset", "m5-bolt", 0.2),
        ("rear-wheel", "hub", 18.0),
        ("rear-wheel", "rim", 14.0),
        ("cargo-box", "plywood-panel", 8.0),
        ("cargo-box", "m5-bolt", 0.2),
    ]
    for assembly, part, cost in structure:
        graph.add_edge(assembly, part, cost)
    clusters = [
        {"cargo-bike", "frame-assembly", "front-frame", "rear-frame", "steel-tube", "dropout", "m5-bolt"},
        {"drive-assembly", "crankset", "chain", "rear-wheel", "chainring", "hub", "rim"},
        {"cargo-box", "plywood-panel"},
    ]
    return graph, clusters


def main() -> None:
    graph, clusters = build_product_hierarchy()
    print(f"product hierarchy: {graph.node_count()} parts, {graph.edge_count()} uses")

    # Centralised bill-of-material aggregation (path counting).
    counts = bill_of_materials(graph)
    usages = counts.values.get(("cargo-bike", "m5-bolt"), 0)
    print(f"distinct usage paths of 'm5-bolt' inside 'cargo-bike': {usages}")
    print(f"'chainring' used in bike: {is_connected(graph, 'cargo-bike', 'chainring')}")

    # Fragment the hierarchy by sub-assembly and answer the same questions
    # through the disconnection set approach.
    fragmentation = GroundTruthFragmenter(clusters).fragment(graph)
    fragmentation.validate()
    reach = reachability_engine(fragmentation)
    print(f"[fragmented] bolt used in cargo-box subtree: {reach.is_connected('cargo-box', 'm5-bolt')}")
    print(f"[fragmented] hub used in frame subtree:      {reach.is_connected('frame-assembly', 'hub')}")

    costs = shortest_path_engine(fragmentation)
    answer = costs.query("cargo-bike", "hub")
    print(
        f"[fragmented] cheapest derivation chain cargo-bike -> hub: {answer.value:.1f} "
        f"via fragments {answer.chain}"
    )


if __name__ == "__main__":
    main()
