#!/usr/bin/env python3
"""Compare the paper's three fragmentation algorithms on the same graphs.

Regenerates, at example scale, the story of Sec. 4.2: each algorithm achieves
the goal it was designed for — center-based balances fragment sizes,
bond-energy minimises disconnection sets, linear keeps the fragmentation graph
acyclic — and no algorithm wins on every axis.  The comparison is run both on
a transportation graph (the paper's main workload) and on a general random
graph (its Table 3), and finishes with the simulated query-cost consequences
(the experiment the paper defers to future work).

Run with:  python examples/fragmentation_comparison.py
"""

from __future__ import annotations

from repro import (
    BondEnergyFragmenter,
    CenterBasedFragmenter,
    HashFragmenter,
    LinearFragmenter,
    characterize,
    generate_random_graph,
    generate_transportation_graph,
    paper_table1_config,
)
from repro.experiments import format_table, paper_table3_graph_config
from repro.generators import mixed_workload
from repro.parallel import compare_fragmenters


def _fragmenters(fragment_count: int):
    return {
        "center-based": CenterBasedFragmenter(fragment_count, center_selection="random", seed=1),
        "center-distributed": CenterBasedFragmenter(fragment_count, center_selection="distributed"),
        "bond-energy": BondEnergyFragmenter(fragment_count),
        "linear": LinearFragmenter(fragment_count),
        "hash (baseline)": HashFragmenter(fragment_count),
    }


def characterise_all(graph, fragment_count: int):
    rows = []
    for name, fragmenter in _fragmenters(fragment_count).items():
        fragmentation = fragmenter.fragment(graph)
        fragmentation.validate()
        row = characterize(fragmentation).as_dict()
        row["algorithm"] = name
        rows.append(row)
    return rows


def main() -> None:
    columns = ["algorithm", "fragment_count", "F", "DS", "AF", "ADS", "loosely_connected"]

    # 1. Transportation graph (Table 1 workload).
    network = generate_transportation_graph(paper_table1_config(), seed=3)
    rows = characterise_all(network.graph, fragment_count=4)
    print(format_table(rows, columns, title="Transportation graph (4 clusters x 25 nodes)"))

    # 2. General random graph (Table 3 workload).
    general = generate_random_graph(paper_table3_graph_config(), seed=3)
    rows = characterise_all(general, fragment_count=3)
    print()
    print(format_table(rows, columns, title="General graph (100 nodes)"))

    # 3. What do these characteristics mean for query cost?  Simulate the same
    #    mixed workload under every fragmentation (the deferred experiment).
    queries = mixed_workload(network.graph, network.clusters, 10, cross_fraction=0.7, seed=5)
    simulations = compare_fragmenters(network.graph, _fragmenters(4), queries)
    cost_rows = [
        {
            "algorithm": name,
            "parallel_time": simulation.total_parallel_time,
            "speedup": simulation.overall_speedup(),
            "vs_centralized": simulation.speedup_vs_centralized(),
        }
        for name, simulation in simulations.items()
    ]
    print()
    print(
        format_table(
            cost_rows,
            ["algorithm", "parallel_time", "speedup", "vs_centralized"],
            title="Simulated cost of a 10-query workload (one processor per fragment)",
            float_format="{:.2f}",
        )
    )


if __name__ == "__main__":
    main()
