"""Unit tests for the distributed catalog (per-site storage)."""

import pytest

from repro.disconnection import DistributedCatalog, precompute_complementary_information
from repro.fragmentation import GroundTruthFragmenter
from repro.generators import two_cluster_dumbbell


@pytest.fixture
def catalog():
    graph = two_cluster_dumbbell(4, bridge_nodes=2)
    fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
    return DistributedCatalog(fragmentation)


class TestSites:
    def test_one_site_per_fragment(self, catalog):
        assert catalog.site_count() == 2
        assert [site.fragment_id for site in catalog.sites()] == [0, 1]

    def test_site_stores_its_fragment_relation(self, catalog):
        site = catalog.site(0)
        relation = site.local_relation()
        assert relation.schema == ("source", "target", "cost")
        assert relation.cardinality() == site.edge_count()

    def test_border_nodes_match_fragmentation(self, catalog):
        fragmentation = catalog.fragmentation
        for site in catalog.sites():
            assert site.border_nodes == fragmentation.border_nodes(site.fragment_id)

    def test_neighbours_and_disconnection_sets(self, catalog):
        site = catalog.site(0)
        assert site.neighbours == [1]
        assert site.disconnection_sets[1] == catalog.fragmentation.disconnection_set(0, 1)

    def test_sites_storing_node(self, catalog):
        # Node 4 and 5 sit on the bridge (stored in both fragments through
        # the bridge edges owned by fragment 0).
        assert catalog.sites_storing_node(1) == [0]
        assert catalog.sites_storing_node(7) == [1]
        assert len(catalog.sites_storing_node(4)) >= 1

    def test_augmented_subgraph_contains_shortcuts(self, catalog):
        site = catalog.site(0)
        augmented = site.augmented_subgraph()
        assert augmented.edge_count() >= site.subgraph.edge_count()

    def test_total_storage_includes_complementary_facts(self, catalog):
        edges = sum(site.edge_count() for site in catalog.sites())
        assert catalog.total_storage_facts() >= edges


class TestReuseOfComplementaryInformation:
    def test_precomputed_information_is_reused(self):
        graph = two_cluster_dumbbell(4, bridge_nodes=2)
        fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
        info = precompute_complementary_information(fragmentation)
        catalog = DistributedCatalog(fragmentation, complementary=info)
        assert catalog.complementary is info
