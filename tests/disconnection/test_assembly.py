"""Unit tests for the final assembly of per-fragment results."""

import pytest

from repro.closure import ClosureStatistics, reachability_semiring, shortest_path_semiring
from repro.disconnection import assemble_chain, assemble_chain_with_joins, best_over_chains
from repro.disconnection.local_query import LocalQueryResult
from repro.disconnection.planner import ChainPlan, LocalQuerySpec


def _plan(chain, source, target):
    specs = tuple(
        LocalQuerySpec(fragment_id=fragment_id, entry_nodes=frozenset(), exit_nodes=frozenset())
        for fragment_id in chain
    )
    return ChainPlan(chain=tuple(chain), local_queries=specs, source=source, target=target)


def _result(fragment_id, values):
    return LocalQueryResult(fragment_id=fragment_id, values=dict(values), statistics=ClosureStatistics())


class TestAssembleChain:
    def test_two_fragment_chain_sums_costs(self):
        plan = _plan([0, 1], "s", "t")
        results = [
            _result(0, {("s", "x"): 2.0, ("s", "y"): 5.0}),
            _result(1, {("x", "t"): 4.0, ("y", "t"): 0.5}),
        ]
        assembly = assemble_chain(plan, results)
        assert assembly.value == 5.5  # s->y->t beats s->x->t (6.0)
        assert assembly.join_operations == 2

    def test_single_fragment_chain(self):
        plan = _plan([0], "s", "t")
        assembly = assemble_chain(plan, [_result(0, {("s", "t"): 3.0})])
        assert assembly.value == 3.0

    def test_no_path_yields_none(self):
        plan = _plan([0, 1], "s", "t")
        results = [_result(0, {("s", "x"): 1.0}), _result(1, {})]
        assembly = assemble_chain(plan, results)
        assert assembly.value is None

    def test_broken_chain_stops_early(self):
        plan = _plan([0, 1, 2], "s", "t")
        results = [_result(0, {}), _result(1, {("x", "y"): 1.0}), _result(2, {("y", "t"): 1.0})]
        assembly = assemble_chain(plan, results)
        assert assembly.value is None

    def test_result_count_mismatch_raises(self):
        plan = _plan([0, 1], "s", "t")
        with pytest.raises(ValueError):
            assemble_chain(plan, [_result(0, {})])

    def test_reachability_semiring(self):
        plan = _plan([0, 1], "s", "t")
        results = [_result(0, {("s", "x"): True}), _result(1, {("x", "t"): True})]
        assembly = assemble_chain(plan, results, semiring=reachability_semiring())
        assert assembly.value is True

    def test_source_equals_target_defaults_to_one(self):
        plan = _plan([0], "s", "s")
        assembly = assemble_chain(plan, [_result(0, {})])
        assert assembly.value == shortest_path_semiring().one


class TestRelationalAssembly:
    def test_matches_dynamic_programming_assembly(self):
        plan = _plan([0, 1, 2], "s", "t")
        results = [
            _result(0, {("s", "a"): 1.0, ("s", "b"): 2.0}),
            _result(1, {("a", "c"): 5.0, ("b", "c"): 1.0, ("b", "d"): 7.0}),
            _result(2, {("c", "t"): 1.0, ("d", "t"): 0.5}),
        ]
        dp = assemble_chain(plan, results)
        joins = assemble_chain_with_joins(plan, results)
        assert joins.value == pytest.approx(dp.value)
        assert joins.join_operations == 2

    def test_join_assembly_no_path(self):
        plan = _plan([0, 1], "s", "t")
        results = [_result(0, {("s", "a"): 1.0}), _result(1, {("b", "t"): 1.0})]
        assert assemble_chain_with_joins(plan, results).value is None


class TestBestOverChains:
    def test_picks_minimum(self):
        plan_a = _plan([0], "s", "t")
        plan_b = _plan([1], "s", "t")
        a = assemble_chain(plan_a, [_result(0, {("s", "t"): 9.0})])
        b = assemble_chain(plan_b, [_result(1, {("s", "t"): 4.0})])
        assert best_over_chains([a, b]) == 4.0

    def test_all_empty_yields_none(self):
        plan = _plan([0], "s", "t")
        empty = assemble_chain(plan, [_result(0, {})])
        assert best_over_chains([empty]) is None
