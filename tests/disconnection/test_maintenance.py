"""Tests for update handling on a deployed fragmentation."""

import pytest

from repro.closure import shortest_path_cost
from repro.disconnection import FragmentedDatabase
from repro.exceptions import DisconnectedError, FragmentationError
from repro.fragmentation import CenterBasedFragmenter, GroundTruthFragmenter
from repro.generators import two_cluster_dumbbell


@pytest.fixture
def database():
    graph = two_cluster_dumbbell(4, bridge_nodes=1)
    fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
    return FragmentedDatabase(fragmentation)


class TestInsertions:
    def test_insert_routes_to_fragment_containing_both_endpoints(self, database):
        owner = database.insert_edge(1, 3, 2.5)
        assert owner == 0
        assert database.graph.has_edge(1, 3)
        assert database.statistics.edges_inserted == 1

    def test_insert_new_node_extends_an_existing_fragment(self, database):
        owner = database.insert_edge(7, "new-stop", 1.0, symmetric=True)
        assert owner == 1
        fragmentation = database.fragmentation()
        assert "new-stop" in fragmentation.fragment(owner).nodes

    def test_insert_between_unknown_nodes_goes_to_smallest_fragment(self, database):
        owner = database.insert_edge("x1", "x2", 1.0)
        assert owner in (0, 1)
        assert database.graph.has_edge("x1", "x2")

    def test_queries_reflect_inserted_shortcut(self, database):
        engine_before = database.engine()
        before = engine_before.shortest_path_cost(0, 7)
        database.insert_edge(0, 7, 0.5, symmetric=True)
        after = database.engine().shortest_path_cost(0, 7)
        assert after == pytest.approx(0.5)
        assert after < before

    def test_engine_is_cached_until_an_update(self, database):
        first = database.engine()
        second = database.engine()
        assert first is second
        database.insert_edge(0, 2, 1.0)
        assert database.engine() is not first
        assert database.statistics.engine_rebuilds == 2


class TestDeletionsAndWeightChanges:
    def test_delete_edge(self, database):
        database.delete_edge(0, 1)
        assert not database.graph.has_edge(0, 1)
        assert database.statistics.edges_deleted == 1

    def test_delete_symmetric(self, database):
        database.delete_edge(0, 1, symmetric=True)
        assert not database.graph.has_edge(1, 0)
        assert database.statistics.edges_deleted == 2

    def test_delete_unknown_edge_raises(self, database):
        with pytest.raises(FragmentationError):
            database.delete_edge("nope", "nothere")

    def test_deleting_the_bridge_disconnects_the_clusters(self, database):
        from repro.exceptions import NoChainError

        database.delete_edge(0, 4, symmetric=True)
        with pytest.raises((DisconnectedError, NoChainError)):
            database.engine().shortest_path_cost(1, 7)

    def test_update_edge_weight_changes_answers(self, database):
        baseline = database.engine().shortest_path_cost(1, 7)
        database.update_edge_weight(0, 4, 100.0)
        database.update_edge_weight(4, 0, 100.0)
        increased = database.engine().shortest_path_cost(1, 7)
        assert increased > baseline

    def test_update_unknown_edge_raises(self, database):
        with pytest.raises(FragmentationError):
            database.update_edge_weight("a", "b", 1.0)


class TestConsistencyAndRefragmentation:
    def test_answers_match_centralized_after_a_batch_of_updates(self, database):
        database.insert_edge(2, 6, 1.5, symmetric=True)
        database.delete_edge(0, 1, symmetric=True)
        database.insert_edge(5, "depot", 2.0, symmetric=True)
        graph = database.graph
        engine = database.engine()
        for source, target in [(2, 6), (3, "depot"), (1, 7)]:
            assert engine.shortest_path_cost(source, target) == pytest.approx(
                shortest_path_cost(graph, source, target)
            )

    def test_fragmentation_snapshot_is_valid_after_updates(self, database):
        database.insert_edge(1, 3, 1.0, symmetric=True)
        database.insert_edge(6, "annex", 1.0, symmetric=True)
        database.delete_edge(4, 5, symmetric=True)
        database.fragmentation().validate()

    def test_refragment_with_a_new_algorithm(self, database):
        database.insert_edge(3, "hub", 1.0, symmetric=True)
        fragmentation = database.refragment(CenterBasedFragmenter(2, center_selection="distributed"))
        fragmentation.validate()
        assert fragmentation.algorithm == "center-based-distributed"
        # Queries still work after reorganisation.
        cost = database.engine().shortest_path_cost(1, 7)
        assert cost == pytest.approx(shortest_path_cost(database.graph, 1, 7))

    def test_update_statistics_dictionary(self, database):
        database.insert_edge(0, 3, 1.0)
        stats = database.statistics.as_dict()
        assert stats["edges_inserted"] == 1
        assert "complementary_refreshes" in stats
