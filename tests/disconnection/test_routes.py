"""Tests for distributed route reconstruction."""

import pytest

from repro.closure import shortest_path_cost
from repro.disconnection import RouteReconstructingEngine, precompute_complementary_information
from repro.exceptions import DisconnectedError, NoChainError
from repro.fragmentation import GroundTruthFragmenter, LinearFragmenter
from repro.generators import cross_cluster_queries, european_railway_example, two_cluster_dumbbell
from repro.graph import shortest_path


def _route_cost(graph, route):
    return sum(graph.edge_weight(a, b) for a, b in zip(route, route[1:]))


class TestDumbbellRoutes:
    @pytest.fixture(scope="class")
    def setup(self):
        graph = two_cluster_dumbbell(4, bridge_nodes=2)
        fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
        return graph, RouteReconstructingEngine(fragmentation)

    def test_route_matches_centralized_cost(self, setup):
        graph, engine = setup
        answer = engine.shortest_path(2, 7)
        expected_cost, _ = shortest_path(graph, 2, 7)
        assert answer.cost == pytest.approx(expected_cost)

    def test_route_is_a_valid_walk_with_the_reported_cost(self, setup):
        graph, engine = setup
        answer = engine.shortest_path(3, 6)
        assert answer.route[0] == 3 and answer.route[-1] == 6
        for a, b in zip(answer.route, answer.route[1:]):
            assert graph.has_edge(a, b)
        assert _route_cost(graph, answer.route) == pytest.approx(answer.cost)

    def test_route_to_self(self, setup):
        _, engine = setup
        answer = engine.shortest_path(5, 5)
        assert answer.cost == 0.0
        assert answer.route == [5]
        assert answer.hops() == 0

    def test_unknown_node_raises(self, setup):
        _, engine = setup
        with pytest.raises(NoChainError):
            engine.shortest_path("ghost", 3)

    def test_unreachable_raises(self):
        graph = two_cluster_dumbbell(3, bridge_nodes=1)
        from repro.graph import DiGraph
        directed = DiGraph([("a", "b", 1.0), ("c", "b", 1.0)])
        from repro.fragmentation import Fragmentation

        fragmentation = Fragmentation(directed, [[("a", "b")], [("c", "b")]])
        engine = RouteReconstructingEngine(fragmentation)
        with pytest.raises(DisconnectedError):
            engine.shortest_path("a", "c")


class TestRailwayRoutes:
    @pytest.fixture(scope="class")
    def setup(self):
        graph, countries = european_railway_example()
        clusters = [set(v) for v in countries.values()]
        fragmentation = GroundTruthFragmenter(clusters).fragment(graph)
        return graph, RouteReconstructingEngine(fragmentation)

    def test_amsterdam_milan_route(self, setup):
        graph, engine = setup
        answer = engine.shortest_path("amsterdam", "milan")
        expected_cost, expected_route = shortest_path(graph, "amsterdam", "milan")
        assert answer.cost == pytest.approx(expected_cost)
        assert answer.route[0] == "amsterdam" and answer.route[-1] == "milan"
        assert _route_cost(graph, answer.route) == pytest.approx(expected_cost)

    def test_domestic_route_with_detour_over_the_border(self, setup):
        graph, engine = setup
        # The best Arnhem -> Enschede route stays domestic, but the engine must
        # still return a valid walk whose cost equals the optimum.
        answer = engine.shortest_path("arnhem", "enschede")
        expected_cost, _ = shortest_path(graph, "arnhem", "enschede")
        assert answer.cost == pytest.approx(expected_cost)
        assert _route_cost(graph, answer.route) == pytest.approx(answer.cost)

    def test_reuses_precomputed_information_with_paths(self, setup):
        graph, _ = setup
        _, countries = european_railway_example()
        clusters = [set(v) for v in countries.values()]
        fragmentation = GroundTruthFragmenter(clusters).fragment(graph)
        info = precompute_complementary_information(fragmentation, store_paths=True)
        engine = RouteReconstructingEngine(fragmentation, complementary=info)
        answer = engine.shortest_path("utrecht", "verona")
        assert _route_cost(graph, answer.route) == pytest.approx(answer.cost)


class TestGeneratedNetworkRoutes:
    def test_routes_on_linear_fragmentation(self, small_transportation_network):
        network = small_transportation_network
        graph = network.graph
        fragmentation = LinearFragmenter(4).fragment(graph)
        engine = RouteReconstructingEngine(fragmentation)
        queries = cross_cluster_queries(network.clusters, 5, seed=8)
        for query in queries:
            answer = engine.shortest_path(query.source, query.target)
            assert answer.cost == pytest.approx(shortest_path_cost(graph, query.source, query.target))
            assert answer.route[0] == query.source
            assert answer.route[-1] == query.target
            assert _route_cost(graph, answer.route) == pytest.approx(answer.cost)


class TestCompactKernelEquivalence:
    """The array-kernel local search must agree with the dict-based walk."""

    @pytest.fixture(scope="class")
    def engines(self):
        graph = two_cluster_dumbbell(4, bridge_nodes=2)
        fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
        info = precompute_complementary_information(fragmentation, store_paths=True)
        return (
            graph,
            RouteReconstructingEngine(fragmentation, complementary=info, use_compact=False),
            RouteReconstructingEngine(fragmentation, complementary=info, use_compact=True),
        )

    def test_costs_agree_on_every_pair(self, engines):
        graph, dict_engine, kernel_engine = engines
        for source in range(8):
            for target in range(8):
                if source == target:
                    continue
                dict_answer = dict_engine.shortest_path(source, target)
                kernel_answer = kernel_engine.shortest_path(source, target)
                assert kernel_answer.cost == pytest.approx(dict_answer.cost)

    def test_kernel_routes_are_valid_walks_at_the_optimal_cost(self, engines):
        graph, _, kernel_engine = engines
        for source, target in [(0, 7), (2, 5), (6, 1), (3, 4)]:
            answer = kernel_engine.shortest_path(source, target)
            assert answer.route[0] == source and answer.route[-1] == target
            for a, b in zip(answer.route, answer.route[1:]):
                assert graph.has_edge(a, b)
            assert _route_cost(graph, answer.route) == pytest.approx(answer.cost)
            assert answer.cost == pytest.approx(shortest_path_cost(graph, source, target))

    def test_kernel_equivalence_on_generated_network(self, small_transportation_network):
        network = small_transportation_network
        fragmentation = LinearFragmenter(4).fragment(network.graph)
        info = precompute_complementary_information(fragmentation, store_paths=True)
        dict_engine = RouteReconstructingEngine(
            fragmentation, complementary=info, use_compact=False
        )
        kernel_engine = RouteReconstructingEngine(fragmentation, complementary=info)
        for query in cross_cluster_queries(network.clusters, 6, seed=3):
            dict_answer = dict_engine.shortest_path(query.source, query.target)
            kernel_answer = kernel_engine.shortest_path(query.source, query.target)
            assert kernel_answer.cost == pytest.approx(dict_answer.cost)
            assert _route_cost(network.graph, kernel_answer.route) == pytest.approx(
                kernel_answer.cost
            )
