"""Unit tests for per-fragment local query evaluation."""

import pytest

from repro.closure import reachability_semiring, widest_path_semiring
from repro.disconnection import DistributedCatalog, LocalQueryEvaluator
from repro.disconnection.planner import LocalQuerySpec
from repro.fragmentation import GroundTruthFragmenter
from repro.generators import two_cluster_dumbbell


@pytest.fixture
def catalog():
    graph = two_cluster_dumbbell(4, bridge_nodes=2)
    fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
    return DistributedCatalog(fragmentation)


class TestShortestPathEvaluation:
    def test_entry_to_exit_values(self, catalog):
        site = catalog.site(0)
        spec = LocalQuerySpec(fragment_id=0, entry_nodes=frozenset([2]), exit_nodes=frozenset([0, 1]))
        result = LocalQueryEvaluator().evaluate(site, spec)
        assert result.values[(2, 0)] == 1.0
        assert result.values[(2, 1)] == 1.0

    def test_entry_equals_exit_gives_zero(self, catalog):
        site = catalog.site(0)
        spec = LocalQuerySpec(fragment_id=0, entry_nodes=frozenset([1]), exit_nodes=frozenset([1]))
        result = LocalQueryEvaluator().evaluate(site, spec)
        assert result.values[(1, 1)] == 0.0

    def test_missing_entry_node_yields_empty_result(self, catalog):
        site = catalog.site(1)
        spec = LocalQuerySpec(fragment_id=1, entry_nodes=frozenset(["ghost"]), exit_nodes=frozenset([7]))
        result = LocalQueryEvaluator().evaluate(site, spec)
        assert result.is_empty()

    def test_statistics_and_iterations_populated(self, catalog):
        site = catalog.site(0)
        spec = LocalQuerySpec(fragment_id=0, entry_nodes=frozenset([0]), exit_nodes=frozenset([3]))
        result = LocalQueryEvaluator().evaluate(site, spec)
        assert result.estimated_iterations >= 1
        assert result.statistics.tuples_produced >= 1

    def test_exit_values_best_per_exit(self, catalog):
        site = catalog.site(0)
        spec = LocalQuerySpec(
            fragment_id=0, entry_nodes=frozenset([0, 1]), exit_nodes=frozenset([2, 3])
        )
        result = LocalQueryEvaluator().evaluate(site, spec)
        best = result.exit_values()
        assert set(best) <= {2, 3}
        assert all(value <= 2.0 for value in best.values())

    def test_shortcuts_can_be_disabled(self, catalog):
        site = catalog.site(0)
        spec = LocalQuerySpec(fragment_id=0, entry_nodes=frozenset([0]), exit_nodes=frozenset([1]))
        with_shortcuts = LocalQueryEvaluator(use_shortcuts=True).evaluate(site, spec)
        without_shortcuts = LocalQueryEvaluator(use_shortcuts=False).evaluate(site, spec)
        assert with_shortcuts.values[(0, 1)] <= without_shortcuts.values[(0, 1)]


class TestOtherSemirings:
    def test_reachability_evaluation(self):
        graph = two_cluster_dumbbell(3, bridge_nodes=1)
        fragmentation = GroundTruthFragmenter([set(range(3)), set(range(3, 6))]).fragment(graph)
        catalog = DistributedCatalog(fragmentation, semiring=reachability_semiring())
        evaluator = LocalQueryEvaluator(semiring=reachability_semiring())
        spec = LocalQuerySpec(fragment_id=0, entry_nodes=frozenset([0]), exit_nodes=frozenset([2]))
        result = evaluator.evaluate(catalog.site(0), spec)
        assert result.values[(0, 2)] is True

    def test_generic_semiring_evaluation(self):
        graph = two_cluster_dumbbell(3, bridge_nodes=1)
        fragmentation = GroundTruthFragmenter([set(range(3)), set(range(3, 6))]).fragment(graph)
        catalog = DistributedCatalog(fragmentation, semiring=widest_path_semiring())
        evaluator = LocalQueryEvaluator(semiring=widest_path_semiring(), use_shortcuts=False)
        spec = LocalQuerySpec(fragment_id=0, entry_nodes=frozenset([0]), exit_nodes=frozenset([2]))
        result = evaluator.evaluate(catalog.site(0), spec)
        assert result.values[(0, 2)] == 1.0
