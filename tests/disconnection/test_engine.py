"""Unit and integration tests for the DisconnectionSetEngine."""

import pytest

from repro.closure import shortest_path_cost
from repro.disconnection import DisconnectionSetEngine, reachability_engine, shortest_path_engine
from repro.exceptions import DisconnectedError, NoChainError
from repro.fragmentation import GroundTruthFragmenter, LinearFragmenter
from repro.generators import (
    TransportationGraphConfig,
    generate_transportation_graph,
    two_cluster_dumbbell,
)
from repro.graph import DiGraph


@pytest.fixture
def dumbbell_engine():
    graph = two_cluster_dumbbell(4, bridge_nodes=2)
    fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
    return graph, DisconnectionSetEngine(fragmentation)


class TestShortestPathQueries:
    def test_intra_fragment_query(self, dumbbell_engine):
        graph, engine = dumbbell_engine
        assert engine.shortest_path_cost(0, 2) == shortest_path_cost(graph, 0, 2)

    def test_cross_fragment_query(self, dumbbell_engine):
        graph, engine = dumbbell_engine
        assert engine.shortest_path_cost(2, 6) == shortest_path_cost(graph, 2, 6)

    def test_query_to_self_costs_zero(self, dumbbell_engine):
        _, engine = dumbbell_engine
        assert engine.query(3, 3).value == 0.0

    def test_unknown_node_raises(self, dumbbell_engine):
        _, engine = dumbbell_engine
        with pytest.raises(NoChainError):
            engine.query("ghost", 2)

    def test_unreachable_island_raises_no_chain(self):
        graph = two_cluster_dumbbell(3, bridge_nodes=1)
        graph.add_symmetric_edge("islandA", "islandB")
        clusters = [set(range(3)), set(range(3, 6)), {"islandA", "islandB"}]
        engine = DisconnectionSetEngine(GroundTruthFragmenter(clusters).fragment(graph))
        # The island fragment shares no disconnection set with the rest, so
        # planning already fails: there is no chain of fragments to evaluate.
        with pytest.raises(NoChainError):
            engine.shortest_path_cost(0, "islandA")

    def test_unreachable_within_connected_fragmentation_raises_disconnected(self):
        # A directed graph where the fragments overlap (connected fragmentation
        # graph) but the destination is unreachable along edge directions.
        graph = DiGraph([("a", "b", 1.0), ("c", "b", 1.0)])
        from repro.fragmentation import Fragmentation

        fragmentation = Fragmentation(graph, [[("a", "b")], [("c", "b")]])
        engine = DisconnectionSetEngine(fragmentation)
        with pytest.raises(DisconnectedError):
            engine.shortest_path_cost("a", "c")

    def test_answer_reports_chain_and_work(self, dumbbell_engine):
        _, engine = dumbbell_engine
        answer = engine.query(0, 7)
        assert answer.exists()
        assert answer.chain is not None
        assert 0 in answer.chain and 1 in answer.chain
        assert answer.report.site_work
        assert answer.report.chains_evaluated >= 1
        assert answer.report.critical_path_iterations() >= 1

    def test_wrong_semiring_for_cost_helper(self, dumbbell_engine):
        graph, _ = dumbbell_engine
        fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
        engine = reachability_engine(fragmentation)
        with pytest.raises(DisconnectedError):
            engine.shortest_path_cost(0, 7)


class TestReachabilityQueries:
    def test_reachability_engine_answers_connection_questions(self, dumbbell_engine):
        graph, _ = dumbbell_engine
        fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
        engine = reachability_engine(fragmentation)
        assert engine.is_connected(0, 7)
        assert not engine.is_connected(0, "ghost")

    def test_shortest_path_engine_is_connected(self, dumbbell_engine):
        _, engine = dumbbell_engine
        assert engine.is_connected(0, 7)


class TestAgainstCentralizedBaseline:
    """The core correctness claim: the parallel strategy computes the same answers."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_all_pairs_on_small_transportation_graph(self, seed):
        config = TransportationGraphConfig(
            cluster_count=3, nodes_per_cluster=7, cluster_c1=110.0, inter_cluster_edges=2
        )
        network = generate_transportation_graph(config, seed=seed)
        graph = network.graph
        fragmentation = GroundTruthFragmenter(network.clusters).fragment(graph)
        engine = shortest_path_engine(fragmentation)
        nodes = graph.nodes()
        # Check a deterministic sample of pairs spanning all cluster combinations.
        sample = [(nodes[i], nodes[j]) for i in range(0, len(nodes), 4) for j in range(1, len(nodes), 5)]
        for source, target in sample:
            expected = shortest_path_cost(graph, source, target)
            assert engine.shortest_path_cost(source, target) == pytest.approx(expected)

    def test_linear_fragmentation_answers_match(self, small_transportation_network):
        network = small_transportation_network
        graph = network.graph
        fragmentation = LinearFragmenter(4).fragment(graph)
        engine = shortest_path_engine(fragmentation)
        nodes = graph.nodes()
        for source, target in [(nodes[0], nodes[-1]), (nodes[3], nodes[20]), (nodes[10], nodes[35])]:
            assert engine.shortest_path_cost(source, target) == pytest.approx(
                shortest_path_cost(graph, source, target)
            )

    def test_intra_fragment_query_touches_one_site(self, small_transportation_network):
        network = small_transportation_network
        fragmentation = GroundTruthFragmenter(network.clusters).fragment(network.graph)
        engine = shortest_path_engine(fragmentation)
        # Two interior nodes of cluster 0.
        border = network.border_nodes()
        interior = [node for node in network.clusters[0] if node not in border]
        answer = engine.query(interior[0], interior[1])
        assert answer.exists()
        assert len(answer.report.site_work) == 1


class TestShortcutAblation:
    def test_without_shortcuts_paths_may_be_missed_or_longer(self):
        # Source and target in the same fragment, but the only short route
        # detours through the other fragment; complementary information is
        # what keeps the single-site answer correct.
        graph = DiGraph()
        for a, b, w in [("a", "x", 1.0), ("x", "b", 1.0), ("a", "b", 10.0)]:
            graph.add_symmetric_edge(a, b, w)
        fragmentation = GroundTruthFragmenter([{"a", "b"}, {"x"}]).fragment(graph)
        with_info = DisconnectionSetEngine(fragmentation, use_shortcuts=True)
        without_info = DisconnectionSetEngine(fragmentation, use_shortcuts=False)
        assert with_info.shortest_path_cost("a", "b") == 2.0
        assert without_info.query("a", "b").value >= 2.0
