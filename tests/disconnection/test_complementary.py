"""Unit tests for complementary-information precomputation."""

import pytest

from repro.closure import reachability_semiring, shortest_path_semiring, widest_path_semiring
from repro.disconnection import precompute_complementary_information
from repro.fragmentation import GroundTruthFragmenter
from repro.generators import two_cluster_dumbbell
from repro.graph import shortest_path_length


@pytest.fixture
def two_bridge_fragmentation():
    graph = two_cluster_dumbbell(4, bridge_nodes=2)
    clusters = [set(range(4)), set(range(4, 8))]
    return graph, GroundTruthFragmenter(clusters).fragment(graph)


class TestShortestPathInformation:
    def test_values_match_global_shortest_paths(self, two_bridge_fragmentation):
        graph, fragmentation = two_bridge_fragmentation
        info = precompute_complementary_information(fragmentation)
        for (i, j), pairs in info.values.items():
            for (a, b), value in pairs.items():
                assert value == pytest.approx(shortest_path_length(graph, a, b))

    def test_every_border_pair_is_covered(self, two_bridge_fragmentation):
        graph, fragmentation = two_bridge_fragmentation
        info = precompute_complementary_information(fragmentation)
        for (i, j), border in fragmentation.disconnection_sets().items():
            pairs = info.for_pair(i, j)
            for a in border:
                for b in border:
                    if a != b:
                        assert (a, b) in pairs

    def test_for_pair_is_order_insensitive(self, two_bridge_fragmentation):
        _, fragmentation = two_bridge_fragmentation
        info = precompute_complementary_information(fragmentation)
        assert info.for_pair(0, 1) == info.for_pair(1, 0)

    def test_missing_pair_returns_empty(self, two_bridge_fragmentation):
        _, fragmentation = two_bridge_fragmentation
        info = precompute_complementary_information(fragmentation)
        assert info.for_pair(5, 9) == {}

    def test_size_and_work_counters(self, two_bridge_fragmentation):
        _, fragmentation = two_bridge_fragmentation
        info = precompute_complementary_information(fragmentation)
        assert info.size_in_facts() == sum(len(v) for v in info.values.values())
        assert info.precompute_work > 0

    def test_shortcut_edges_cover_fragment_borders(self, two_bridge_fragmentation):
        _, fragmentation = two_bridge_fragmentation
        info = precompute_complementary_information(fragmentation)
        shortcuts = info.shortcut_edges(0, fragmentation)
        border = fragmentation.border_nodes(0)
        assert all(source in border and target in border for source, target, _ in shortcuts)


class TestOtherSemirings:
    def test_reachability_information(self, two_bridge_fragmentation):
        _, fragmentation = two_bridge_fragmentation
        info = precompute_complementary_information(
            fragmentation, semiring=reachability_semiring()
        )
        assert info.semiring_name == "reachability"
        for pairs in info.values.values():
            assert all(value is True for value in pairs.values())

    def test_generic_semiring_falls_back_to_fixpoint(self, two_bridge_fragmentation):
        _, fragmentation = two_bridge_fragmentation
        info = precompute_complementary_information(
            fragmentation, semiring=widest_path_semiring()
        )
        assert info.semiring_name == "widest_path"
        assert info.size_in_facts() > 0
