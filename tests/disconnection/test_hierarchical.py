"""Unit tests for Parallel Hierarchical Evaluation (the high-speed network extension)."""

import pytest

from repro.closure import shortest_path_cost
from repro.disconnection import HierarchicalEngine
from repro.exceptions import DisconnectedError, NoChainError
from repro.fragmentation import GroundTruthFragmenter
from repro.generators import (
    TransportationGraphConfig,
    european_railway_example,
    generate_transportation_graph,
)


@pytest.fixture(scope="module")
def chain_network():
    config = TransportationGraphConfig(
        cluster_count=4, nodes_per_cluster=8, cluster_c1=150.0, inter_cluster_edges=2
    )
    return generate_transportation_graph(config, seed=6)


@pytest.fixture(scope="module")
def hierarchical(chain_network):
    fragmentation = GroundTruthFragmenter(chain_network.clusters).fragment(chain_network.graph)
    return HierarchicalEngine(fragmentation)


class TestBackbone:
    def test_backbone_contains_all_border_nodes(self, chain_network, hierarchical):
        stats = hierarchical.backbone_statistics()
        fragmentation = GroundTruthFragmenter(chain_network.clusters).fragment(chain_network.graph)
        border_nodes = set()
        for nodes in fragmentation.disconnection_sets().values():
            border_nodes |= nodes
        assert stats.node_count >= len(border_nodes)
        assert stats.edge_count > 0


class TestQueries:
    def test_non_adjacent_fragments_use_three_element_chain(self, chain_network, hierarchical):
        source = sorted(chain_network.clusters[0])[1]
        target = sorted(chain_network.clusters[3])[1]
        answer = hierarchical.query(source, target)
        assert answer.exists()
        assert answer.chain is not None and len(answer.chain) == 3
        assert answer.chain[1] == -1  # the backbone pseudo-fragment

    def test_answers_match_centralized(self, chain_network, hierarchical):
        graph = chain_network.graph
        pairs = [
            (sorted(chain_network.clusters[0])[0], sorted(chain_network.clusters[3])[2]),
            (sorted(chain_network.clusters[1])[0], sorted(chain_network.clusters[2])[3]),
            (sorted(chain_network.clusters[0])[2], sorted(chain_network.clusters[0])[4]),
        ]
        for source, target in pairs:
            assert hierarchical.shortest_path_cost(source, target) == pytest.approx(
                shortest_path_cost(graph, source, target)
            )

    def test_adjacent_fragments_fall_back_to_plain_engine(self, chain_network, hierarchical):
        source = sorted(chain_network.clusters[0])[0]
        target = sorted(chain_network.clusters[1])[0]
        answer = hierarchical.query(source, target)
        assert answer.exists()
        assert -1 not in (answer.chain or ())

    def test_unknown_node_raises(self, hierarchical):
        with pytest.raises(NoChainError):
            hierarchical.query("ghost", "ghost2")

    def test_railway_backbone_with_extra_edges(self):
        graph, countries = european_railway_example()
        fragmentation = GroundTruthFragmenter([set(v) for v in countries.values()]).fragment(graph)
        engine = HierarchicalEngine(
            fragmentation,
            extra_backbone_edges=[("arnhem", "munich", 60.0), ("munich", "arnhem", 60.0)],
        )
        # Holland and Italy are non-adjacent fragments -> backbone plan.
        cost = engine.shortest_path_cost("amsterdam", "milan")
        assert cost == pytest.approx(shortest_path_cost(graph, "amsterdam", "milan"))
