"""Unit tests for the query planner (fragment chains and local query specs)."""

import pytest

from repro.disconnection import DistributedCatalog, QueryPlanner
from repro.exceptions import NoChainError
from repro.fragmentation import Fragmentation, GroundTruthFragmenter
from repro.generators import chain_graph
from repro.graph import DiGraph


def _three_fragment_chain():
    """A chain of 3 cliques-of-3 joined by single nodes (shared borders)."""
    graph = DiGraph()
    cliques = [list(range(0, 3)), list(range(3, 6)), list(range(6, 9))]
    for clique in cliques:
        for i, a in enumerate(clique):
            for b in clique[i + 1:]:
                graph.add_symmetric_edge(a, b, 1.0)
    graph.add_symmetric_edge(2, 3, 1.0)
    graph.add_symmetric_edge(5, 6, 1.0)
    fragments = [
        [e for e in graph.edges() if set(e) <= {0, 1, 2, 3}],
        [e for e in graph.edges() if set(e) <= {3, 4, 5, 6} and not set(e) <= {0, 1, 2, 3}],
        [e for e in graph.edges() if set(e) <= {6, 7, 8} and not set(e) <= {3, 4, 5, 6}],
    ]
    return graph, Fragmentation(graph, fragments, algorithm="manual-chain")


@pytest.fixture
def planner():
    _, fragmentation = _three_fragment_chain()
    return QueryPlanner(DistributedCatalog(fragmentation))


class TestPlans:
    def test_single_fragment_plan(self, planner):
        plan = planner.plan(0, 1)
        assert plan.is_single_fragment()
        assert plan.chains[0].chain == (0,)
        spec = plan.chains[0].local_queries[0]
        assert spec.entry_nodes == frozenset([0])
        assert spec.exit_nodes == frozenset([1])

    def test_cross_chain_plan_structure(self, planner):
        plan = planner.plan(0, 8)
        chain = plan.chains[0]
        assert chain.chain == (0, 1, 2)
        first, middle, last = chain.local_queries
        assert first.entry_nodes == frozenset([0])
        assert first.exit_nodes == frozenset([3])
        assert middle.entry_nodes == frozenset([3])
        assert middle.exit_nodes == frozenset([6])
        assert last.entry_nodes == frozenset([6])
        assert last.exit_nodes == frozenset([8])

    def test_loosely_connected_flag(self, planner):
        plan = planner.plan(0, 8)
        assert plan.loosely_connected
        assert plan.fragments_involved() == [0, 1, 2]

    def test_border_node_source_considers_both_fragments(self, planner):
        plan = planner.plan(3, 8)
        chains = {chain.chain for chain in plan.chains}
        # Node 3 is stored in fragments 0 and 1, so a 2-hop chain must exist.
        assert (1, 2) in chains

    def test_chains_sorted_shortest_first(self, planner):
        plan = planner.plan(3, 8)
        lengths = [chain.length() for chain in plan.chains]
        assert lengths == sorted(lengths)

    def test_unknown_source_raises(self, planner):
        with pytest.raises(NoChainError):
            planner.plan("ghost", 8)

    def test_unknown_target_raises(self, planner):
        with pytest.raises(NoChainError):
            planner.plan(0, "ghost")

    def test_disconnected_fragments_raise(self):
        graph = DiGraph()
        graph.add_symmetric_edge("a", "b")
        graph.add_symmetric_edge("x", "y")
        fragmentation = Fragmentation(
            graph, [[("a", "b"), ("b", "a")], [("x", "y"), ("y", "x")]]
        )
        planner = QueryPlanner(DistributedCatalog(fragmentation))
        with pytest.raises(NoChainError):
            planner.plan("a", "x")

    def test_max_chains_limits_enumeration(self):
        _, fragmentation = _three_fragment_chain()
        planner = QueryPlanner(DistributedCatalog(fragmentation), max_chains=1)
        plan = planner.plan(3, 8)
        assert len(plan.chains) >= 1
