"""Unit tests for the reporting helpers."""

from repro.experiments import comparison_summary, format_table, to_csv


class TestFormatTable:
    def test_contains_headers_and_values(self):
        rows = [{"algorithm": "bond-energy", "DS": 2.4}, {"algorithm": "linear", "DS": 13.3}]
        text = format_table(rows, ["algorithm", "DS"], title="Table 1")
        assert "Table 1" in text
        assert "bond-energy" in text
        assert "13.3" in text

    def test_missing_values_render_empty(self):
        text = format_table([{"a": 1}], ["a", "b"])
        assert "a" in text and "b" in text

    def test_booleans_render_yes_no(self):
        text = format_table([{"acyclic": True}, {"acyclic": False}], ["acyclic"])
        assert "yes" in text and "no" in text

    def test_float_format(self):
        text = format_table([{"x": 3.14159}], ["x"], float_format="{:.3f}")
        assert "3.142" in text


class TestCsv:
    def test_header_and_rows(self):
        csv_text = to_csv([{"a": 1, "b": 2}], ["a", "b"])
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2"

    def test_extra_keys_ignored(self):
        csv_text = to_csv([{"a": 1, "zzz": 9}], ["a"])
        assert "zzz" not in csv_text


class TestComparisonSummary:
    def test_contains_both_columns(self):
        text = comparison_summary({"DS": 2.0}, {"DS": 2.4})
        assert "2.0" in text and "2.4" in text
        assert "paper" in text and "measured" in text
