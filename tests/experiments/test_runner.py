"""Tests for the command-line experiment runner."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import render_result, run_experiment
from repro.experiments.runner import main


class TestRunExperiment:
    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError):
            run_experiment("table99")

    def test_table1_runs_with_reduced_trials(self):
        result = run_experiment("table1", trials=1, seed=3)
        assert result.name == "table1"
        assert len(result.rows) == 3

    def test_render_text_and_csv(self):
        result = run_experiment("table1", trials=1, seed=3)
        text = render_result(result)
        assert "algorithm" in text and "bond-energy" in text
        csv_text = render_result(result, as_csv=True)
        assert csv_text.startswith("algorithm,")


class TestMain:
    def test_main_prints_table(self, capsys):
        exit_code = main(["table1", "--trials", "1", "--seed", "5"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "bond-energy" in captured.out

    def test_main_csv_flag(self, capsys):
        exit_code = main(["table1", "--trials", "1", "--csv"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.out.startswith("algorithm,")
