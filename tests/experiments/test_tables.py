"""Tests for the Table 1-3 experiment harness.

The absolute numbers of the paper's tables depend on unpublished random
instances; the tests therefore check the *qualitative* claims the paper's
running text derives from them (which algorithm minimises DS, which keeps the
fragmentation acyclic, how distributed centers change the picture), on small
instances so the suite stays fast.  The full-size runs live in benchmarks/.
"""

import pytest

from repro.experiments import run_table1, run_table2, run_table3
from repro.experiments.tables import ExperimentResult
from repro.generators import RandomGraphConfig, TransportationGraphConfig


@pytest.fixture(scope="module")
def table1_result() -> ExperimentResult:
    config = TransportationGraphConfig(
        cluster_count=4, nodes_per_cluster=12, cluster_c1=260.0, cluster_c2=0.03, inter_cluster_edges=2
    )
    return run_table1(trials=2, seed=0, config=config)


@pytest.fixture(scope="module")
def table2_result() -> ExperimentResult:
    config = TransportationGraphConfig(
        cluster_count=4, nodes_per_cluster=30, cluster_c1=950.0, cluster_c2=0.03, inter_cluster_edges=2
    )
    return run_table2(trials=1, seed=0, config=config)


@pytest.fixture(scope="module")
def table3_result() -> ExperimentResult:
    config = RandomGraphConfig(node_count=60, c1=3200.0, c2=0.08)
    return run_table3(trials=2, seed=0, config=config, fragment_count=3)


class TestTable1:
    def test_all_algorithms_present(self, table1_result):
        assert {row.algorithm for row in table1_result.rows} == {
            "center-based", "bond-energy", "linear",
        }

    def test_bond_energy_has_smallest_disconnection_sets(self, table1_result):
        ds = {row.algorithm: row.average["DS"] for row in table1_result.rows}
        assert ds["bond-energy"] <= ds["center-based"]
        assert ds["bond-energy"] <= ds["linear"]

    def test_linear_fragmentation_is_acyclic(self, table1_result):
        linear = table1_result.row("linear")
        assert linear.average["cycles"] == 0.0

    def test_graph_statistics_recorded(self, table1_result):
        assert table1_result.graph_statistics["graphs"] == 2.0
        assert table1_result.graph_statistics["average_edges"] > 0

    def test_rows_expose_table_columns(self, table1_result):
        row = table1_result.as_rows()[0]
        assert {"algorithm", "F", "DS", "AF", "ADS"} <= set(row)

    def test_unknown_algorithm_raises(self, table1_result):
        with pytest.raises(KeyError):
            table1_result.row("quantum")


class TestTable2:
    def test_distributed_centers_reduce_deviation_and_ds(self, table2_result):
        plain = table2_result.row("center-based").average
        distributed = table2_result.row("center-based-distributed").average
        assert distributed["AF"] <= plain["AF"]
        # On the reduced-size test instance the DS difference is small and can
        # flip by a node or two; the strict full-size comparison lives in
        # benchmarks/bench_table2_distributed_centers.py.
        assert distributed["DS"] <= plain["DS"] * 1.5 + 1.0

    def test_fragment_counts_match_request(self, table2_result):
        for row in table2_result.rows:
            assert row.average["fragments"] == 4.0


class TestTable3:
    def test_all_variants_present(self, table3_result):
        assert {row.algorithm for row in table3_result.rows} == {
            "center-based", "center-based-distributed", "bond-energy", "linear",
        }

    def test_bond_energy_smallest_ds_on_general_graphs(self, table3_result):
        ds = {row.algorithm: row.average["DS"] for row in table3_result.rows}
        assert ds["bond-energy"] == min(ds.values())

    def test_linear_acyclic_on_general_graphs(self, table3_result):
        assert table3_result.row("linear").average["cycles"] == 0.0

    def test_per_trial_characteristics_recorded(self, table3_result):
        for row in table3_result.rows:
            assert len(row.per_trial) == row.trials
