"""Tests for the QueryService façade: caching, invalidation, batching, pooling."""

import pytest

from repro.closure import reachability_semiring, widest_path_semiring
from repro.disconnection import DisconnectionSetEngine
from repro.exceptions import NoChainError
from repro.fragmentation import GroundTruthFragmenter
from repro.generators import two_cluster_dumbbell
from repro.service import QueryService


def make_fragmentation():
    graph = two_cluster_dumbbell(4, bridge_nodes=2)
    return GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)


@pytest.fixture
def service():
    return QueryService(make_fragmentation())


class TestQuery:
    def test_matches_the_one_shot_engine(self, service):
        engine = DisconnectionSetEngine(make_fragmentation())
        for source, target in [(0, 7), (1, 6), (3, 4), (2, 3)]:
            assert service.query(source, target).value == engine.query(source, target).value

    def test_repeated_query_hits_the_cache(self, service):
        first = service.query(1, 7)
        second = service.query(1, 7)
        assert not first.cached
        assert second.cached
        assert second.value == first.value
        assert second.chain == first.chain
        assert service.stats.cache_hits == 1
        # The cache hit did no local work: the evaluation count is unchanged.
        assert service.stats.local_evaluations == service.cache.misses + 1

    def test_same_node_query_is_trivial(self, service):
        answer = service.query(3, 3)
        assert answer.value == service.semiring.one
        assert answer.chain is None

    def test_unknown_node_raises(self, service):
        with pytest.raises(NoChainError):
            service.query(0, "missing")

    def test_latency_and_hit_rate_are_tracked(self, service):
        service.query(0, 7)
        service.query(0, 7)
        assert service.stats.queries == 2
        assert service.stats.hit_rate() == 0.5
        assert service.stats.average_latency() > 0.0
        assert service.stats.max_latency >= service.stats.average_latency()


class TestCacheInvalidation:
    def test_update_edge_invalidates_cached_answers(self, service):
        before = service.query(0, 4)
        assert before.value == pytest.approx(1.0)
        service.update_edge(0, 4, 0.25)
        after = service.query(0, 4)
        assert not after.cached
        assert after.value == pytest.approx(0.25)
        assert service.stats.invalidations == 1
        assert service.stats.updates_applied == 1

    def test_update_bumps_catalog_version(self, service):
        version = service.catalog_version
        service.update_edge(2, 6, 3.0)
        assert service.catalog_version != version

    def test_insert_then_delete_roundtrip(self, service):
        baseline = service.query(2, 6).value
        service.update_edge(2, 6, 0.125)
        assert service.query(2, 6).value == pytest.approx(0.125)
        service.update_edge(2, 6, delete=True)
        assert service.query(2, 6).value == pytest.approx(baseline)

    def test_cached_entries_from_old_versions_cannot_be_served(self, service):
        service.query(1, 7)
        service.update_edge(0, 4, 9.0)
        # After the flush the old answer is gone even though the key differs
        # only in its version component.
        assert len(service.cache) == 0
        answer = service.query(1, 7)
        assert not answer.cached


class TestBatch:
    def test_batch_matches_individual_queries(self, service):
        queries = [(0, 7), (1, 6), (2, 3), (3, 4)]
        expected = [service.query(source, target).value for source, target in queries]
        fresh = QueryService(make_fragmentation())
        answers = fresh.query_batch(queries)
        assert [answer.value for answer in answers] == expected

    def test_batch_dedupes_submitted_queries(self, service):
        answers = service.query_batch([(0, 7), (0, 7), (0, 7)])
        assert len(answers) == 3
        assert len({answer.value for answer in answers}) == 1
        assert service.stats.duplicate_queries_saved == 2
        # Dedup-served duplicates count as hits: one computation, two free rides.
        assert service.stats.cache_misses == 1
        assert service.stats.cache_hits == 2

    def test_batch_shares_local_subqueries(self, service):
        service.query_batch([(0, 7), (1, 7), (2, 7)])
        assert service.stats.shared_subqueries_saved > 0

    def test_batch_tolerates_unknown_endpoints(self, service):
        answers = service.query_batch([(0, "missing"), (0, 7)])
        assert answers[0].error is not None
        assert answers[0].value is None
        assert answers[1].error is None
        assert answers[1].exists()

    def test_batch_reuses_cache_across_calls(self, service):
        service.query_batch([(0, 7)])
        answers = service.query_batch([(0, 7)])
        assert answers[0].cached

    def test_empty_batch(self, service):
        assert service.query_batch([]) == []


class TestReachability:
    def test_reachability_semiring_is_served(self):
        service = QueryService(make_fragmentation(), semiring=reachability_semiring())
        first = service.query(0, 7)
        second = service.query(0, 7)
        assert first.value is True
        assert second.cached and second.value is True


class TestWorkerPool:
    def test_pooled_service_matches_inline_service(self):
        inline = QueryService(make_fragmentation())
        with QueryService(make_fragmentation(), workers=2) as pooled:
            for source, target in [(0, 7), (2, 5)]:
                assert pooled.query(source, target).value == inline.query(source, target).value
            assert sum(pooled.stats.per_site_load.values()) > 0

    def test_pool_survives_updates(self):
        with QueryService(make_fragmentation(), workers=2) as pooled:
            before = pooled.query(0, 4).value
            pooled.update_edge(0, 4, before / 2)
            assert pooled.query(0, 4).value == pytest.approx(before / 2)

    def test_pool_rejects_nonstandard_semiring(self):
        with pytest.raises(ValueError):
            QueryService(make_fragmentation(), semiring=widest_path_semiring(), workers=2)


class TestCacheBounds:
    def test_eviction_under_small_capacity(self):
        service = QueryService(make_fragmentation(), cache_size=2)
        service.query(0, 7)
        service.query(1, 7)
        service.query(2, 7)
        assert len(service.cache) == 2
        assert service.cache.evictions == 1
        # The evicted (0, 7) answer is recomputed, not served stale.
        answer = service.query(0, 7)
        assert not answer.cached
