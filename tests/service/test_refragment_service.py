"""Live refragmentation through the serving stack: pools, snapshots, advisor.

The acceptance contract: a live ``refragment()`` under an active
``PlacedWorkerPool`` rebuilds only changed fragments — unchanged fragments'
compact states stay object-identical and their owner workers keep their PIDs
— and ``from_snapshot(replay_log=...)`` replays a tail containing a
``refragment`` record with answers identical to a fresh build.
"""

import random

import pytest

from repro.closure import shortest_path_cost
from repro.fragmentation import GroundTruthFragmenter, HashFragmenter
from repro.graph import DiGraph
from repro.refragmentation import RefragmentationAdvisor
from repro.service import PlacedWorkerPool, QueryService


def clique_line(blocks=4, size=4, seed=None):
    rng = random.Random(seed)
    graph = DiGraph()
    node_blocks = [list(range(i * size, (i + 1) * size)) for i in range(blocks)]
    for block in node_blocks:
        for i, a in enumerate(block):
            for b in block[i + 1:]:
                weight = 1.0 if seed is None else rng.uniform(0.5, 3.0)
                graph.add_edge(a, b, weight)
                graph.add_edge(b, a, weight)
    for i in range(blocks - 1):
        left, right = node_blocks[i][-1], node_blocks[i + 1][0]
        weight = 1.0 if seed is None else rng.uniform(0.5, 3.0)
        graph.add_edge(left, right, weight)
        graph.add_edge(right, left, weight)
    return graph, node_blocks


def shifted_blocks(node_blocks):
    """The same partition with one node moved between the last two blocks."""
    moved = node_blocks[-1][0]
    blocks = [set(block) for block in node_blocks]
    blocks[-2].add(moved)
    blocks[-1].discard(moved)
    return blocks


class TestLiveRefragmentUnderPlacedPool:
    def test_only_changed_fragments_rebuild_and_pids_survive(self):
        graph, node_blocks = clique_line()
        fragmentation = GroundTruthFragmenter([set(b) for b in node_blocks]).fragment(graph)
        with QueryService(fragmentation, placement="round_robin", workers=4) as service:
            service.query(0, 15)  # starts the pool
            pool = service._pool
            assert isinstance(pool, PlacedWorkerPool)
            pids_before = pool.worker_pids()
            compact_before = {
                site.fragment_id: site.compact()
                for site in service.engine().catalog.sites()
            }
            result = service.refragment(
                GroundTruthFragmenter(shifted_blocks(node_blocks))
            )
            assert result is not None, "the redraw must be scoped"
            assert set(result.unchanged) == {0, 1}
            assert pool is service._pool, "the pool object must survive"
            assert pool.worker_pids() == pids_before
            for fragment_id in result.unchanged:
                assert (
                    service.engine().catalog.site(fragment_id).compact()
                    is compact_before[fragment_id]
                )
            for fragment_id in result.changed:
                assert (
                    service.engine().catalog.site(fragment_id).compact()
                    is not compact_before[fragment_id]
                )
            # The workers' pinned state matches the remapped plan exactly.
            plan = service.placement_plan
            assert pool.pinned_census() == {
                worker: plan.fragments_on(worker) for worker in range(plan.worker_count)
            }
            for source, target in [(0, 15), (5, 12), (12, 1), (8, 13)]:
                assert service.query(source, target).value == pytest.approx(
                    shortest_path_cost(service.database.graph, source, target)
                )
            assert service.stats.scoped_refragments == 1
            assert service.stats.refragment_fragments_kept == 2

    def test_shrinking_redraw_unpins_dropped_fragments(self):
        graph, node_blocks = clique_line(blocks=3)
        fragmentation = GroundTruthFragmenter([set(b) for b in node_blocks]).fragment(graph)
        with QueryService(fragmentation, placement="round_robin", workers=3) as service:
            service.query(0, 11)
            pool = service._pool
            pids_before = pool.worker_pids()
            merged = [set(node_blocks[0]) | set(node_blocks[1]), set(node_blocks[2])]
            result = service.refragment(GroundTruthFragmenter(merged))
            assert result is not None
            assert result.dropped == (2,)
            assert pool.worker_pids() == pids_before
            census = pool.pinned_census()
            assert all(2 not in pinned for pinned in census.values())
            plan = service.placement_plan
            assert sorted(plan.owner_of) == [0, 1]
            for source, target in [(0, 11), (5, 9), (11, 0)]:
                assert service.query(source, target).value == pytest.approx(
                    shortest_path_cost(service.database.graph, source, target)
                )

    def test_owner_killed_mid_refragment_recovers(self):
        graph, node_blocks = clique_line()
        fragmentation = GroundTruthFragmenter([set(b) for b in node_blocks]).fragment(graph)
        with QueryService(fragmentation, placement="round_robin", workers=4) as service:
            service.query(0, 15)
            pool = service._pool
            # Kill the owner of a fragment the redraw will rebuild, *before*
            # the refragment executes: the apply must skip the corpse, keep
            # its mirror current, and the respawn must pin post-redraw state.
            victim = service.placement_plan.owner(3)
            pool._workers[victim].process.terminate()
            pool._workers[victim].process.join()
            result = service.refragment(
                GroundTruthFragmenter(shifted_blocks(node_blocks))
            )
            assert result is not None
            service.cache.clear()
            for source, target in [(0, 15), (12, 1), (15, 4)]:
                assert service.query(source, target).value == pytest.approx(
                    shortest_path_cost(service.database.graph, source, target)
                )
            assert pool.respawns >= 1
            plan = service.placement_plan
            assert pool.pinned_census() == {
                worker: plan.fragments_on(worker) for worker in range(plan.worker_count)
            }

    def test_full_rebuild_redraw_remaps_a_pinned_plan_before_pool_start(self):
        # Outside the scoped envelope (incremental=False) the full rebuild
        # runs; an explicit plan pinned before the pool ever started must
        # still follow the new fragment ids or the first query cannot build
        # the pool.
        from repro.placement import PlacementPlan

        graph, node_blocks = clique_line(blocks=3)
        fragmentation = GroundTruthFragmenter([set(b) for b in node_blocks]).fragment(graph)
        plan = PlacementPlan(owner_of={0: 0, 1: 1, 2: 0}, worker_count=2)
        with QueryService(fragmentation, placement=plan, incremental=False) as service:
            assert service.refragment("hash", fragment_count=4) is None
            remapped = service.placement_plan
            assert sorted(remapped.owner_of) == [0, 1, 2, 3]
            assert remapped.owner_of[0] == 0 and remapped.owner_of[1] == 1
            assert service.query(0, 11).value == pytest.approx(
                shortest_path_cost(service.database.graph, 0, 11)
            )

    def test_replicated_pool_absorbs_a_redraw_without_restart(self):
        graph, node_blocks = clique_line(blocks=3)
        fragmentation = GroundTruthFragmenter([set(b) for b in node_blocks]).fragment(graph)
        with QueryService(fragmentation, workers=2) as service:
            service.query(0, 11)
            pool = service._pool
            result = service.refragment(
                GroundTruthFragmenter(shifted_blocks(node_blocks))
            )
            assert result is not None
            assert pool is service._pool
            for source, target in [(0, 11), (5, 9)]:
                assert service.query(source, target).value == pytest.approx(
                    shortest_path_cost(service.database.graph, source, target)
                )


class TestSnapshotAndReplayAcrossRefragment:
    def test_tail_with_refragment_record_replays_to_identical_answers(self, tmp_path):
        graph, node_blocks = clique_line(seed=5)
        fragmentation = GroundTruthFragmenter([set(b) for b in node_blocks]).fragment(graph)
        live = QueryService(fragmentation)
        live.update_edge(0, 2, 0.25)
        live.snapshot(tmp_path / "snap")
        live.update_edge(9, 11, 0.75)
        assert live.refragment(GroundTruthFragmenter(shifted_blocks(node_blocks))) is not None
        live.update_edge(3, 4, 4.0)
        restored = QueryService.from_snapshot(
            tmp_path / "snap", replay_log=live.database.delta_log
        )
        assert restored.stats.replayed_records == 3
        fresh_nodes = sorted(graph.nodes())
        rng = random.Random(1)
        for _ in range(12):
            source, target = rng.sample(fresh_nodes, 2)
            assert restored.query(source, target).value == pytest.approx(
                shortest_path_cost(live.database.graph, source, target)
            )

    def test_snapshot_taken_after_a_live_redraw_restores(self, tmp_path):
        graph, node_blocks = clique_line()
        fragmentation = GroundTruthFragmenter([set(b) for b in node_blocks]).fragment(graph)
        with QueryService(fragmentation, placement="round_robin", workers=4) as live:
            live.query(0, 15)
            assert live.refragment(GroundTruthFragmenter(shifted_blocks(node_blocks))) is not None
            live.snapshot(tmp_path / "snap")
        restored = QueryService.from_snapshot(tmp_path / "snap")
        assert [f.edges for f in restored.database.fragmentation().fragments] == [
            f.edges for f in fragmentation_after(graph, node_blocks).fragments
        ]
        plan = restored.placement_plan
        assert plan is not None
        assert sorted(plan.owner_of) == list(range(4))
        restored.close()


def fragmentation_after(graph, node_blocks):
    return GroundTruthFragmenter(shifted_blocks(node_blocks)).fragment(graph)


class TestAutoRefragment:
    def test_advisor_triggers_a_live_redraw(self):
        graph, node_blocks = clique_line(blocks=3)
        # Deploy a deliberately bad layout over a clustered graph.
        eroded = HashFragmenter(3).fragment(graph)
        advisor = RefragmentationAdvisor(
            cross_ratio_threshold=0.3,
            fragmenter_factory=lambda g, n: GroundTruthFragmenter(
                [set(b) for b in node_blocks]
            ),
        )
        service = QueryService(
            eroded, auto_refragment=advisor, refragment_check_interval=4
        )
        before = service.stats.refragments
        for step in range(4):
            service.update_edge(0, 2 + step % 2, 1.5 + step)
        assert service.stats.refragments == before + 1
        assert service.stats.scoped_refragments >= 1
        # The redrawn layout is the clustered one the factory proposed.
        signals = RefragmentationAdvisor().signals(service.database.fragmentation())
        assert signals.border_nodes <= 4
        for source, target in [(0, 11), (5, 9)]:
            assert service.query(source, target).value == pytest.approx(
                shortest_path_cost(service.database.graph, source, target)
            )

    def test_healthy_layout_is_left_alone(self):
        graph, node_blocks = clique_line(blocks=3)
        fragmentation = GroundTruthFragmenter([set(b) for b in node_blocks]).fragment(graph)
        service = QueryService(
            fragmentation, auto_refragment=True, refragment_check_interval=2
        )
        for step in range(6):
            service.update_edge(0, 2, 1.0 + step * 0.125)
        assert service.stats.refragments == 0

    def test_auto_refragment_true_installs_a_default_advisor(self):
        graph, node_blocks = clique_line(blocks=3)
        fragmentation = GroundTruthFragmenter([set(b) for b in node_blocks]).fragment(graph)
        service = QueryService(fragmentation, auto_refragment=True)
        assert service.refragment_advisor is not None
        assert service.refragment_advisor.baseline is not None

    def test_unworthwhile_advice_leaves_the_layout_untouched(self):
        graph, node_blocks = clique_line(blocks=3)
        fragmentation = GroundTruthFragmenter([set(b) for b in node_blocks]).fragment(graph)
        service = QueryService(fragmentation)
        layout_before = [f.edges for f in service.database.fragmentation().fragments]
        # The advisor path must refuse a candidate that is not a measured
        # improvement — re-proposing the same layout is a wash.
        advisor = RefragmentationAdvisor(
            fragmenter_factory=lambda g, n: GroundTruthFragmenter(
                [set(b) for b in node_blocks]
            )
        )
        assert service.refragment(advisor=advisor) is None
        assert service.stats.refragments == 0
        assert [f.edges for f in service.database.fragmentation().fragments] == layout_before
