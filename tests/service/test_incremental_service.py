"""Scoped invalidation, typed cache keys, version-vector snapshots, re-pinning."""

import pytest

from repro.closure import shortest_path_cost
from repro.fragmentation import GroundTruthFragmenter
from repro.generators import two_cluster_dumbbell
from repro.graph import DiGraph
from repro.incremental import VersionVector
from repro.service import CachedAnswer, CacheKey, LRUCache, QueryService


def three_fragment_line():
    """Three cliques in a line: 0-3 | 4-7 | 8-11, single bridges between them.

    An update inside fragment 0 cannot affect an answer confined to fragment
    2 — the setting scoped invalidation is about.
    """
    graph = DiGraph()
    blocks = [list(range(0, 4)), list(range(4, 8)), list(range(8, 12))]
    for block in blocks:
        for i, a in enumerate(block):
            for b in block[i + 1:]:
                graph.add_edge(a, b, 1.0)
                graph.add_edge(b, a, 1.0)
    for left, right in ((3, 4), (7, 8)):
        graph.add_edge(left, right, 1.0)
        graph.add_edge(right, left, 1.0)
    return GroundTruthFragmenter([set(block) for block in blocks]).fragment(graph)


class TestScopedInvalidation:
    def test_far_update_keeps_unrelated_answers_cached(self):
        service = QueryService(three_fragment_line())
        far = service.query(9, 11)      # confined to fragment 2
        crossing = service.query(0, 11)  # crosses every fragment
        assert not far.cached and not crossing.cached
        service.update_edge(0, 2, 0.5)   # interior to fragment 0
        assert service.query(9, 11).cached
        again = service.query(0, 11)
        assert not again.cached
        assert again.value == shortest_path_cost(service.database.graph, 0, 11)

    def test_scoped_eviction_counts_are_observable(self):
        service = QueryService(three_fragment_line())
        service.query(9, 11)
        service.query(1, 3)
        service.update_edge(0, 2, 0.5)
        assert service.stats.scoped_invalidations == 1
        assert service.stats.cache_entries_evicted == 1  # only the fragment-0 answer
        assert len(service.cache) == 1

    def test_full_invalidate_mode_flushes_everything(self):
        service = QueryService(three_fragment_line(), incremental=False)
        service.query(9, 11)
        service.query(1, 3)
        service.update_edge(0, 2, 0.5)
        assert len(service.cache) == 0
        assert service.stats.scoped_invalidations == 0
        assert not service.query(9, 11).cached

    def test_version_vector_moves_only_for_dirty_fragments(self):
        service = QueryService(three_fragment_line())
        service.query(0, 11)
        before = service.catalog_version
        service.update_edge(0, 2, 0.5)
        assert service.catalog_version != before
        assert service.version_vector.version_of(0) == 1
        assert service.version_vector.version_of(2) == 0

    def test_answers_stay_correct_across_mixed_updates(self):
        service = QueryService(three_fragment_line())
        probes = [(0, 11), (9, 11), (5, 1), (8, 3)]
        for source, target, weight in [(0, 2, 0.5), (3, 4, 0.25), (9, 10, 4.0)]:
            service.update_edge(source, target, weight)
            for probe in probes:
                assert service.query(*probe).value == shortest_path_cost(
                    service.database.graph, *probe
                )


class TestTypedCacheKey:
    def test_keys_are_typed_not_positional(self):
        service = QueryService(three_fragment_line())
        service.query(9, 11)
        (key,) = list(service.cache)
        assert isinstance(key, CacheKey)
        assert (key.source, key.target) == (9, 11)
        assert key.semiring == "shortest_path"

    def test_entries_record_their_fragment_dependencies(self):
        service = QueryService(three_fragment_line())
        service.query(9, 11)
        (key,) = list(service.cache)
        entry = service.cache.get(key)
        assert isinstance(entry, CachedAnswer)
        assert entry.depends_on({2})
        assert not entry.depends_on({0})

    def test_evict_where_and_discard(self):
        cache = LRUCache(8)
        key_a = CacheKey("a", "b", "shortest_path", "v")
        key_b = CacheKey("b", "c", "shortest_path", "v")
        cache.put(key_a, CachedAnswer(1.0, (0,), fragment_versions=((0, 1),)))
        cache.put(key_b, CachedAnswer(2.0, (1,), fragment_versions=((1, 1),)))
        dropped = cache.evict_where(lambda key, entry: entry.depends_on({0}))
        assert dropped == 1 and key_a not in cache and key_b in cache
        assert cache.discard(key_b)
        assert not cache.discard(key_b)
        assert len(cache) == 0

    def test_stale_entry_is_never_served_even_without_eviction(self):
        service = QueryService(three_fragment_line())
        service.query(9, 11)
        (key,) = list(service.cache)
        # Forge staleness: bump the fragment the entry depends on without
        # running the listener's eviction pass.
        service.database.version_vector.bump(2)
        assert not service.query(9, 11).cached
        assert key not in service.cache or service.cache.get(key) is not None


class TestSnapshotVersionVector:
    @pytest.fixture
    def fragmentation(self):
        graph = two_cluster_dumbbell(4, bridge_nodes=2)
        return GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)

    def test_round_trip_resumes_mid_stream(self, fragmentation, tmp_path):
        service = QueryService(fragmentation)
        service.query(0, 7)
        service.update_edge(0, 4, 0.5)
        service.update_edge(1, 2, 0.75)
        vector_before = service.version_vector.copy()
        assert vector_before.total_updates() > 0
        service.snapshot(tmp_path / "snap")
        restored = QueryService.from_snapshot(tmp_path / "snap")
        assert restored.version_vector == vector_before
        # The stream continues from the restored versions, not from zero.
        restored.update_edge(0, 4, 0.4)
        assert restored.version_vector.total_updates() > vector_before.total_updates()
        assert restored.query(0, 7).value == shortest_path_cost(restored.database.graph, 0, 7)

    def test_snapshot_without_vector_loads_at_zero(self, fragmentation, tmp_path):
        from repro.disconnection import DisconnectionSetEngine
        from repro.service import load_snapshot, save_snapshot

        engine = DisconnectionSetEngine(fragmentation)
        save_snapshot(tmp_path / "snap", engine)  # no vector passed
        loaded = load_snapshot(tmp_path / "snap")
        assert loaded.version_vector == VersionVector()

    def test_vector_is_not_part_of_the_content_hash(self, fragmentation, tmp_path):
        service = QueryService(fragmentation)
        manifest_a = service.snapshot(tmp_path / "a")
        service.update_edge(0, 4, 1.0)  # reweight to the same value: same content
        manifest_b = service.snapshot(tmp_path / "b")
        assert manifest_a.version == manifest_b.version


class TestPoolRepin:
    def test_workers_absorb_incremental_updates(self):
        graph = two_cluster_dumbbell(4, bridge_nodes=2)
        fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
        with QueryService(fragmentation, workers=2) as service:
            assert service.query(0, 7).value == 2.0
            service.update_edge(0, 4, 0.25)
            assert service.query(0, 7).value == shortest_path_cost(
                service.database.graph, 0, 7
            )
            service.update_edge(4, 5, 10.0)  # repairs the shared border pair
            for probe in [(0, 7), (1, 6), (2, 5)]:
                assert service.query(*probe).value == shortest_path_cost(
                    service.database.graph, *probe
                )
            assert service._pool is not None
            assert service._pool.repins >= 2


class TestRespawnInitargs:
    def test_repin_refreshes_the_pool_pinned_list(self):
        """A worker respawned after a crash re-initialises from the pool's
        pinned list; repin must keep that list current or the respawn would
        silently serve pre-update state."""
        import multiprocessing

        from repro.disconnection.planner import LocalQuerySpec
        from repro.service import pool as pool_module

        graph = two_cluster_dumbbell(4, bridge_nodes=2)
        fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
        with QueryService(fragmentation, workers=2) as service:
            service.query(0, 7)
            stale = {site.fragment_id: site for site in service._pool._pinned_sites}
            service.update_edge(0, 4, 0.25)
            refreshed = {site.fragment_id: site for site in service._pool._pinned_sites}
            assert refreshed[0] is not stale[0]
            # Simulate the respawn path: _worker_init from the current list.
            pool_module._worker_init(
                service._pool._pinned_sites, "shortest_path", multiprocessing.Barrier(1)
            )
            try:
                spec = LocalQuerySpec(
                    fragment_id=0, entry_nodes=frozenset([0]), exit_nodes=frozenset([4])
                )
                result = pool_module._WORKER_EVALUATOR.evaluate(
                    pool_module._WORKER_SITES[0], spec
                )
                assert result.values[(0, 4)] == 0.25
            finally:
                pool_module._WORKER_SITES = {}
                pool_module._WORKER_EVALUATOR = None
                pool_module._WORKER_BARRIER = None
