"""Tests for the bounded LRU result cache."""

import pytest

from repro.service import LRUCache


class TestLRUCache:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_get_put_roundtrip(self):
        cache = LRUCache(4)
        cache.put(("a", "b"), 1.5)
        assert cache.get(("a", "b")) == 1.5
        assert cache.hits == 1
        assert cache.misses == 0

    def test_miss_is_counted(self):
        cache = LRUCache(4)
        assert cache.get(("absent",)) is None
        assert cache.misses == 1

    def test_eviction_drops_least_recently_used(self):
        cache = LRUCache(2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.get(("a",))  # refresh "a": "b" becomes the LRU entry
        cache.put(("c",), 3)
        assert cache.evictions == 1
        assert ("b",) not in cache
        assert cache.get(("a",)) == 1
        assert cache.get(("c",)) == 3

    def test_capacity_is_respected(self):
        cache = LRUCache(3)
        for index in range(10):
            cache.put((index,), index)
        assert len(cache) == 3
        assert cache.evictions == 7
        assert list(cache) == [(7,), (8,), (9,)]

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.put(("a",), 10)  # update, not insert: nothing is evicted
        assert cache.evictions == 0
        assert cache.get(("a",)) == 10

    def test_clear_counts_invalidations(self):
        cache = LRUCache(4)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.invalidations == 2

    def test_evict_stale_by_predicate(self):
        cache = LRUCache(8)
        cache.put(("a", "v1"), 1)
        cache.put(("b", "v1"), 2)
        cache.put(("c", "v2"), 3)
        dropped = cache.evict_stale(lambda key: key[1] == "v1")
        assert dropped == 2
        assert list(cache) == [("c", "v2")]
