"""Shared-nothing placement through the service: routing, repins, migration,
worker death, snapshot round-trips."""

import random

import pytest

from repro.closure import shortest_path_cost
from repro.fragmentation import GroundTruthFragmenter
from repro.generators import two_cluster_dumbbell
from repro.graph import DiGraph
from repro.placement import PlacementError, PlacementPlan, round_robin_plan
from repro.service import PlacedWorkerPool, QueryService


def clique_line_fragmentation(blocks=3, block_size=4, seed=None):
    """``blocks`` cliques in a line with single bridges; optionally noisy weights."""
    rng = random.Random(seed)
    graph = DiGraph()
    node_blocks = [
        list(range(index * block_size, (index + 1) * block_size)) for index in range(blocks)
    ]
    for block in node_blocks:
        for i, a in enumerate(block):
            for b in block[i + 1:]:
                weight = 1.0 if seed is None else rng.uniform(0.5, 3.0)
                graph.add_edge(a, b, weight)
                graph.add_edge(b, a, weight)
    for index in range(blocks - 1):
        left = node_blocks[index][-1]
        right = node_blocks[index + 1][0]
        weight = 1.0 if seed is None else rng.uniform(0.5, 3.0)
        graph.add_edge(left, right, weight)
        graph.add_edge(right, left, weight)
    return GroundTruthFragmenter([set(block) for block in node_blocks]).fragment(graph)


def probe_queries(fragmentation, count, seed):
    rng = random.Random(seed)
    nodes = sorted(fragmentation.graph.nodes())
    return [tuple(rng.sample(nodes, 2)) for _ in range(count)]


class TestOwnerRouting:
    def test_routed_answers_match_in_process(self):
        fragmentation = clique_line_fragmentation()
        baseline = QueryService(fragmentation)
        with QueryService(fragmentation, placement="round_robin", workers=3) as placed:
            for source, target in probe_queries(fragmentation, 8, seed=1):
                assert placed.query(source, target).value == pytest.approx(
                    baseline.query(source, target).value
                )

    def test_each_worker_pins_only_its_fragments(self):
        fragmentation = clique_line_fragmentation()
        with QueryService(fragmentation, placement="round_robin", workers=3) as service:
            service.query(0, 11)  # starts the pool
            census = service._pool.pinned_census()
            plan = service.placement_plan
            assert census == {
                worker: plan.fragments_on(worker) for worker in range(plan.worker_count)
            }
            for worker, pinned in census.items():
                assert len(pinned) <= plan.pinned_bound()

    def test_per_owner_dispatch_and_queue_depth_are_observable(self):
        fragmentation = clique_line_fragmentation()
        with QueryService(fragmentation, placement="round_robin", workers=3) as service:
            for source, target in probe_queries(fragmentation, 6, seed=2):
                service.query(source, target)
            stats = service.stats.as_dict()
            assert sum(stats["per_owner_dispatch"].values()) == stats["local_evaluations"]
            assert stats["queue_depth_peak"] >= 1
            assert stats["dispatch_skew"] >= 1.0

    def test_empty_batch_does_not_reaccumulate_route_counts(self):
        # A batch that plans zero tasks (unknown endpoints) must not replay
        # the previous evaluate's per-owner route counts into the stats.
        fragmentation = clique_line_fragmentation()
        with QueryService(fragmentation, placement="round_robin", workers=3) as service:
            service.query(0, 11)
            before = dict(service.stats.per_owner_dispatch)
            answers = service.query_batch([("ghost", "phantom")])
            assert answers[0].error is not None
            assert service.stats.per_owner_dispatch == before
            assert (
                sum(service.stats.per_owner_dispatch.values())
                == service.stats.local_evaluations
            )

    def test_explicit_plan_is_respected(self):
        fragmentation = clique_line_fragmentation()
        plan = PlacementPlan(owner_of={0: 1, 1: 0, 2: 1}, worker_count=2)
        with QueryService(fragmentation, placement=plan) as service:
            service.query(0, 11)
            assert service._pool.pinned_census() == {0: [1], 1: [0, 2]}

    def test_placement_requires_standard_semiring_pool_contract(self):
        fragmentation = clique_line_fragmentation()
        with pytest.raises(PlacementError):
            QueryService(fragmentation).migrate(0, 1)


class TestScopedRepin:
    def test_update_repins_only_the_owner(self):
        fragmentation = clique_line_fragmentation()
        with QueryService(fragmentation, placement="round_robin", workers=3) as service:
            service.query(0, 11)
            plan = service.placement_plan
            service.update_edge(0, 2, 0.5)  # interior to fragment 0
            pool = service._pool
            assert pool.repins == 1
            assert pool.last_repin_workers == (plan.owner(0),)
            assert pool.repin_messages == 1  # not worker_count
            assert service.query(0, 11).value == pytest.approx(
                shortest_path_cost(service.database.graph, 0, 11)
            )

    def test_updates_stay_correct_across_the_routed_pool(self):
        fragmentation = clique_line_fragmentation(seed=7)
        baseline = QueryService(fragmentation)
        probes = probe_queries(fragmentation, 6, seed=3)
        with QueryService(fragmentation, placement="cost_balanced", workers=3) as placed:
            for round_index, (a, b) in enumerate([(0, 2), (4, 6), (8, 10), (3, 4)]):
                placed.update_edge(a, b, 0.25 + round_index)
                baseline.update_edge(a, b, 0.25 + round_index)
                for source, target in probes:
                    assert placed.query(source, target).value == pytest.approx(
                        baseline.query(source, target).value
                    )


class TestLiveMigration:
    def test_migrate_moves_state_without_restart(self):
        fragmentation = clique_line_fragmentation()
        with QueryService(fragmentation, placement="round_robin", workers=3) as service:
            service.query(0, 11)
            pool = service._pool
            pids_before = pool.worker_pids()
            owner = service.placement_plan.owner(0)
            destination = (owner + 1) % 3
            assert service.migrate(0, destination)
            assert service.placement_plan.owner(0) == destination
            assert 0 not in pool.pinned_census()[owner]
            assert 0 in pool.pinned_census()[destination]
            assert pool.worker_pids() == pids_before, "migration must not restart workers"
            assert service.query(0, 11).value == pytest.approx(
                shortest_path_cost(service.database.graph, 0, 11)
            )
            assert service.stats.migrations == 1

    def test_destination_death_mid_migration_self_heals(self):
        # The destination's mirror is updated before the pin is sent: if the
        # destination dies without ever processing the pin, the respawn
        # re-pins the migrating fragment from the mirror and the move still
        # lands — the fragment is never stranded on an owner that lacks it.
        fragmentation = clique_line_fragmentation()
        with QueryService(fragmentation, placement="round_robin", workers=3) as service:
            service.query(0, 11)
            pool = service._pool
            owner = service.placement_plan.owner(0)
            destination = (owner + 1) % 3
            handle = pool._workers[destination]

            def swallow_and_die(message):
                handle.process.terminate()
                handle.process.join()

            handle.queue.put = swallow_and_die  # the pin message is never seen
            assert service.migrate(0, destination)
            assert pool.respawns >= 1
            assert service.placement_plan.owner(0) == destination
            assert 0 in pool.pinned_census()[destination]
            service.cache.clear()
            assert service.query(0, 3).value == pytest.approx(
                shortest_path_cost(service.database.graph, 0, 3)
            )

    def test_migrated_fragment_still_absorbs_updates(self):
        fragmentation = clique_line_fragmentation()
        with QueryService(fragmentation, placement="round_robin", workers=3) as service:
            service.query(0, 11)
            destination = (service.placement_plan.owner(0) + 1) % 3
            service.migrate(0, destination)
            service.update_edge(0, 2, 0.5)
            assert service._pool.last_repin_workers == (destination,)
            assert service.query(0, 11).value == pytest.approx(
                shortest_path_cost(service.database.graph, 0, 11)
            )

    def test_migrate_to_invalid_worker_has_no_side_effects(self):
        fragmentation = clique_line_fragmentation()
        with QueryService(fragmentation, placement="round_robin", workers=3) as service:
            service.query(0, 11)
            pool = service._pool
            census_before = pool.pinned_census()
            for bad_worker in (99, -1):
                with pytest.raises(PlacementError):
                    service.migrate(0, bad_worker)
            assert pool.pinned_census() == census_before
            assert service.stats.migrations == 0

    def test_rebalance_repairs_a_forced_skew(self):
        fragmentation = clique_line_fragmentation()
        skewed = PlacementPlan(owner_of={0: 0, 1: 0, 2: 0}, worker_count=3)
        with QueryService(fragmentation, placement=skewed) as service:
            probes = probe_queries(fragmentation, 8, seed=4)
            for source, target in probes:
                service.query(source, target)
            pool = service._pool
            pids_before = pool.worker_pids()
            migrations = service.rebalance()
            assert migrations, "an all-on-one plan must be repaired"
            plan = service.placement_plan
            assert plan.max_pinned() <= plan.pinned_bound()
            assert max(len(plan.owned_by(w)) for w in range(3)) == 1
            assert pool.worker_pids() == pids_before, "rebalancing must not restart workers"
            for source, target in probes:
                assert service.query(source, target).value == pytest.approx(
                    shortest_path_cost(service.database.graph, source, target)
                )
            # A balanced pool has nothing more to move.
            assert service.rebalance() == []


class TestWorkerDeathRecovery:
    def test_killed_owner_is_rehomed_with_correct_pins(self):
        fragmentation = clique_line_fragmentation()
        with QueryService(fragmentation, placement="round_robin", workers=3) as service:
            service.query(0, 11)
            pool = service._pool
            victim = service.placement_plan.owner(0)
            pool._workers[victim].process.terminate()
            pool._workers[victim].process.join()
            answer = service.query(2, 9)
            assert answer.value == pytest.approx(
                shortest_path_cost(service.database.graph, 2, 9)
            )
            assert pool.respawns >= 1
            census = pool.pinned_census()
            plan = service.placement_plan
            assert census[victim] == plan.fragments_on(victim)

    def test_killed_owner_after_update_respawns_with_current_state(self):
        fragmentation = clique_line_fragmentation()
        with QueryService(fragmentation, placement="round_robin", workers=3) as service:
            service.query(0, 11)
            service.update_edge(0, 2, 0.125)  # repinned into the owner only
            pool = service._pool
            victim = service.placement_plan.owner(0)
            pool._workers[victim].process.terminate()
            pool._workers[victim].process.join()
            service.cache.clear()
            # The respawned owner must serve post-update state, not the
            # state captured at pool start.
            assert service.query(0, 3).value == pytest.approx(
                shortest_path_cost(service.database.graph, 0, 3)
            )

    @pytest.mark.parametrize("seed", [11, 29])
    def test_randomized_kills_match_replicated_baseline(self, seed):
        fragmentation = clique_line_fragmentation(seed=seed)
        rng = random.Random(seed)
        probes = probe_queries(fragmentation, 10, seed=seed)
        with QueryService(fragmentation, workers=2) as replicated:
            with QueryService(fragmentation, placement="round_robin", workers=3) as placed:
                for index, (source, target) in enumerate(probes):
                    if index and index % 3 == 0:
                        victim = rng.randrange(3)
                        placed._pool._workers[victim].process.terminate()
                        placed._pool._workers[victim].process.join()
                    assert placed.query(source, target).value == pytest.approx(
                        replicated.query(source, target).value
                    )


class TestPlacementSnapshots:
    def test_plan_round_trips_through_a_snapshot(self, tmp_path):
        fragmentation = clique_line_fragmentation()
        with QueryService(fragmentation, placement="round_robin", workers=3) as service:
            service.query(0, 11)
            destination = (service.placement_plan.owner(0) + 1) % 3
            service.migrate(0, destination)
            service.snapshot(tmp_path / "snap")
        restored = QueryService.from_snapshot(tmp_path / "snap")
        try:
            plan = restored.placement_plan
            assert plan is not None
            assert plan.owner(0) == destination, "migrations must survive the snapshot"
            assert restored.query(0, 11).value == pytest.approx(
                shortest_path_cost(restored.database.graph, 0, 11)
            )
        finally:
            restored.close()

    def test_policy_plan_is_visible_and_persisted_before_the_first_query(self, tmp_path):
        # A policy-string service must report and persist its placement even
        # before the first query forces the pool up — and the pool must then
        # start with exactly the plan that was reported/persisted.
        fragmentation = clique_line_fragmentation()
        with QueryService(fragmentation, placement="round_robin", workers=3) as service:
            plan = service.placement_plan
            assert plan is not None and plan.worker_count == 3
            service.snapshot(tmp_path / "snap")
            service.query(0, 11)
            assert service._pool.plan.owner_of == plan.owner_of
        restored = QueryService.from_snapshot(tmp_path / "snap")
        try:
            assert restored.placement_plan is not None
            assert restored.placement_plan.owner_of == plan.owner_of
        finally:
            restored.close()

    def test_conflicting_workers_and_plan_are_rejected(self):
        fragmentation = clique_line_fragmentation()
        plan = round_robin_plan([0, 1, 2], 2)
        with pytest.raises(PlacementError, match="conflicts"):
            QueryService(fragmentation, placement=plan, workers=8)

    def test_restore_with_new_worker_count_recomputes_the_plan(self, tmp_path):
        fragmentation = clique_line_fragmentation()
        with QueryService(fragmentation, placement="round_robin", workers=3) as service:
            service.snapshot(tmp_path / "snap")
        restored = QueryService.from_snapshot(tmp_path / "snap", workers=2)
        try:
            plan = restored.placement_plan
            assert plan is not None
            assert plan.worker_count == 2
            assert plan.policy == "round_robin"  # the persisted policy survives
        finally:
            restored.close()

    def test_explicit_none_placement_overrides_the_persisted_plan(self, tmp_path):
        fragmentation = clique_line_fragmentation()
        with QueryService(fragmentation, placement="round_robin", workers=3) as service:
            service.snapshot(tmp_path / "snap")
        restored = QueryService.from_snapshot(tmp_path / "snap", placement=None)
        try:
            assert restored.placement_plan is None
        finally:
            restored.close()

    def test_snapshot_without_plan_restores_replicated_service(self, tmp_path):
        graph = two_cluster_dumbbell(4, bridge_nodes=2)
        fragmentation = GroundTruthFragmenter(
            [set(range(4)), set(range(4, 8))]
        ).fragment(graph)
        QueryService(fragmentation).snapshot(tmp_path / "snap")
        restored = QueryService.from_snapshot(tmp_path / "snap")
        assert restored.placement_plan is None


class TestPlacedPoolContract:
    def test_closed_pool_refuses_work(self):
        fragmentation = clique_line_fragmentation()
        service = QueryService(fragmentation, placement="round_robin", workers=3)
        service.query(0, 11)
        pool = service._pool
        service.close()
        from repro.service import WorkerPoolError

        with pytest.raises(WorkerPoolError):
            pool.evaluate([(0, frozenset([0]), frozenset([3]))])

    def test_unplaced_fragment_is_rejected(self):
        fragmentation = clique_line_fragmentation()
        from repro.disconnection.catalog import DistributedCatalog

        catalog = DistributedCatalog(fragmentation)
        with pytest.raises(PlacementError):
            PlacedWorkerPool(catalog, round_robin_plan([0, 1], 2))
