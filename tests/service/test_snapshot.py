"""Tests for the snapshot store (prepare once, reload per process)."""

import pytest

import repro.disconnection.catalog as catalog_module
from repro.closure import reachability_semiring, widest_path_semiring
from repro.disconnection import DisconnectionSetEngine
from repro.fragmentation import GroundTruthFragmenter
from repro.generators import two_cluster_dumbbell
from repro.service import (
    SnapshotError,
    SnapshotStore,
    is_snapshot_directory,
    load_snapshot,
    save_snapshot,
)


@pytest.fixture(scope="module")
def prepared():
    graph = two_cluster_dumbbell(4, bridge_nodes=2)
    fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
    return graph, fragmentation, DisconnectionSetEngine(fragmentation)


class TestSnapshotRoundTrip:
    def test_round_trip_preserves_answers(self, prepared, tmp_path):
        _, _, engine = prepared
        save_snapshot(tmp_path / "snap", engine)
        loaded = load_snapshot(tmp_path / "snap")
        rebuilt = loaded.build_engine()
        for source, target in [(0, 7), (1, 6), (3, 4), (0, 3)]:
            assert rebuilt.query(source, target).value == engine.query(source, target).value

    def test_round_trip_preserves_structure(self, prepared, tmp_path):
        _, fragmentation, engine = prepared
        manifest = save_snapshot(tmp_path / "snap", engine)
        loaded = load_snapshot(tmp_path / "snap")
        assert loaded.manifest.version == manifest.version
        assert loaded.fragmentation.fragment_count() == fragmentation.fragment_count()
        assert loaded.fragmentation.disconnection_sets() == fragmentation.disconnection_sets()
        assert loaded.complementary.values == engine.catalog.complementary.values
        assert manifest.edge_count == fragmentation.graph.edge_count()

    def test_load_does_not_recompute_complementary(self, prepared, tmp_path, monkeypatch):
        _, _, engine = prepared
        save_snapshot(tmp_path / "snap", engine)

        def fail(*args, **kwargs):  # pragma: no cover - the point is it never runs
            raise AssertionError("snapshot load must not recompute complementary information")

        # The catalog calls the precomputation only when no complementary
        # information is supplied; a snapshot load must always supply it.
        monkeypatch.setattr(
            catalog_module, "precompute_complementary_information", fail
        )
        loaded = load_snapshot(tmp_path / "snap")
        rebuilt = loaded.build_engine()
        assert rebuilt.query(0, 7).value == engine.query(0, 7).value

    def test_version_is_content_addressed(self, prepared, tmp_path):
        _, _, engine = prepared
        first = save_snapshot(tmp_path / "one", engine)
        second = save_snapshot(tmp_path / "two", engine)
        assert first.version == second.version

    def test_version_differs_for_different_semirings(self, prepared, tmp_path):
        _, fragmentation, engine = prepared
        shortest = save_snapshot(tmp_path / "sp", engine)
        reach_engine = DisconnectionSetEngine(fragmentation, semiring=reachability_semiring())
        reach = save_snapshot(tmp_path / "reach", reach_engine)
        assert shortest.version != reach.version


class TestSnapshotValidation:
    def test_rejects_non_snapshot_directory(self, tmp_path):
        assert not is_snapshot_directory(tmp_path)
        with pytest.raises(SnapshotError):
            load_snapshot(tmp_path)

    def test_rejects_payload_manifest_mismatch(self, prepared, tmp_path):
        _, fragmentation, engine = prepared
        save_snapshot(tmp_path / "a", engine)
        reach_engine = DisconnectionSetEngine(fragmentation, semiring=reachability_semiring())
        save_snapshot(tmp_path / "b", reach_engine)
        # Simulate a botched copy: snapshot a's manifest with b's payload.
        (tmp_path / "a" / "payload.pkl").write_bytes((tmp_path / "b" / "payload.pkl").read_bytes())
        with pytest.raises(SnapshotError, match="does not match its manifest"):
            load_snapshot(tmp_path / "a")

    def test_rejects_nonstandard_semiring(self, prepared, tmp_path):
        _, fragmentation, _ = prepared
        engine = DisconnectionSetEngine(fragmentation, semiring=widest_path_semiring())
        with pytest.raises(ValueError):
            save_snapshot(tmp_path / "snap", engine)


class TestSnapshotStore:
    def test_named_snapshots(self, prepared, tmp_path):
        _, _, engine = prepared
        store = SnapshotStore(tmp_path / "store")
        assert store.list_snapshots() == []
        manifest = store.save("main", engine)
        assert store.list_snapshots() == ["main"]
        assert store.manifest("main").version == manifest.version
        loaded = store.load("main")
        assert loaded.manifest.version == manifest.version

    def test_missing_snapshot_raises(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        with pytest.raises(SnapshotError):
            store.manifest("absent")
