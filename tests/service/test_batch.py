"""Tests for the batch planner (dedup + shared local subqueries)."""

import pytest

from repro.disconnection import DisconnectionSetEngine, QueryPlanner
from repro.fragmentation import GroundTruthFragmenter
from repro.generators import two_cluster_dumbbell
from repro.service import BatchPlanner


@pytest.fixture(scope="module")
def planner():
    graph = two_cluster_dumbbell(4, bridge_nodes=2)
    fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
    engine = DisconnectionSetEngine(fragmentation)
    return BatchPlanner(QueryPlanner(engine.catalog))


class TestBatchPlanning:
    def test_duplicates_are_collapsed(self, planner):
        batch = planner.plan_batch([(0, 7), (0, 7), (0, 7), (1, 6)])
        assert batch.unique_queries == [(0, 7), (1, 6)]
        assert batch.assignments == [0, 0, 0, 1]
        assert batch.duplicate_queries_saved() == 2

    def test_shared_subqueries_are_pooled(self, planner):
        # Both queries cross the same fragment pair, so the border-to-border
        # subqueries of the intermediate chains coincide; the pooled task
        # list must contain each (fragment, entry, exit) spec exactly once.
        batch = planner.plan_batch([(0, 7), (1, 7)])
        assert batch.spec_references > len(batch.tasks)
        assert batch.shared_subqueries_saved() > 0
        assert len(set(batch.tasks)) == len(batch.tasks)

    def test_chain_groups_expose_sharing(self, planner):
        batch = planner.plan_batch([(0, 7), (1, 7)])
        shared_chains = [
            chain for chain, members in batch.chain_groups.items() if len(members) == 2
        ]
        assert shared_chains, "cross-cluster queries should share their fragment chain"

    def test_planning_errors_do_not_abort_the_batch(self, planner):
        batch = planner.plan_batch([(0, "missing"), (0, 7)])
        assert batch.plans[0] is None
        assert 0 in batch.errors
        assert batch.plans[1] is not None
        assert batch.tasks, "the healthy query must still be planned"

    def test_single_fragment_query_has_no_sharing(self, planner):
        # 2 and 3 are interior to the left clique: one chain, one spec.
        batch = planner.plan_batch([(2, 3)])
        assert batch.spec_references == len(batch.tasks)
        assert batch.shared_subqueries_saved() == 0
