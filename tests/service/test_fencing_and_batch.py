"""Replica version fencing and placement-aware batch planning."""

import random

import pytest

from repro.closure import shortest_path_cost
from repro.fragmentation import GroundTruthFragmenter
from repro.graph import DiGraph
from repro.placement import PlacementPlan
from repro.service import PlacedWorkerPool, QueryService


def clique_line(blocks=3, size=4, seed=None):
    rng = random.Random(seed)
    graph = DiGraph()
    node_blocks = [list(range(i * size, (i + 1) * size)) for i in range(blocks)]
    for block in node_blocks:
        for i, a in enumerate(block):
            for b in block[i + 1:]:
                weight = 1.0 if seed is None else rng.uniform(0.5, 3.0)
                graph.add_edge(a, b, weight)
                graph.add_edge(b, a, weight)
    for i in range(blocks - 1):
        left, right = node_blocks[i][-1], node_blocks[i + 1][0]
        weight = 1.0 if seed is None else rng.uniform(0.5, 3.0)
        graph.add_edge(left, right, weight)
        graph.add_edge(right, left, weight)
    return GroundTruthFragmenter([set(b) for b in node_blocks]).fragment(graph)


def replicated_plan():
    # Fragment 0 is replicated onto both other workers; 3 workers total.
    return PlacementPlan(
        owner_of={0: 0, 1: 1, 2: 2},
        worker_count=3,
        replicas={0: (1, 2)},
    )


class TestReplicaVersionFencing:
    def test_update_of_a_replicated_fragment_repins_only_the_owner(self):
        fragmentation = clique_line()
        with QueryService(fragmentation, placement=replicated_plan()) as service:
            service.query(0, 11)  # starts the pool
            pool = service._pool
            service.update_edge(0, 2, 0.5)  # interior to replicated fragment 0
            # Eager delivery reached exactly one worker: the owner.
            assert pool.repin_messages == 1
            assert pool.last_repin_workers == (0,)
            # Both replicas were fenced, not refreshed.
            assert pool.replica_repins_deferred == 2
            assert pool.replica_refreshes == 0
            assert service.query(0, 11).value == pytest.approx(
                shortest_path_cost(service.database.graph, 0, 11)
            )

    def test_fenced_replica_refreshes_on_first_routed_read(self):
        fragmentation = clique_line()
        with QueryService(fragmentation, placement=replicated_plan()) as service:
            service.query(0, 11)
            pool = service._pool
            service.update_edge(0, 2, 0.5)
            assert pool.replica_refreshes == 0
            # Kill the owner: the next read of fragment 0 falls back to a
            # fenced replica, which must refresh from the mirror first.
            pool._workers[0].process.terminate()
            pool._workers[0].process.join()
            service.cache.clear()
            assert service.query(0, 3).value == pytest.approx(
                shortest_path_cost(service.database.graph, 0, 3)
            )
            assert pool.replica_fallbacks >= 1
            assert pool.replica_refreshes >= 1
            assert service.stats.replica_refreshes >= 1

    def test_repeated_updates_defer_repeatedly_but_refresh_once(self):
        fragmentation = clique_line()
        with QueryService(fragmentation, placement=replicated_plan()) as service:
            service.query(0, 11)
            pool = service._pool
            for step in range(3):
                service.update_edge(0, 2, 0.5 + step * 0.25)
            assert pool.replica_repins_deferred == 6  # 3 updates x 2 replicas
            pool._workers[0].process.terminate()
            pool._workers[0].process.join()
            service.cache.clear()
            assert service.query(0, 3).value == pytest.approx(
                shortest_path_cost(service.database.graph, 0, 3)
            )
            # One refresh served all three deferred updates: the fence holds
            # a version, not a backlog.
            assert pool.replica_refreshes == 1

    def test_randomized_kills_with_fencing_match_the_truth(self):
        fragmentation = clique_line(seed=13)
        rng = random.Random(13)
        nodes = sorted(fragmentation.graph.nodes())
        with QueryService(fragmentation, placement=replicated_plan()) as service:
            service.query(0, 11)
            pool = service._pool
            for step in range(20):
                op = rng.random()
                if op < 0.4:
                    source, target = rng.sample(nodes, 2)
                    service.query(source, target)
                elif op < 0.8:
                    source, target = rng.sample(nodes, 2)
                    service.update_edge(source, target, rng.uniform(0.5, 3.0))
                else:
                    victim = rng.randrange(pool.worker_count)
                    if pool._workers[victim].is_alive():
                        pool._workers[victim].process.terminate()
                        pool._workers[victim].process.join()
            service.cache.clear()
            for _ in range(8):
                source, target = rng.sample(nodes, 2)
                assert service.query(source, target).value == pytest.approx(
                    shortest_path_cost(service.database.graph, source, target)
                )


class TestPlacementAwareBatches:
    def test_batch_is_grouped_per_owner(self):
        fragmentation = clique_line()
        with QueryService(fragmentation, placement="round_robin", workers=3) as service:
            service.query(0, 11)  # starts the pool; plan is live
            answers = service.query_batch([(0, 11), (4, 9), (11, 0), (5, 2)])
            assert all(answer.error is None for answer in answers)
            assert service.stats.placement_aware_batches == 1
            assert 1 <= service.stats.batch_owner_rounds <= 3
            for answer in answers:
                source, target = answer.source, answer.target
                assert answer.value == pytest.approx(
                    shortest_path_cost(service.database.graph, source, target)
                )

    def test_grouped_batch_matches_ungrouped_answers(self):
        fragmentation = clique_line(seed=3)
        queries = [(0, 11), (1, 10), (8, 2), (4, 9), (11, 1)]
        baseline = QueryService(fragmentation)
        expected = [answer.value for answer in baseline.query_batch(queries)]
        with QueryService(fragmentation, placement="cost_balanced", workers=2) as service:
            service.query(0, 11)
            got = [answer.value for answer in service.query_batch(queries)]
            assert got == pytest.approx(expected)

    def test_group_for_a_dead_owner_falls_back_to_live_routing(self):
        fragmentation = clique_line()
        with QueryService(fragmentation, placement="round_robin", workers=3) as service:
            service.query(0, 11)
            pool = service._pool
            assert isinstance(pool, PlacedWorkerPool)
            victim = service.placement_plan.owner(0)
            pool._workers[victim].process.terminate()
            pool._workers[victim].process.join()
            service.cache.clear()
            answers = service.query_batch([(0, 11), (2, 9)])
            for answer in answers:
                assert answer.value == pytest.approx(
                    shortest_path_cost(
                        service.database.graph, answer.source, answer.target
                    )
                )

    def test_replicated_pool_batches_stay_placement_blind(self):
        fragmentation = clique_line()
        with QueryService(fragmentation, workers=2) as service:
            service.query_batch([(0, 11), (4, 9)])
            assert service.stats.placement_aware_batches == 0

    def test_batches_regroup_after_a_migration(self):
        fragmentation = clique_line()
        with QueryService(fragmentation, placement="round_robin", workers=3) as service:
            service.query(0, 11)
            destination = (service.placement_plan.owner(0) + 1) % 3
            service.migrate(0, destination)
            answers = service.query_batch([(0, 11), (1, 9)])
            for answer in answers:
                assert answer.value == pytest.approx(
                    shortest_path_cost(
                        service.database.graph, answer.source, answer.target
                    )
                )
            assert service.stats.placement_aware_batches >= 1
