"""Delta-log replay on restore: snapshot + tail catch-up instead of re-snapshot."""

import pytest

from repro.closure import shortest_path_cost
from repro.fragmentation import GroundTruthFragmenter
from repro.graph import DiGraph
from repro.service import QueryService


def three_fragment_line():
    graph = DiGraph()
    blocks = [list(range(0, 4)), list(range(4, 8)), list(range(8, 12))]
    for block in blocks:
        for i, a in enumerate(block):
            for b in block[i + 1:]:
                graph.add_edge(a, b, 1.0)
                graph.add_edge(b, a, 1.0)
    for left, right in ((3, 4), (7, 8)):
        graph.add_edge(left, right, 1.0)
        graph.add_edge(right, left, 1.0)
    return GroundTruthFragmenter([set(block) for block in blocks]).fragment(graph)


class TestReplayOnRestore:
    def test_restored_service_catches_up_from_the_live_log(self, tmp_path):
        live = QueryService(three_fragment_line())
        live.update_edge(0, 2, 0.5)
        live.snapshot(tmp_path / "snap")
        # The live database keeps moving after the snapshot was taken.
        live.update_edge(9, 11, 0.25)
        live.update_edge(3, 4, 4.0)
        live.update_edge(5, 7, 0.75)

        restored = QueryService.from_snapshot(
            tmp_path / "snap", replay_log=live.database.delta_log
        )
        assert restored.stats.replayed_records == 3
        assert restored.version_vector == live.version_vector
        assert restored.database.delta_log.last_sequence == live.database.delta_log.last_sequence
        for probe in [(0, 11), (9, 11), (5, 1), (8, 3)]:
            assert restored.query(*probe).value == pytest.approx(
                shortest_path_cost(live.database.graph, *probe)
            )

    def test_replay_goes_through_the_incremental_maintainer(self, tmp_path):
        live = QueryService(three_fragment_line())
        live.snapshot(tmp_path / "snap")
        live.update_edge(0, 2, 0.5)
        restored = QueryService.from_snapshot(
            tmp_path / "snap", replay_log=live.database.delta_log
        )
        # The restored engine was patched in place, not rebuilt: replay is
        # incremental maintenance, not a fresh preparation.
        assert restored.database.statistics.incremental_updates == 1
        assert restored.database.statistics.engine_rebuilds == 0
        assert restored.database.delta_log.last().incremental

    def test_replayed_records_keep_their_sequence_numbers(self, tmp_path):
        live = QueryService(three_fragment_line())
        live.update_edge(0, 2, 0.5)
        live.update_edge(4, 6, 0.75)
        live.snapshot(tmp_path / "snap")
        live.update_edge(8, 10, 0.25)
        restored = QueryService.from_snapshot(
            tmp_path / "snap", replay_log=live.database.delta_log
        )
        assert [r.sequence for r in restored.database.delta_log.records()] == [3]
        # A second-generation hand-off from the restored service's own log
        # therefore composes: records_since(2) finds exactly the tail.
        assert len(restored.database.delta_log.records_since(2)) == 1

    def test_no_tail_means_no_replay_work(self, tmp_path):
        live = QueryService(three_fragment_line())
        live.update_edge(0, 2, 0.5)
        live.snapshot(tmp_path / "snap")
        restored = QueryService.from_snapshot(
            tmp_path / "snap", replay_log=live.database.delta_log
        )
        assert restored.stats.replayed_records == 0

    def test_replay_crosses_a_refragmentation(self, tmp_path):
        # A refragment record carries the complete aligned layout, so a
        # replica follows the reorganisation — and every later record's
        # fragment ids line up with the redrawn layout.
        from repro.fragmentation import HashFragmenter

        live = QueryService(three_fragment_line())
        live.snapshot(tmp_path / "snap")
        live.database.refragment(HashFragmenter(2))
        live.update_edge(0, 2, 0.5)
        restored = QueryService.from_snapshot(
            tmp_path / "snap", replay_log=live.database.delta_log
        )
        assert restored.stats.replayed_records == 2
        live_frag = live.database.fragmentation()
        restored_frag = restored.database.fragmentation()
        assert [f.edges for f in restored_frag.fragments] == [
            f.edges for f in live_frag.fragments
        ]
        for probe in [(0, 11), (9, 11), (0, 2)]:
            assert restored.query(*probe).value == pytest.approx(
                shortest_path_cost(live.database.graph, *probe)
            )

    def test_replay_record_applies_the_recorded_layout(self):
        live = QueryService(three_fragment_line())
        replica = QueryService(three_fragment_line())
        from repro.fragmentation import HashFragmenter

        live.database.refragment(HashFragmenter(2))
        record = live.database.delta_log.last()
        assert record.layout is not None
        replica.database.replay_record(record)
        assert [f.edges for f in replica.database.fragmentation().fragments] == [
            f.edges for f in live.database.fragmentation().fragments
        ]

    def test_legacy_layoutless_refragment_records_still_refuse(self):
        from repro.incremental import DeltaRecord

        replica = QueryService(three_fragment_line())
        legacy = DeltaRecord(sequence=1, kind="refragment")  # no layout recorded
        with pytest.raises(ValueError, match="resynchronise"):
            replica.database.replay_record(legacy)

    def test_falling_off_the_log_tail_is_an_error(self, tmp_path):
        from repro.incremental import DeltaLog

        live = QueryService(three_fragment_line())
        live.snapshot(tmp_path / "snap")
        # A tiny log that evicted everything the snapshot could replay from.
        tiny = DeltaLog(capacity=1)
        for sequence in range(5):
            tiny.append("reweight", incremental=True)
        with pytest.raises(ValueError, match="resynchronise"):
            QueryService.from_snapshot(tmp_path / "snap", replay_log=tiny)

    def test_replay_of_a_delete_and_insert(self, tmp_path):
        live = QueryService(three_fragment_line())
        live.snapshot(tmp_path / "snap")
        live.update_edge(0, 3, delete=True)
        live.update_edge(1, 11, 2.5)  # a brand-new cross-fragment edge
        restored = QueryService.from_snapshot(
            tmp_path / "snap", replay_log=live.database.delta_log
        )
        assert not restored.database.graph.has_edge(0, 3)
        assert restored.database.graph.edge_weight(1, 11) == 2.5
        for probe in [(0, 11), (1, 11), (0, 3)]:
            assert restored.query(*probe).value == pytest.approx(
                shortest_path_cost(live.database.graph, *probe)
            )

    def test_replay_lands_on_the_same_fragment_owners(self, tmp_path):
        live = QueryService(three_fragment_line())
        live.snapshot(tmp_path / "snap")
        owner = live.update_edge(5, 12, 1.5)  # node 12 is brand new
        restored = QueryService.from_snapshot(
            tmp_path / "snap", replay_log=live.database.delta_log
        )
        record = restored.database.delta_log.last()
        assert record.dirty_fragments == (owner,)


class TestResumedLogTail:
    def test_resumed_empty_log_does_not_fake_an_empty_tail(self):
        # A database restored from a snapshot at sequence 100 has an empty
        # log that *knows of* sequences up to 100 without holding them.  A
        # consumer at sequence 10 must get the fell-off-tail error, not a
        # silent empty tail that would let it believe it caught up.
        from repro.incremental import DeltaLog

        log = DeltaLog()
        log.resume_at(100)
        assert log.records_since(100) == []
        with pytest.raises(ValueError, match="resynchronise"):
            log.records_since(10)

    def test_second_generation_restore_is_caught(self, tmp_path):
        live = QueryService(three_fragment_line())
        live.update_edge(0, 2, 0.5)
        old = live.snapshot(tmp_path / "old")
        live.update_edge(4, 6, 0.75)
        live.snapshot(tmp_path / "new")
        # A source that is itself a fresh restore of the newer snapshot has
        # an empty, resumed log; replaying the older snapshot against it
        # must fail loudly instead of silently skipping updates 2..2.
        source = QueryService.from_snapshot(tmp_path / "new")
        with pytest.raises(ValueError, match="resynchronise"):
            QueryService.from_snapshot(
                tmp_path / "old", replay_log=source.database.delta_log
            )


class TestSequenceSeeding:
    def test_snapshot_records_the_delta_position(self, tmp_path):
        from repro.service import load_snapshot

        live = QueryService(three_fragment_line())
        live.update_edge(0, 2, 0.5)
        live.update_edge(4, 6, 0.75)
        live.snapshot(tmp_path / "snap")
        assert load_snapshot(tmp_path / "snap").delta_sequence == 2

    def test_old_snapshots_load_at_sequence_zero(self, tmp_path):
        from repro.disconnection import DisconnectionSetEngine
        from repro.service import load_snapshot, save_snapshot

        engine = DisconnectionSetEngine(three_fragment_line())
        save_snapshot(tmp_path / "snap", engine)
        loaded = load_snapshot(tmp_path / "snap")
        assert loaded.delta_sequence == 0
        assert loaded.placement_plan is None
