"""Unit tests for the parallel evaluation simulator."""

import pytest

from repro.fragmentation import GroundTruthFragmenter
from repro.generators import PathQuery, cross_cluster_queries, mixed_workload
from repro.parallel import CostModel, ParallelSimulator


@pytest.fixture(scope="module")
def simulator(small_transportation_network):
    network = small_transportation_network
    fragmentation = GroundTruthFragmenter(network.clusters).fragment(network.graph)
    return network, ParallelSimulator(fragmentation)


class TestQuerySimulation:
    def test_single_query_times(self, simulator):
        network, sim = simulator
        queries = cross_cluster_queries(network.clusters, 1, seed=1)
        result = sim.simulate_query(queries[0])
        assert result.answer.exists()
        assert result.parallel_time > 0.0
        assert result.sequential_time >= result.parallel_time
        assert result.speedup() >= 1.0

    def test_processor_loads_map_to_assignment(self, simulator):
        network, sim = simulator
        queries = cross_cluster_queries(network.clusters, 1, seed=2, minimum_cluster_distance=3)
        result = sim.simulate_query(queries[0])
        # An end-to-end query touches all four fragments = four processors.
        assert len(result.processor_loads) == 4

    def test_intra_cluster_query_uses_one_processor(self, simulator):
        network, sim = simulator
        from repro.generators import intra_cluster_queries

        query = intra_cluster_queries(network.clusters, 1, seed=3)[0]
        result = sim.simulate_query(query)
        assert len(result.processor_loads) == 1
        assert result.speedup() == pytest.approx(1.0, abs=0.2)


class TestWorkloadSimulation:
    def test_workload_aggregates(self, simulator):
        network, sim = simulator
        workload = mixed_workload(network.graph, network.clusters, 6, cross_fraction=0.5, seed=4)
        result = sim.simulate_workload(workload)
        assert len(result.query_simulations) == 6
        assert result.total_parallel_time > 0
        assert result.overall_speedup() >= 1.0
        assert result.average_speedup() >= 1.0

    def test_centralized_baseline_costs_more(self, simulator):
        network, sim = simulator
        workload = cross_cluster_queries(network.clusters, 3, seed=5)
        result = sim.simulate_workload(workload, include_centralized_baseline=True)
        assert result.centralized_time is not None
        # The disconnection set approach does far less work than a full
        # closure of the whole graph per query.
        assert result.speedup_vs_centralized() > 1.0

    def test_empty_workload(self, simulator):
        _, sim = simulator
        result = sim.simulate_workload([])
        assert result.overall_speedup() == 1.0
        assert result.average_speedup() == 1.0


class TestProcessorLimits:
    def test_fewer_processors_than_fragments(self, small_transportation_network):
        network = small_transportation_network
        fragmentation = GroundTruthFragmenter(network.clusters).fragment(network.graph)
        two_procs = ParallelSimulator(fragmentation, processor_count=2)
        four_procs = ParallelSimulator(fragmentation, processor_count=4)
        query = cross_cluster_queries(network.clusters, 1, seed=6, minimum_cluster_distance=3)[0]
        slow = two_procs.simulate_query(query)
        fast = four_procs.simulate_query(query)
        assert slow.parallel_time >= fast.parallel_time
        assert two_procs.assignment.processor_count == 2

    def test_custom_cost_model_changes_times(self, small_transportation_network):
        network = small_transportation_network
        fragmentation = GroundTruthFragmenter(network.clusters).fragment(network.graph)
        cheap = ParallelSimulator(fragmentation, cost_model=CostModel(tuple_cost=0.1))
        expensive = ParallelSimulator(fragmentation, cost_model=CostModel(tuple_cost=10.0))
        query = cross_cluster_queries(network.clusters, 1, seed=7)[0]
        assert expensive.simulate_query(query).parallel_time > cheap.simulate_query(query).parallel_time
