"""Tests for the multiprocessing query executor (real OS-level parallelism)."""

import pytest

from repro.closure import reachability_semiring, shortest_path_cost, widest_path_semiring
from repro.fragmentation import GroundTruthFragmenter
from repro.generators import two_cluster_dumbbell
from repro.parallel import MultiprocessQueryExecutor


@pytest.fixture(scope="module")
def dumbbell_setup():
    graph = two_cluster_dumbbell(4, bridge_nodes=2)
    fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
    return graph, fragmentation


class TestMultiprocessExecutor:
    def test_rejects_unsupported_semiring(self, dumbbell_setup):
        _, fragmentation = dumbbell_setup
        with pytest.raises(ValueError):
            MultiprocessQueryExecutor(fragmentation, semiring=widest_path_semiring())

    def test_cross_fragment_query_matches_centralized(self, dumbbell_setup):
        graph, fragmentation = dumbbell_setup
        executor = MultiprocessQueryExecutor(fragmentation, processes=2)
        answer = executor.query(1, 7)
        assert answer.value == pytest.approx(shortest_path_cost(graph, 1, 7))
        assert answer.worker_count == 2
        assert answer.subqueries_executed >= 2

    def test_reachability_semiring(self, dumbbell_setup):
        _, fragmentation = dumbbell_setup
        executor = MultiprocessQueryExecutor(
            fragmentation, semiring=reachability_semiring(), processes=2
        )
        answer = executor.query(0, 7)
        assert answer.value is True
