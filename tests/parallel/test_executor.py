"""Tests for the multiprocessing query executor (real OS-level parallelism)."""

import pytest

from repro.closure import reachability_semiring, shortest_path_cost, widest_path_semiring
from repro.fragmentation import GroundTruthFragmenter
from repro.generators import two_cluster_dumbbell
from repro.parallel import MultiprocessQueryExecutor


@pytest.fixture(scope="module")
def dumbbell_setup():
    graph = two_cluster_dumbbell(4, bridge_nodes=2)
    fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
    return graph, fragmentation


class TestMultiprocessExecutor:
    def test_rejects_unsupported_semiring(self, dumbbell_setup):
        _, fragmentation = dumbbell_setup
        with pytest.raises(ValueError):
            MultiprocessQueryExecutor(fragmentation, semiring=widest_path_semiring())

    def test_cross_fragment_query_matches_centralized(self, dumbbell_setup):
        graph, fragmentation = dumbbell_setup
        executor = MultiprocessQueryExecutor(fragmentation, processes=2)
        answer = executor.query(1, 7)
        assert answer.value == pytest.approx(shortest_path_cost(graph, 1, 7))
        assert answer.worker_count == 2
        assert answer.subqueries_executed >= 2

    def test_reachability_semiring(self, dumbbell_setup):
        _, fragmentation = dumbbell_setup
        with MultiprocessQueryExecutor(
            fragmentation, semiring=reachability_semiring(), processes=2
        ) as executor:
            answer = executor.query(0, 7)
        assert answer.value is True

    def test_pool_is_resident_across_queries(self, dumbbell_setup):
        _, fragmentation = dumbbell_setup
        with MultiprocessQueryExecutor(fragmentation, processes=2) as executor:
            executor.query(1, 7)
            pool = executor._pool
            assert pool is not None and pool.is_running()
            executor.query(0, 6)
            # The same resident workers served both queries.
            assert executor._pool is pool
            assert sum(pool.dispatch_counts.values()) >= 4
        assert not pool.is_running()


class TestExecutorMatchesSequentialEngine:
    def test_round_trip_on_seeded_random_graph(self):
        """The parallel executor and the sequential engine agree on a random graph."""
        from repro.disconnection import DisconnectionSetEngine
        from repro.fragmentation import CenterBasedFragmenter
        from repro.generators import RandomGraphConfig, generate_random_graph

        graph = generate_random_graph(RandomGraphConfig(node_count=40, c1=90.0, c2=0.5), seed=11)
        fragmentation = CenterBasedFragmenter(3, center_selection="random", seed=7).fragment(graph)
        engine = DisconnectionSetEngine(fragmentation)
        rng_pairs = [(0, 39), (5, 30), (12, 27), (3, 18), (20, 8)]
        with MultiprocessQueryExecutor(fragmentation, processes=3) as executor:
            for source, target in rng_pairs:
                sequential = engine.query(source, target)
                parallel = executor.query(source, target)
                if sequential.value is None:
                    assert parallel.value is None
                else:
                    assert parallel.value == pytest.approx(sequential.value)
