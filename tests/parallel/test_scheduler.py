"""Unit tests for the fragment-to-processor scheduler."""

import pytest

from repro.exceptions import SchedulingError
from repro.parallel import assign_fragments, one_processor_per_fragment


class TestAssignment:
    def test_round_robin(self):
        assignment = assign_fragments({0: 5.0, 1: 1.0, 2: 3.0, 3: 2.0}, 2, policy="round_robin")
        assert assignment.processor_count == 2
        assert assignment.processor_of[0] == 0
        assert assignment.processor_of[1] == 1
        assert assignment.processor_of[2] == 0

    def test_lpt_balances_loads(self):
        costs = {0: 10.0, 1: 9.0, 2: 2.0, 3: 1.0}
        assignment = assign_fragments(costs, 2, policy="lpt")
        loads = assignment.processor_loads(costs)
        assert max(loads) <= 12.0  # LPT puts 10+2 or 10+1 together, never 10+9

    def test_lpt_beats_or_ties_round_robin_makespan(self):
        costs = {0: 8.0, 1: 7.0, 2: 6.0, 3: 1.0, 4: 1.0, 5: 1.0}
        lpt = assign_fragments(costs, 3, policy="lpt").makespan(costs)
        rr = assign_fragments(costs, 3, policy="round_robin").makespan(costs)
        assert lpt <= rr

    def test_invalid_processor_count(self):
        with pytest.raises(SchedulingError):
            assign_fragments({0: 1.0}, 0)

    def test_unknown_policy(self):
        with pytest.raises(SchedulingError):
            assign_fragments({0: 1.0}, 1, policy="magic")

    def test_fragments_on_processor(self):
        assignment = assign_fragments({0: 1.0, 1: 1.0, 2: 1.0}, 2, policy="round_robin")
        assert assignment.fragments_on(0) == [0, 2]
        assert assignment.fragments_on(1) == [1]

    def test_one_processor_per_fragment(self):
        assignment = one_processor_per_fragment([3, 1, 2])
        assert assignment.processor_count == 3
        assert assignment.processor_of == {1: 0, 2: 1, 3: 2}

    def test_makespan_with_missing_costs_defaults_to_zero(self):
        assignment = one_processor_per_fragment([0, 1])
        assert assignment.makespan({0: 4.0}) == 4.0
