"""Unit tests for the abstract cost model."""

import pytest

from repro.disconnection import ExecutionReport, SiteWork
from repro.parallel import CostModel


def _report() -> ExecutionReport:
    report = ExecutionReport()
    report.site_work = {
        0: SiteWork(fragment_id=0, subqueries=1, iterations=4, tuples_produced=100),
        1: SiteWork(fragment_id=1, subqueries=2, iterations=6, tuples_produced=50),
    }
    report.join_operations = 3
    report.assembly_tuples = 10
    return report


class TestCostModel:
    def test_site_cost_formula(self):
        model = CostModel(tuple_cost=1.0, iteration_cost=5.0, subquery_cost=10.0)
        work = SiteWork(fragment_id=0, subqueries=2, iterations=3, tuples_produced=40)
        assert model.site_cost(work) == 40 + 15 + 20

    def test_site_costs_per_fragment(self):
        costs = CostModel().site_costs(_report())
        assert set(costs) == {0, 1}
        assert costs[0] > costs[1]

    def test_parallel_makespan_is_slowest_site_plus_assembly(self):
        model = CostModel()
        report = _report()
        makespan = model.parallel_makespan(report)
        slowest = max(model.site_costs(report).values())
        assert makespan == pytest.approx(slowest + model.assembly_cost(report))

    def test_sequential_cost_is_sum_of_sites_plus_assembly(self):
        model = CostModel()
        report = _report()
        assert model.sequential_cost(report) == pytest.approx(
            sum(model.site_costs(report).values()) + model.assembly_cost(report)
        )

    def test_sequential_at_least_parallel(self):
        model = CostModel()
        report = _report()
        assert model.sequential_cost(report) >= model.parallel_makespan(report)

    def test_assembly_cost_counts_joins_tuples_and_messages(self):
        model = CostModel(join_cost=5.0, assembly_tuple_cost=0.5, message_cost=2.0)
        report = _report()
        # 3 joins, 10 assembly tuples, 3 subqueries shipped.
        assert model.assembly_cost(report) == 3 * 5.0 + 10 * 0.5 + 3 * 2.0

    def test_empty_report(self):
        model = CostModel()
        report = ExecutionReport()
        assert model.parallel_makespan(report) == 0.0
        assert model.sequential_cost(report) == 0.0

    def test_closure_cost(self):
        model = CostModel(tuple_cost=1.0, iteration_cost=5.0, subquery_cost=10.0)
        assert model.closure_cost(iterations=2, tuples_produced=30) == 30 + 10 + 10
