"""Unit tests for the speed-up / iteration-reduction analysis."""

import pytest

from repro.fragmentation import CenterBasedFragmenter, GroundTruthFragmenter, LinearFragmenter
from repro.generators import cross_cluster_queries, mixed_workload
from repro.parallel import compare_fragmenters, speedup_curve


class TestSpeedupCurve:
    def test_curve_points_and_iteration_reduction(self, small_transportation_network):
        network = small_transportation_network
        queries = cross_cluster_queries(network.clusters, 4, seed=1)
        points = speedup_curve(
            network.graph,
            lambda count: CenterBasedFragmenter(count, center_selection="distributed"),
            fragment_counts=[2, 4],
            queries=queries,
        )
        assert len(points) == 2
        for point in points:
            assert point.speedup >= 1.0
            assert point.graph_diameter >= point.max_fragment_diameter
            assert point.iteration_reduction() >= 1.0

    def test_more_fragments_do_not_increase_parallel_time_much(self, small_transportation_network):
        network = small_transportation_network
        queries = cross_cluster_queries(network.clusters, 4, seed=2)
        points = speedup_curve(
            network.graph,
            lambda count: CenterBasedFragmenter(count, center_selection="distributed"),
            fragment_counts=[1, 4],
            queries=queries,
        )
        single, many = points
        # With one fragment there is no parallelism at all.
        assert single.speedup == pytest.approx(1.0, abs=0.05)
        assert many.speedup >= single.speedup


class TestCompareFragmenters:
    def test_all_fragmenters_simulated(self, small_transportation_network):
        network = small_transportation_network
        queries = mixed_workload(network.graph, network.clusters, 4, cross_fraction=0.75, seed=3)
        results = compare_fragmenters(
            network.graph,
            {
                "ground-truth": GroundTruthFragmenter(network.clusters),
                "linear": LinearFragmenter(4),
            },
            queries,
        )
        assert set(results) == {"ground-truth", "linear"}
        for simulation in results.values():
            assert simulation.total_parallel_time > 0
            assert simulation.centralized_time is not None
