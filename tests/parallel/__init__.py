"""Test package (keeps basenames like test_metrics.py unambiguous at collection)."""
