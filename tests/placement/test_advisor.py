"""The rebalance advisor: skew detection and migration recommendations."""

import pytest

from repro.incremental import DeltaLog
from repro.placement import Migration, PlacementPlan, RebalanceAdvisor, round_robin_plan


def skewed_plan(fragments=6, workers=3):
    """Every fragment parked on worker 0 — the worst case a bad plan allows."""
    return PlacementPlan(owner_of={f: 0 for f in range(fragments)}, worker_count=workers)


class TestRecommendations:
    def test_balanced_plan_yields_nothing(self):
        advisor = RebalanceAdvisor()
        plan = round_robin_plan(range(6), 3)
        assert advisor.recommend(plan, {f: 10 for f in range(6)}) == []

    def test_skewed_plan_is_repaired_under_threshold(self):
        advisor = RebalanceAdvisor(skew_threshold=1.5)
        plan = skewed_plan()
        dispatches = {f: 10 for f in range(6)}
        migrations = advisor.recommend(plan, dispatches)
        assert migrations, "an all-on-one plan must trigger migrations"
        repaired = plan.copy()
        for migration in migrations:
            assert migration.from_worker == 0
            repaired.move(migration.fragment_id, migration.to_worker)
        assert advisor.skew(repaired, dispatches) <= 1.5
        # The original plan is never mutated by recommend().
        assert plan.owner_of == skewed_plan().owner_of

    def test_cold_pool_balances_by_fragment_count(self):
        advisor = RebalanceAdvisor()
        migrations = advisor.recommend(skewed_plan(), {})
        assert migrations, "no dispatch signal must not mask an all-on-one plan"

    def test_single_hot_fragment_is_not_shuffled_forever(self):
        # One fragment carries everything: moving it around cannot help, so
        # the advisor must not recommend churn.
        advisor = RebalanceAdvisor()
        plan = round_robin_plan(range(3), 3)
        migrations = advisor.recommend(plan, {plan.fragment_ids[0]: 1000, 1: 1, 2: 1})
        assert migrations == []

    def test_migration_cap_bounds_churn(self):
        advisor = RebalanceAdvisor(max_migrations=2)
        migrations = advisor.recommend(skewed_plan(fragments=12, workers=4), {})
        assert len(migrations) <= 2

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            RebalanceAdvisor(skew_threshold=0.5)


class TestDeltaLogLocality:
    def test_update_heavy_fragment_counts_as_load(self):
        advisor = RebalanceAdvisor(update_weight=1.0)
        plan = round_robin_plan(range(2), 2)
        log = DeltaLog()
        for _ in range(40):
            log.append("reweight", dirty_fragments=(0,), incremental=True)
        loads = advisor.fragment_loads(plan, {0: 5, 1: 5}, delta_log=log)
        assert loads[0] == pytest.approx(45.0)
        assert loads[1] == pytest.approx(5.0)
        assert advisor.skew(plan, {0: 5, 1: 5}, delta_log=log) > 1.5


class TestApply:
    def test_apply_drives_a_pool_like_object(self):
        class FakePool:
            def __init__(self):
                self.calls = []

            def migrate(self, fragment_id, to_worker):
                self.calls.append((fragment_id, to_worker))
                return True

        pool = FakePool()
        advisor = RebalanceAdvisor()
        migrations = [
            Migration(fragment_id=1, from_worker=0, to_worker=2, reason="test"),
            Migration(fragment_id=3, from_worker=0, to_worker=1, reason="test"),
        ]
        assert advisor.apply(migrations, pool) == 2
        assert pool.calls == [(1, 2), (3, 1)]
