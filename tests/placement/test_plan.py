"""Placement plans: policies, bounds, moves, serialisation."""

import math

import pytest

from repro.placement import (
    POLICY_COST_BALANCED,
    POLICY_ROUND_ROBIN,
    POLICY_WORKLOAD_AWARE,
    PlacementError,
    PlacementPlan,
    cost_balanced_plan,
    plan_placement,
    round_robin_plan,
    workload_aware_plan,
)


class TestRoundRobin:
    def test_spreads_fragments_evenly(self):
        plan = round_robin_plan(range(7), 3)
        assert plan.policy == POLICY_ROUND_ROBIN
        counts = [len(plan.owned_by(worker)) for worker in range(3)]
        assert sorted(counts) == [2, 2, 3]
        assert plan.max_pinned() <= plan.pinned_bound()

    def test_every_fragment_has_exactly_one_owner(self):
        plan = round_robin_plan([3, 1, 4, 1 + 10, 5], 2)
        assert sorted(plan.fragment_ids) == [1, 3, 4, 5, 11]
        for fragment_id in plan.fragment_ids:
            assert plan.workers_for(fragment_id) == (plan.owner(fragment_id),)

    def test_empty_fragment_set_rejected(self):
        with pytest.raises(PlacementError):
            round_robin_plan([], 2)


class TestCostBalanced:
    def test_balances_cost_within_the_count_capacity(self):
        # One huge fragment: LPT wants it alone, but the memory bound caps
        # every worker at ceil(4/2)=2 owned fragments, so the cheap ones
        # spread instead of all piling opposite the heavy one.
        costs = {0: 100.0, 1: 10.0, 2: 10.0, 3: 10.0}
        plan = cost_balanced_plan(costs, 2)
        assert plan.policy == POLICY_COST_BALANCED
        assert plan.max_pinned() <= plan.pinned_bound() == 2
        heavy_owner = plan.owner(0)
        # The heavy worker takes at most one cheap rider; the rest balance.
        assert len(plan.owned_by(heavy_owner)) <= 2
        assert plan.skew(costs) < 4.0  # far better than all-on-one

    def test_respects_pinned_bound(self):
        costs = {f: float(f + 1) for f in range(10)}
        plan = cost_balanced_plan(costs, 4)
        assert plan.max_pinned() <= math.ceil(10 / 4)


class TestWorkloadAware:
    def test_replicates_only_hot_fragments(self):
        # Fragment 0 absorbs almost the whole workload: it earns a replica.
        dispatches = {0: 1000, 1: 5, 2: 5, 3: 5}
        plan = workload_aware_plan(dispatches, 2)
        assert plan.policy == POLICY_WORKLOAD_AWARE
        assert len(plan.workers_for(0)) == 2
        for cold in (1, 2, 3):
            assert len(plan.workers_for(cold)) == 1
        assert plan.replication_factor() == 1
        assert plan.max_pinned() <= plan.pinned_bound()

    def test_uniform_load_replicates_nothing(self):
        dispatches = {f: 10 for f in range(8)}
        plan = workload_aware_plan(dispatches, 4)
        assert plan.replication_factor() == 0

    def test_unobserved_fragments_are_still_placed(self):
        plan = workload_aware_plan({0: 50}, 2, fragment_ids=[0, 1, 2])
        assert sorted(plan.fragment_ids) == [0, 1, 2]


class TestPlanPlacementFactory:
    def test_workload_aware_falls_back_when_cold(self):
        # No dispatches recorded yet: fall back to cost balancing.
        plan = plan_placement(
            POLICY_WORKLOAD_AWARE,
            2,
            fragment_costs={0: 5.0, 1: 5.0, 2: 5.0},
            dispatch_counts={},
        )
        assert plan.policy == POLICY_WORKLOAD_AWARE
        assert sorted(plan.fragment_ids) == [0, 1, 2]

    def test_unknown_policy_rejected(self):
        with pytest.raises(PlacementError):
            plan_placement("best_effort", 2, fragment_ids=[0, 1])

    def test_no_fragments_rejected(self):
        with pytest.raises(PlacementError):
            plan_placement(POLICY_ROUND_ROBIN, 2)


class TestMutationAndValidation:
    def test_move_changes_owner_and_reports_previous(self):
        plan = round_robin_plan([0, 1, 2, 3], 2)
        previous = plan.owner(2)
        assert plan.move(2, 1 - previous) == previous
        assert plan.owner(2) == 1 - previous

    def test_move_absorbs_destination_replica(self):
        plan = round_robin_plan([0, 1], 2)
        plan.add_replica(0, 1)
        assert plan.workers_for(0) == (0, 1)
        plan.move(0, 1)
        # No duplicate pinning: the destination replica became the owner.
        assert plan.workers_for(0) == (1,)

    def test_add_replica_is_idempotent_and_skips_owner(self):
        plan = round_robin_plan([0], 2)
        plan.add_replica(0, plan.owner(0))
        assert plan.replicas.get(0) is None
        plan.add_replica(0, 1)
        plan.add_replica(0, 1)
        assert plan.replicas[0] == (1,)

    def test_out_of_range_workers_rejected(self):
        plan = round_robin_plan([0, 1], 2)
        with pytest.raises(PlacementError):
            plan.move(0, 5)
        with pytest.raises(PlacementError):
            plan.add_replica(0, -1)
        with pytest.raises(PlacementError):
            PlacementPlan(owner_of={0: 7}, worker_count=2)

    def test_replica_listing_owner_rejected(self):
        with pytest.raises(PlacementError):
            PlacementPlan(owner_of={0: 0}, worker_count=2, replicas={0: (0,)})

    def test_unplaced_fragment_rejected(self):
        plan = round_robin_plan([0, 1], 2)
        with pytest.raises(PlacementError):
            plan.owner(9)


class TestSkew:
    def test_idle_workers_count_in_the_mean(self):
        plan = PlacementPlan(owner_of={0: 0, 1: 0, 2: 0, 3: 0}, worker_count=4)
        assert plan.skew({f: 1.0 for f in range(4)}) == pytest.approx(4.0)

    def test_balanced_plan_has_unit_skew(self):
        plan = round_robin_plan(range(4), 4)
        assert plan.skew({f: 1.0 for f in range(4)}) == pytest.approx(1.0)

    def test_no_signal_reports_balanced(self):
        plan = round_robin_plan(range(4), 2)
        assert plan.skew({}) == 1.0


class TestSerialisation:
    def test_round_trip(self):
        plan = workload_aware_plan({0: 100, 1: 3, 2: 2}, 2)
        plan.move(1, plan.owner(0))
        restored = PlacementPlan.from_dict(plan.as_dict())
        assert restored.owner_of == plan.owner_of
        assert restored.replicas == plan.replicas
        assert restored.worker_count == plan.worker_count
        assert restored.policy == plan.policy

    def test_copy_is_independent(self):
        plan = round_robin_plan([0, 1, 2], 2)
        clone = plan.copy()
        clone.move(0, 1)
        assert plan.owner(0) == 0
        assert clone.owner(0) == 1
