"""Metrics registry: bucket math, quantiles, labels, cross-process merging."""

import math

import pytest

from repro.observability import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("repro_things_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labeled_series_are_independent(self):
        counter = Counter("repro_dispatch_total", labelnames=("fragment",))
        counter.inc(3, fragment=0)
        counter.inc(1, fragment=1)
        assert counter.value(fragment=0) == 3
        assert counter.value(fragment=1) == 1
        assert counter.value(fragment=2) == 0

    def test_rejects_negative_increment(self):
        counter = Counter("repro_things_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_rejects_wrong_label_set(self):
        counter = Counter("repro_dispatch_total", labelnames=("fragment",))
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc(1, worker=0)
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc(1)


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("repro_pool_workers")
        gauge.set(4)
        gauge.set(2)
        assert gauge.value() == 2

    def test_max_of_is_high_water(self):
        gauge = Gauge("repro_queue_depth_peak")
        gauge.max_of(3)
        gauge.max_of(1)
        assert gauge.value() == 3


class TestHistogramBuckets:
    def test_observations_land_in_correct_buckets(self):
        hist = Histogram("repro_latency_seconds", buckets=(0.001, 0.01, 0.1))
        # Upper bounds are inclusive (Prometheus `le` semantics).
        hist.observe(0.001)
        hist.observe(0.0005)
        hist.observe(0.05)
        hist.observe(5.0)  # lands in the implicit +Inf bucket
        [series] = hist.series_dicts()
        assert series["bucket_counts"] == [2, 0, 1, 1]
        assert series["count"] == 4
        assert series["sum"] == pytest.approx(0.001 + 0.0005 + 0.05 + 5.0)
        assert series["max"] == 5.0

    def test_rejects_unsorted_or_infinite_buckets(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("repro_bad", buckets=(0.1, 0.1))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("repro_bad", buckets=(0.2, 0.1))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("repro_bad", buckets=(0.1, math.inf))

    def test_quantile_interpolates_within_bucket(self):
        hist = Histogram("repro_latency_seconds", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            hist.observe(1.5)  # all in the (1.0, 2.0] bucket
        # Every rank resolves inside that bucket; interpolation stays in it
        # and is capped by the observed maximum.
        assert 1.0 < hist.quantile(0.5) <= 1.5
        assert 1.0 < hist.quantile(0.99) <= 1.5

    def test_quantile_orders_across_buckets(self):
        hist = Histogram("repro_latency_seconds", buckets=(0.001, 0.01, 0.1, 1.0))
        for _ in range(90):
            hist.observe(0.005)
        for _ in range(10):
            hist.observe(0.5)
        p50 = hist.quantile(0.50)
        p99 = hist.quantile(0.99)
        assert 0.001 < p50 <= 0.01
        assert 0.1 < p99 <= 0.5
        assert p50 < p99

    def test_quantile_in_inf_bucket_returns_max(self):
        hist = Histogram("repro_latency_seconds", buckets=(0.001,))
        hist.observe(7.0)
        assert hist.quantile(0.99) == 7.0

    def test_quantile_of_empty_series_is_zero(self):
        hist = Histogram("repro_latency_seconds")
        assert hist.quantile(0.5) == 0.0

    def test_quantile_rejects_out_of_range(self):
        hist = Histogram("repro_latency_seconds")
        with pytest.raises(ValueError):
            hist.quantile(0.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_queries_total")
        second = registry.counter("repro_queries_total")
        assert first is second

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_queries_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_queries_total")

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_dispatch_total", labelnames=("fragment",))
        with pytest.raises(ValueError, match="labels"):
            registry.counter("repro_dispatch_total", labelnames=("worker",))

    def test_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("repro_latency_seconds", buckets=(0.1, 1.0))
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("repro_latency_seconds", buckets=(0.2, 1.0))

    def test_invalid_name_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("repro queries")


class TestMergeAcrossProcesses:
    """The worker->coordinator path: drain on one registry, merge on another."""

    def _worker_payload(self):
        worker = MetricsRegistry()
        worker.counter(
            "repro_worker_kernel_tasks_total", labelnames=("worker", "fragment")
        ).inc(5, worker=1, fragment=2)
        worker.gauge("repro_worker_queue_peak").set(7)
        worker.histogram(
            "repro_worker_kernel_seconds", buckets=(0.001, 0.01)
        ).observe(0.005)
        return worker

    def test_drain_empties_the_worker_registry(self):
        worker = self._worker_payload()
        payload = worker.drain()
        assert payload["repro_worker_kernel_tasks_total"]["series"]
        # After the drain the same series reads zero — the next payload only
        # carries the delta, so the coordinator never double-counts.
        counter = worker.get("repro_worker_kernel_tasks_total")
        assert counter.value(worker=1, fragment=2) == 0

    def test_merge_creates_and_adds(self):
        coordinator = MetricsRegistry()
        coordinator.merge_dict(self._worker_payload().drain())
        coordinator.merge_dict(self._worker_payload().drain())
        counter = coordinator.get("repro_worker_kernel_tasks_total")
        assert counter.value(worker=1, fragment=2) == 10
        hist = coordinator.get("repro_worker_kernel_seconds")
        assert hist.count() == 2
        # Gauges fold with max, not sum: they are high-water marks.
        assert coordinator.get("repro_worker_queue_peak").value() == 7

    def test_merge_sums_histogram_buckets(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for registry, value in ((a, 0.0005), (b, 0.5)):
            registry.histogram(
                "repro_latency_seconds", buckets=(0.001, 0.1)
            ).observe(value)
        a.merge(b)
        [series] = a.get("repro_latency_seconds").series_dicts()
        assert series["bucket_counts"] == [1, 0, 1]
        assert series["count"] == 2

    def test_merge_rejects_bucket_mismatch(self):
        a = MetricsRegistry()
        a.histogram("repro_latency_seconds", buckets=(0.001, 0.1)).observe(0.01)
        b = MetricsRegistry()
        b.histogram("repro_latency_seconds", buckets=(0.002, 0.1)).observe(0.01)
        with pytest.raises(ValueError, match="bucket"):
            a.merge(b)

    def test_default_latency_buckets_are_valid(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert all(b > 0 for b in DEFAULT_LATENCY_BUCKETS)


class TestPrometheusExposition:
    def test_output_parses_line_by_line(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_dispatch_total", "Dispatches.", labelnames=("fragment",)
        ).inc(3, fragment=0)
        registry.gauge("repro_pool_workers", "Workers.").set(4)
        registry.histogram(
            "repro_latency_seconds", "Latency.", buckets=(0.001, 0.1)
        ).observe(0.05)
        text = registry.to_prometheus()
        assert "# HELP repro_dispatch_total Dispatches." in text
        assert "# TYPE repro_latency_seconds histogram" in text
        assert 'repro_dispatch_total{fragment="0"} 3' in text
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name
            float(value)  # every sample value parses

    def test_histogram_bucket_lines_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_latency_seconds", buckets=(0.001, 0.1))
        hist.observe(0.0005)
        hist.observe(0.05)
        hist.observe(9.0)
        text = registry.to_prometheus()
        assert 'repro_latency_seconds_bucket{le="0.001"} 1' in text
        assert 'repro_latency_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_latency_seconds_count 3" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_named_total", labelnames=("name",)).inc(
            1, name='a"b\\c'
        )
        assert 'name="a\\"b\\\\c"' in registry.to_prometheus()


class TestResetAndRoundTrip:
    def test_reset_zeroes_but_keeps_registration(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_queries_total")
        counter.inc(5)
        registry.reset()
        assert counter.value() == 0
        assert registry.get("repro_queries_total") is counter

    def test_as_dict_is_json_shaped(self):
        import json

        registry = MetricsRegistry()
        registry.counter("repro_queries_total").inc(2)
        registry.histogram("repro_latency_seconds").observe(0.01)
        json.dumps(registry.as_dict())  # must not raise
