"""Sampling profiler: lifecycle, tagging, aggregation, pause/resume."""

import threading
import time

import pytest

from repro.observability import SamplingProfiler, Tracer


def spin(seconds: float) -> None:
    """Busy-work the sampler can catch (sleep parks the thread off-stack)."""
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(50))
    return total


def make_profiler(**kwargs) -> SamplingProfiler:
    kwargs.setdefault("backend_probe", lambda: None)
    return SamplingProfiler(0.001, **kwargs)


class TestLifecycle:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="interval"):
            SamplingProfiler(0.0)

    def test_start_stop_and_sample_counts(self):
        profiler = make_profiler()
        profiler.start()
        assert profiler.running and profiler.sampling
        spin(0.05)
        profiler.stop()
        assert not profiler.running
        assert profiler.samples > 0
        assert profiler.top_offenders(5)

    def test_start_is_idempotent(self):
        profiler = make_profiler()
        profiler.start()
        thread = profiler._thread
        profiler.start()
        assert profiler._thread is thread
        profiler.stop()

    def test_pause_gates_sampling_without_stopping(self):
        profiler = make_profiler()
        profiler.start()
        spin(0.03)
        profiler.pause()
        assert profiler.running and not profiler.sampling
        time.sleep(0.02)  # let any in-flight sample land
        paused_at = profiler.samples
        spin(0.05)
        assert profiler.samples == paused_at
        profiler.resume()
        spin(0.05)
        profiler.stop()
        assert profiler.samples > paused_at

    def test_reset_drops_aggregates(self):
        profiler = make_profiler()
        profiler.start()
        spin(0.03)
        profiler.pause()
        time.sleep(0.02)
        assert profiler.samples > 0
        profiler.reset()
        assert profiler.samples == 0
        assert profiler.top_offenders(5) == []
        profiler.stop()


class TestTagging:
    def test_samples_carry_trace_and_span(self):
        tracer = Tracer()
        profiler = make_profiler(tracer=tracer)
        profiler.start()
        with tracer.span("serving_quantum") as span:
            spin(0.08)
        profiler.stop()
        traced = profiler.recent_traced_samples()
        assert traced, "no sample landed inside the open span"
        assert traced[0]["trace"] == span.trace_id
        assert traced[0]["span"] == "serving_quantum"
        breakdown = profiler.span_breakdown()
        assert any(row["span"] == "serving_quantum" for row in breakdown)

    def test_samples_carry_the_backend_probe(self):
        backend = [None]
        profiler = make_profiler(backend_probe=lambda: backend[0])
        profiler.start()
        backend[0] = "numpy"
        spin(0.05)
        backend[0] = None
        spin(0.02)
        profiler.stop()
        shares = profiler.backend_shares()
        assert "numpy" in shares
        assert shares["numpy"] > 0
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_samples_target_the_requested_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=lambda: stop.wait(2.0) or None)
        worker.start()
        profiler = make_profiler()
        profiler.start(target_ident=worker.ident)
        spin(0.05)  # the *calling* thread burns; the target idles in wait()
        profiler.pause()
        time.sleep(0.02)
        stop.set()
        worker.join()
        profiler.stop()
        spinning = [
            row for row in profiler.top_offenders(20) if "spin" in row["frame"]
        ]
        assert not spinning, "sampler followed the wrong thread"


class TestReport:
    def test_report_is_plain_data(self):
        import json

        tracer = Tracer()
        profiler = make_profiler(tracer=tracer)
        profiler.start()
        with tracer.span("request"):
            spin(0.05)
        profiler.stop()
        report = profiler.report(top=3)
        json.dumps(report)
        assert report["samples"] == profiler.samples
        assert len(report["top_offenders"]) <= 3
        assert report["interval_seconds"] == profiler.interval
        total_share = sum(row["share"] for row in report["span_breakdown"])
        assert total_share == pytest.approx(1.0)

    def test_shares_sum_to_one(self):
        profiler = make_profiler()
        profiler.start()
        spin(0.05)
        profiler.stop()
        assert sum(profiler.backend_shares().values()) == pytest.approx(1.0)
