"""Tracer: span parenting, trace identity, remote spans, toggling, bounding."""

import pytest

from repro.observability import NULL_SPAN, TraceContext, Tracer


class TestSpanParenting:
    def test_nested_spans_share_one_trace_and_parent_correctly(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        [trace] = tracer.recent(1)
        assert trace.trace_id == root.trace_id == child.trace_id == grandchild.trace_id
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert trace.span_names() == ["root", "child", "grandchild"]
        assert trace.children_of(root) == [child]
        assert trace.children_of(child) == [grandchild]

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        [trace] = tracer.recent(1)
        assert [span.name for span in trace.children_of(root)] == ["first", "second"]

    def test_consecutive_roots_get_distinct_trace_ids(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        second, first = tracer.recent(2)
        assert first.trace_id != second.trace_id
        assert tracer.traces_finished == 2

    def test_durations_are_positive_and_nested_within_root(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        [trace] = tracer.recent(1)
        root, child = trace.spans
        assert 0 < child.duration <= root.duration
        assert trace.duration == root.duration


class TestRemoteAndAttachedSpans:
    def test_attach_span_parents_under_current(self):
        tracer = Tracer()
        with tracer.span("evaluate") as parent:
            attached = tracer.attach_span("kernel", 0.25, fragment=3)
        [trace] = tracer.recent(1)
        assert attached.parent_id == parent.span_id
        assert attached.duration == 0.25
        assert attached.attributes["fragment"] == 3
        assert not attached.remote
        assert trace.find("kernel") == [attached]

    def test_remote_span_under_explicit_parent(self):
        tracer = Tracer()
        with tracer.span("evaluate"):
            worker = tracer.remote_span("worker_evaluate", 0.5, worker=1)
            kernel = tracer.remote_span("kernel", 0.2, parent=worker, worker=1)
        assert worker.remote and kernel.remote
        assert kernel.parent_id == worker.span_id
        [trace] = tracer.recent(1)
        assert trace.children_of(worker) == [kernel]

    def test_attach_outside_any_trace_returns_none(self):
        tracer = Tracer()
        assert tracer.attach_span("kernel", 0.1) is None
        assert tracer.traces_finished == 0


class TestToggling:
    def test_disabled_tracer_yields_null_span_and_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("root") as span:
            span.set("key", "value")  # the null span absorbs attributes
            assert span is NULL_SPAN
        assert tracer.traces_finished == 0
        assert tracer.recent() == []

    def test_enable_disable_round_trip(self):
        tracer = Tracer()
        assert tracer.enabled
        tracer.disable()
        with tracer.span("off"):
            pass
        tracer.enable()
        with tracer.span("on"):
            pass
        assert tracer.traces_finished == 1
        assert tracer.recent(1)[0].root_name == "on"

    def test_current_trace_id_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current_trace_id is None
        with tracer.span("root") as root:
            assert tracer.current_trace_id == root.trace_id
            assert tracer.current_span is root
        assert tracer.current_trace_id is None


class TestBoundedRing:
    def test_oldest_traces_are_evicted(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            with tracer.span(f"call_{index}"):
                pass
        retained = tracer.recent(10)
        assert [trace.root_name for trace in retained] == [
            "call_4",
            "call_3",
            "call_2",
        ]
        assert tracer.traces_finished == 5
        assert tracer.traces_dropped == 2

    def test_find_by_trace_id(self):
        tracer = Tracer()
        with tracer.span("wanted") as span:
            pass
        assert tracer.find(span.trace_id).root_name == "wanted"
        assert tracer.find("no-such-trace") is None

    def test_clear_drops_retained_traces(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert tracer.clear() == 1
        assert tracer.recent() == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestTraceContext:
    def test_traceparent_round_trip(self):
        context = TraceContext(trace_id="ab" * 16, parent_span_id="cd" * 8)
        parsed = TraceContext.from_traceparent(context.to_traceparent())
        assert parsed == context

    def test_fresh_context_renders_zero_parent(self):
        header = TraceContext(trace_id="ab" * 16).to_traceparent()
        assert header == f"00-{'ab' * 16}-{'0' * 16}-01"
        # An all-zero parent span id is invalid per W3C; parsing drops it.
        assert TraceContext.from_traceparent(header) is None

    def test_local_int_parent_renders_as_16_hex(self):
        header = TraceContext(trace_id="ab" * 16, parent_span_id=255).to_traceparent()
        assert header.split("-")[2] == f"{255:016x}"

    def test_malformed_headers_parse_to_none(self):
        for bad in (
            None,
            42,
            "",
            "not-a-traceparent",
            "00-short-0123456789abcdef-01",
            f"00-{'g' * 32}-{'1' * 16}-01",  # non-hex trace id
            f"ff-{'a' * 32}-{'1' * 16}-01",  # forbidden version
            f"00-{'0' * 32}-{'1' * 16}-01",  # all-zero trace id
        ):
            assert TraceContext.from_traceparent(bad) is None

    def test_minted_trace_ids_are_valid_w3c_ids(self):
        tracer = Tracer()
        trace_id = tracer.new_trace_id()
        assert len(trace_id) == 32
        assert set(trace_id) <= set("0123456789abcdef")
        assert tracer.new_trace_id() != trace_id

    def test_as_tuple_is_plain_data(self):
        context = TraceContext(trace_id="ab" * 16, parent_span_id=7)
        assert context.as_tuple() == ("ab" * 16, 7)


class TestRequestSpanPropagation:
    def test_request_span_adopts_the_context(self):
        tracer = Tracer()
        context = TraceContext(trace_id="ab" * 16, parent_span_id="cd" * 8)
        with tracer.request_span("request", context=context) as root:
            assert root.trace_id == context.trace_id
            assert root.parent_id == context.parent_span_id
        assert tracer.recent(1)[0].trace_id == context.trace_id

    def test_nested_request_span_ignores_the_context(self):
        tracer = Tracer()
        foreign = TraceContext(trace_id="ab" * 16)
        with tracer.span("outer") as outer:
            with tracer.request_span("inner", context=foreign) as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id

    def test_current_context_points_under_the_innermost_span(self):
        tracer = Tracer()
        assert tracer.current_context() is None
        with tracer.span("root") as root:
            context = tracer.current_context()
            assert context.trace_id == root.trace_id
            assert context.parent_span_id == root.span_id

    def test_segments_sharing_a_context_assemble_into_one_trace(self):
        # The serving shape: the open segment, two quanta, and a resumed
        # continuation each file their own Trace record under one trace id;
        # assemble() merges them with the quanta parented under the opener.
        tracer = Tracer()
        context = tracer.new_context()
        with tracer.request_span("request", context=context):
            quantum_context = tracer.current_context()
        for _ in range(2):
            with tracer.request_span("serving_quantum", context=quantum_context):
                tracer.attach_span("kernel", 0.01)
        merged = tracer.assemble(context.trace_id)
        assert merged.trace_id == context.trace_id
        assert merged.root_name == "request"
        assert merged.span_names() == [
            "request",
            "serving_quantum",
            "kernel",
            "serving_quantum",
            "kernel",
        ]
        request_span = merged.find("request")[0]
        quanta = merged.find("serving_quantum")
        assert all(span.parent_id == request_span.span_id for span in quanta)
        # Suspension gaps are excluded: only the request root is top-level.
        assert merged.duration == request_span.duration

    def test_assemble_unknown_trace_returns_none(self):
        assert Tracer().assemble("ab" * 16) is None

    def test_wire_parent_marks_top_level(self):
        tracer = Tracer()
        context = TraceContext(trace_id="ab" * 16, parent_span_id="cd" * 8)
        with tracer.request_span("request", context=context):
            pass
        merged = tracer.assemble(context.trace_id)
        # The client's 16-hex span id matches no local span, so the segment
        # root stays top-level rather than dangling.
        assert merged.root_name == "request"

    def test_disabled_tracer_still_mints_contexts(self):
        tracer = Tracer(enabled=False)
        context = tracer.new_context()
        assert len(context.trace_id) == 32
        with tracer.request_span("request", context=context) as span:
            assert span is NULL_SPAN
        assert tracer.assemble(context.trace_id) is None


class TestSerialization:
    def test_trace_as_dict_round_trips_span_fields(self):
        import json

        tracer = Tracer()
        with tracer.span("root", queries=4):
            tracer.remote_span("kernel", 0.1, worker=0, fragment=1)
        payload = tracer.recent(1)[0].as_dict()
        json.dumps(payload)  # plain data
        names = [span["name"] for span in payload["spans"]]
        assert names == ["root", "kernel"]
        kernel = payload["spans"][1]
        assert kernel["remote"] is True
        assert kernel["attributes"] == {"worker": 0, "fragment": 1}
