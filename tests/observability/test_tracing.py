"""Tracer: span parenting, trace identity, remote spans, toggling, bounding."""

import pytest

from repro.observability import NULL_SPAN, Tracer


class TestSpanParenting:
    def test_nested_spans_share_one_trace_and_parent_correctly(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        [trace] = tracer.recent(1)
        assert trace.trace_id == root.trace_id == child.trace_id == grandchild.trace_id
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert trace.span_names() == ["root", "child", "grandchild"]
        assert trace.children_of(root) == [child]
        assert trace.children_of(child) == [grandchild]

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        [trace] = tracer.recent(1)
        assert [span.name for span in trace.children_of(root)] == ["first", "second"]

    def test_consecutive_roots_get_distinct_trace_ids(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        second, first = tracer.recent(2)
        assert first.trace_id != second.trace_id
        assert tracer.traces_finished == 2

    def test_durations_are_positive_and_nested_within_root(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        [trace] = tracer.recent(1)
        root, child = trace.spans
        assert 0 < child.duration <= root.duration
        assert trace.duration == root.duration


class TestRemoteAndAttachedSpans:
    def test_attach_span_parents_under_current(self):
        tracer = Tracer()
        with tracer.span("evaluate") as parent:
            attached = tracer.attach_span("kernel", 0.25, fragment=3)
        [trace] = tracer.recent(1)
        assert attached.parent_id == parent.span_id
        assert attached.duration == 0.25
        assert attached.attributes["fragment"] == 3
        assert not attached.remote
        assert trace.find("kernel") == [attached]

    def test_remote_span_under_explicit_parent(self):
        tracer = Tracer()
        with tracer.span("evaluate"):
            worker = tracer.remote_span("worker_evaluate", 0.5, worker=1)
            kernel = tracer.remote_span("kernel", 0.2, parent=worker, worker=1)
        assert worker.remote and kernel.remote
        assert kernel.parent_id == worker.span_id
        [trace] = tracer.recent(1)
        assert trace.children_of(worker) == [kernel]

    def test_attach_outside_any_trace_returns_none(self):
        tracer = Tracer()
        assert tracer.attach_span("kernel", 0.1) is None
        assert tracer.traces_finished == 0


class TestToggling:
    def test_disabled_tracer_yields_null_span_and_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("root") as span:
            span.set("key", "value")  # the null span absorbs attributes
            assert span is NULL_SPAN
        assert tracer.traces_finished == 0
        assert tracer.recent() == []

    def test_enable_disable_round_trip(self):
        tracer = Tracer()
        assert tracer.enabled
        tracer.disable()
        with tracer.span("off"):
            pass
        tracer.enable()
        with tracer.span("on"):
            pass
        assert tracer.traces_finished == 1
        assert tracer.recent(1)[0].root_name == "on"

    def test_current_trace_id_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current_trace_id is None
        with tracer.span("root") as root:
            assert tracer.current_trace_id == root.trace_id
            assert tracer.current_span is root
        assert tracer.current_trace_id is None


class TestBoundedRing:
    def test_oldest_traces_are_evicted(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            with tracer.span(f"call_{index}"):
                pass
        retained = tracer.recent(10)
        assert [trace.root_name for trace in retained] == [
            "call_4",
            "call_3",
            "call_2",
        ]
        assert tracer.traces_finished == 5
        assert tracer.traces_dropped == 2

    def test_find_by_trace_id(self):
        tracer = Tracer()
        with tracer.span("wanted") as span:
            pass
        assert tracer.find(span.trace_id).root_name == "wanted"
        assert tracer.find("no-such-trace") is None

    def test_clear_drops_retained_traces(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert tracer.clear() == 1
        assert tracer.recent() == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestSerialization:
    def test_trace_as_dict_round_trips_span_fields(self):
        import json

        tracer = Tracer()
        with tracer.span("root", queries=4):
            tracer.remote_span("kernel", 0.1, worker=0, fragment=1)
        payload = tracer.recent(1)[0].as_dict()
        json.dumps(payload)  # plain data
        names = [span["name"] for span in payload["spans"]]
        assert names == ["root", "kernel"]
        kernel = payload["spans"][1]
        assert kernel["remote"] is True
        assert kernel["attributes"] == {"worker": 0, "fragment": 1}
