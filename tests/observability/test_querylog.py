"""Query log: bounding, eviction, the slow side car, workload aggregations."""

import pytest

from repro.observability import QueryLog, QueryLogEntry


def push(log, source, target, **fields):
    """Record one entry with convenient defaults."""
    entry = QueryLogEntry(source, target, "shortest_path", **fields)
    log.record(entry)
    return entry


class TestBoundingAndEviction:
    def test_capacity_bounds_the_window_oldest_first(self):
        log = QueryLog(capacity=3)
        for index in range(5):
            push(log, index, index + 1)
        assert len(log) == 3
        assert [entry.source for entry in log.entries()] == [2, 3, 4]
        assert log.recorded == 5  # the counter keeps the total

    def test_recent_returns_newest_first(self):
        log = QueryLog(capacity=10)
        for index in range(4):
            push(log, index, index + 1)
        assert [entry.source for entry in log.recent(2)] == [3, 2]

    def test_zero_capacity_disables_recording(self):
        log = QueryLog(capacity=0)
        push(log, 1, 2)
        assert len(log) == 0
        assert log.recorded == 0
        assert not log.enabled
        log.enable()  # a no-op: there is no window to record into
        assert not log.enabled

    def test_negative_capacity_raises(self):
        with pytest.raises(ValueError):
            QueryLog(capacity=-1)

    def test_clear_drops_entries_but_keeps_totals(self):
        log = QueryLog()
        push(log, 1, 2)
        push(log, 2, 3)
        assert log.clear() == 2
        assert len(log) == 0
        assert log.recorded == 2

    def test_disable_enable_toggle(self):
        log = QueryLog()
        log.disable()
        push(log, 1, 2)
        assert log.recorded == 0
        log.enable()
        push(log, 1, 2)
        assert log.recorded == 1


class TestSlowQueries:
    def test_slow_entries_survive_fast_traffic(self):
        log = QueryLog(capacity=2, slow_threshold=0.1, slow_capacity=10)
        push(log, 0, 1, latency=0.5)
        for index in range(10):  # a burst of fast queries rolls the window
            push(log, index, index + 1, latency=0.001)
        assert len(log) == 2
        slowest = log.slowest(1)
        assert slowest[0].latency == 0.5  # retained by the side car
        assert log.slow_count == 1

    def test_slowest_falls_back_to_ranking_the_window(self):
        log = QueryLog(slow_threshold=10.0)  # nothing crosses the threshold
        push(log, 0, 1, latency=0.003)
        push(log, 1, 2, latency=0.009)
        push(log, 2, 3, latency=0.001)
        assert [entry.latency for entry in log.slowest(2)] == [0.009, 0.003]

    def test_threshold_is_inclusive(self):
        log = QueryLog(slow_threshold=0.1)
        push(log, 0, 1, latency=0.1)
        assert log.slow_count == 1


class TestWorkloadSignals:
    def test_fragment_frequencies_count_cached_answers_too(self):
        log = QueryLog()
        push(log, 0, 1, fragments=(0, 2), cached=False)
        push(log, 1, 2, fragments=(2,), cached=True)
        assert log.fragment_frequencies() == {0: 1, 2: 2}

    def test_co_access_counts_order_pairs(self):
        log = QueryLog()
        push(log, 0, 1, fragments=(2, 0, 1))
        push(log, 1, 2, fragments=(1, 0))
        assert log.co_access_counts() == {(0, 1): 2, (0, 2): 1, (1, 2): 1}

    def test_query_skew_is_max_over_mean(self):
        log = QueryLog()
        push(log, 0, 1, fragments=(0,))
        push(log, 1, 2, fragments=(0,))
        push(log, 2, 3, fragments=(0, 1))
        # touches: fragment 0 -> 3, fragment 1 -> 1; mean 2, max 3.
        assert log.query_skew() == pytest.approx(1.5)
        assert QueryLog().query_skew() == 0.0

    def test_cached_share_and_error_count(self):
        log = QueryLog()
        push(log, 0, 1, cached=True)
        push(log, 1, 2, cached=False)
        push(log, 2, 3, error="no plan")
        assert log.cached_share() == pytest.approx(1 / 3)
        assert log.error_count() == 1
        assert QueryLog().cached_share() == 0.0


class TestEntryRoundTrip:
    def test_push_and_record_agree(self):
        via_record = QueryLog()
        via_push = QueryLog()
        entry = QueryLogEntry(
            "a",
            "b",
            "shortest_path",
            fragments=(1, 2),
            latency=0.02,
            cached=True,
            batched=True,
            trace_id="t-1",
            error=None,
            timestamp=123.0,
        )
        via_record.record(entry)
        via_push.push(
            "a", "b", "shortest_path", (1, 2), 0.02, True, True, "t-1", None, 123.0
        )
        assert via_record.entries()[0].as_dict() == via_push.entries()[0].as_dict()

    def test_as_dicts_is_json_shaped(self):
        import json

        log = QueryLog()
        push(log, 0, 1, fragments=(0,), latency=0.01, trace_id="t-1")
        [payload] = log.as_dicts()
        json.dumps(payload)
        assert payload["source"] == 0
        assert payload["fragments"] == [0]
        assert payload["trace_id"] == "t-1"
        assert payload["timestamp"] > 0

    def test_entry_gets_a_timestamp_by_default(self):
        entry = QueryLogEntry("a", "b", "shortest_path")
        assert entry.timestamp > 0
