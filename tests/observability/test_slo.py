"""SLO monitor: definitions, windowed burn rates, multi-window alerting."""

import pytest

from repro.observability import (
    BurnWindow,
    MetricsRegistry,
    SLODefinition,
    SLOMonitor,
    default_slos,
)


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def availability_slo(objective: float = 0.999) -> SLODefinition:
    return SLODefinition(
        name="availability",
        objective=objective,
        counter="requests_total",
        bad_label="outcome",
        bad_values=("error",),
    )


def latency_slo(threshold: float = 0.1, objective: float = 0.99) -> SLODefinition:
    return SLODefinition(
        name="latency",
        objective=objective,
        histogram="latency_seconds",
        threshold=threshold,
    )


class TestSLODefinition:
    def test_objective_must_be_a_fraction(self):
        with pytest.raises(ValueError, match="objective"):
            availability_slo(objective=1.0)
        with pytest.raises(ValueError, match="objective"):
            availability_slo(objective=0.0)

    def test_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            SLODefinition(name="both", objective=0.99)
        with pytest.raises(ValueError, match="exactly one"):
            SLODefinition(
                name="both",
                objective=0.99,
                histogram="h",
                threshold=0.1,
                counter="c",
                bad_label="outcome",
                bad_values=("error",),
            )

    def test_histogram_needs_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            SLODefinition(name="lat", objective=0.99, histogram="h")

    def test_counter_needs_bad_predicate(self):
        with pytest.raises(ValueError, match="bad_label"):
            SLODefinition(name="avail", objective=0.99, counter="c")

    def test_budget_is_the_complement(self):
        assert availability_slo(objective=0.999).budget == pytest.approx(0.001)


class TestBurnRateAlerting:
    def _monitor(self, registry, slo, clock):
        # Tight windows so tests replay realistic burn in a few samples.
        windows = (
            BurnWindow(long_seconds=600.0, short_seconds=60.0, factor=10.0, severity="page"),
            BurnWindow(long_seconds=3600.0, short_seconds=300.0, factor=2.0, severity="ticket"),
        )
        return SLOMonitor(registry, (slo,), windows=windows, clock=clock)

    def test_healthy_workload_stays_ok(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        requests = registry.counter("requests_total", "requests", labelnames=("outcome",))
        monitor = self._monitor(registry, availability_slo(), clock)
        for _ in range(10):
            requests.inc(100, outcome="ok")
            clock.advance(30.0)
            monitor.sample()
        statuses = monitor.evaluate()
        status = statuses["availability"]
        assert status.severity == "ok"
        assert not status.alerting
        assert status.error_rate == 0.0
        assert monitor.worst_severity(statuses) == "ok"

    def test_fast_burn_pages_and_recovery_clears(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        requests = registry.counter("requests_total", "requests", labelnames=("outcome",))
        monitor = self._monitor(registry, availability_slo(), clock)
        # 5% errors against a 0.1% budget = 50x burn: over both windows.
        for _ in range(10):
            requests.inc(95, outcome="ok")
            requests.inc(5, outcome="error")
            clock.advance(30.0)
            monitor.sample()
        assert monitor.evaluate()["availability"].severity == "page"
        # The bleeding stops; the short window clears the page quickly even
        # while the long window still remembers the bad episode.
        for _ in range(4):
            requests.inc(100, outcome="ok")
            clock.advance(30.0)
            monitor.sample()
        assert monitor.evaluate()["availability"].severity != "page"

    def test_slow_burn_tickets_without_paging(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        requests = registry.counter("requests_total", "requests", labelnames=("outcome",))
        monitor = self._monitor(registry, availability_slo(), clock)
        # 0.5% errors = 5x burn: over the 2x ticket factor, under the 10x page.
        for _ in range(20):
            requests.inc(995, outcome="ok")
            requests.inc(5, outcome="error")
            clock.advance(60.0)
            monitor.sample()
        status = monitor.evaluate()["availability"]
        assert status.severity == "ticket"
        firing = [entry for entry in status.burn if entry["firing"]]
        assert [entry["severity"] for entry in firing] == ["ticket"]

    def test_latency_slo_counts_threshold_buckets_as_good(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        latency = registry.histogram(
            "latency_seconds", "latency", buckets=(0.05, 0.1, 0.5)
        )
        monitor = self._monitor(registry, latency_slo(threshold=0.1), clock)
        for _ in range(10):
            for _ in range(7):
                latency.observe(0.01)
            latency.observe(0.08)
            latency.observe(0.3)  # the two slow observations per round
            latency.observe(0.3)
            clock.advance(30.0)
            monitor.sample()
        status = monitor.evaluate()["latency"]
        assert status.total == 100.0
        assert status.good == 80.0
        assert status.error_rate == pytest.approx(0.2)
        # 20% misses against a 1% budget = 20x burn: pages.
        assert status.severity == "page"

    def test_missing_series_count_as_no_data(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        monitor = self._monitor(registry, availability_slo(), clock)
        clock.advance(60.0)
        status = monitor.evaluate()["availability"]
        assert (status.good, status.total) == (0.0, 0.0)
        assert status.severity == "ok"

    def test_monitor_baselines_at_construction(self):
        # A monitor started against a warm registry must not inherit the
        # past as instant burn.
        clock = FakeClock()
        registry = MetricsRegistry()
        requests = registry.counter("requests_total", "requests", labelnames=("outcome",))
        requests.inc(1000, outcome="error")  # history from before the monitor
        monitor = self._monitor(registry, availability_slo(), clock)
        for _ in range(5):
            requests.inc(100, outcome="ok")
            clock.advance(30.0)
            monitor.sample()
        assert monitor.evaluate()["availability"].severity == "ok"

    def test_as_dict_is_plain_data(self):
        import json

        clock = FakeClock()
        registry = MetricsRegistry()
        registry.counter("requests_total", "requests", labelnames=("outcome",))
        monitor = self._monitor(registry, availability_slo(), clock)
        payload = monitor.as_dict()
        json.dumps(payload)
        assert payload["severity"] == "ok"
        assert [slo["name"] for slo in payload["objectives"]] == ["availability"]

    def test_capacity_floor(self):
        with pytest.raises(ValueError, match="capacity"):
            SLOMonitor(MetricsRegistry(), (availability_slo(),), capacity=1)


class TestDefaultSLOs:
    def test_defaults_name_the_serving_series(self):
        slos = {slo.name: slo for slo in default_slos()}
        assert slos["query_latency"].histogram == "repro_query_latency_seconds"
        assert slos["serving_availability"].counter == "repro_serving_requests_total"
        assert slos["serving_availability"].bad_values == ("error",)
