"""Service-level telemetry: traces across the placed pool, exporters, advisors."""

import json
import random

import pytest

from repro.fragmentation import GroundTruthFragmenter
from repro.graph import DiGraph
from repro.observability import MetricsRegistry, QueryLog
from repro.placement import RebalanceAdvisor
from repro.refragmentation import RefragmentationAdvisor
from repro.service import QueryService
from repro.service.pool import WORKER_KERNEL_HISTOGRAM, WORKER_TUPLES_COUNTER
from repro.service.stats import ServiceStatistics


def clique_line_fragmentation(blocks=3, block_size=4, seed=7):
    rng = random.Random(seed)
    graph = DiGraph()
    node_blocks = [
        list(range(index * block_size, (index + 1) * block_size))
        for index in range(blocks)
    ]
    for block in node_blocks:
        for i, a in enumerate(block):
            for b in block[i + 1:]:
                weight = rng.uniform(0.5, 3.0)
                graph.add_edge(a, b, weight)
                graph.add_edge(b, a, weight)
    for index in range(blocks - 1):
        left = node_blocks[index][-1]
        right = node_blocks[index + 1][0]
        graph.add_edge(left, right, 1.0)
        graph.add_edge(right, left, 1.0)
    return GroundTruthFragmenter([set(block) for block in node_blocks]).fragment(graph)


def cross_fragment_queries(blocks=3, block_size=4):
    """Queries whose chains traverse every fragment of the clique line."""
    return [(0, blocks * block_size - 1), (blocks * block_size - 1, 0), (1, 9), (2, 10)]


class TestTracedBatchAcrossPlacedPool:
    def test_spans_cover_cache_planning_and_every_owner_kernel(self):
        fragmentation = clique_line_fragmentation()
        queries = cross_fragment_queries()
        with QueryService(
            fragmentation, placement="round_robin", workers=3
        ) as service:
            service.query_batch(queries)
            trace = service.tracer.recent(1)[0]

            # One trace id covers the whole call, rooted at query_batch.
            assert trace.root_name == "query_batch"
            assert all(span.trace_id == trace.trace_id for span in trace.spans)
            names = trace.span_names()
            assert "cache_lookup" in names
            assert "batch_plan" in names
            assert "evaluate" in names

            # Every owner that actually ran tasks appears as a remote
            # worker_evaluate span, parenting one kernel span per task it
            # evaluated — durations timed inside the worker processes.
            ran_tasks = service._pool.last_task_workers
            assert ran_tasks, "the batch must have dispatched routed tasks"
            owners_that_ran = set(ran_tasks.values())
            worker_spans = trace.find("worker_evaluate")
            assert {
                span.attributes["worker"] for span in worker_spans
            } == owners_that_ran
            assert all(span.remote for span in worker_spans)
            kernel_spans = trace.find("kernel")
            assert len(kernel_spans) == len(ran_tasks)
            worker_span_ids = {span.span_id for span in worker_spans}
            assert all(span.parent_id in worker_span_ids for span in kernel_spans)
            by_task = {
                (span.attributes["worker"], span.attributes["fragment"])
                for span in kernel_spans
            }
            assert by_task == {
                (worker, key[0]) for key, worker in ran_tasks.items()
            }

    def test_worker_metrics_merge_into_the_service_registry(self):
        fragmentation = clique_line_fragmentation()
        with QueryService(
            fragmentation, placement="round_robin", workers=3
        ) as service:
            service.query_batch(cross_fragment_queries())
            registry = service.stats.registry
            hist = registry.get(WORKER_KERNEL_HISTOGRAM)
            assert hist is not None
            total_kernels = sum(
                series["count"] for series in hist.series_dicts()
            )
            assert total_kernels == len(service._pool.last_task_workers)
            tuples = registry.get(WORKER_TUPLES_COUNTER)
            assert sum(tuples.series().values()) > 0


class TestSingleQueryTracing:
    def test_query_trace_covers_plan_evaluate_and_kernels(self):
        service = QueryService(clique_line_fragmentation())
        service.query(0, 11)
        trace = service.tracer.recent(1)[0]
        assert trace.root_name == "query"
        names = trace.span_names()
        assert "plan" in names
        assert "evaluate" in names
        assert "kernel" in names
        # In-process kernels aggregate per fragment, durations attached from
        # the evaluator's own timer.
        for span in trace.find("kernel"):
            assert span.duration >= 0
            assert "fragment" in span.attributes

    def test_query_log_links_to_traces(self):
        service = QueryService(clique_line_fragmentation())
        service.query(0, 11)
        [entry] = service.query_log.entries()
        assert entry.trace_id == service.tracer.recent(1)[0].trace_id
        assert entry.fragments  # the chain's fragments were attributed
        assert not entry.cached
        service.query(0, 11)
        assert service.query_log.entries()[-1].cached

    def test_tracing_off_service_produces_no_traces(self):
        service = QueryService(clique_line_fragmentation(), tracing=False)
        service.query(0, 11)
        assert service.tracer.traces_finished == 0
        assert service.query(0, 11).value is not None  # still answers


class TestExporters:
    def test_metrics_json_has_all_sections(self):
        service = QueryService(clique_line_fragmentation())
        service.query(0, 11)
        payload = service.metrics()
        json.dumps(payload, default=str)
        assert set(payload) >= {
            "stats",
            "metrics",
            "latency_quantiles",
            "tracing",
            "query_log",
        }
        assert payload["stats"]["queries"] == 1
        quantiles = payload["latency_quantiles"]["evaluated"]
        assert quantiles["p50"] > 0
        assert quantiles["p50"] <= quantiles["p90"] <= quantiles["p99"]

    def test_metrics_prometheus_parses_and_counts_queries(self):
        service = QueryService(clique_line_fragmentation())
        service.query(0, 11)
        service.query(0, 11)
        text = service.metrics("prometheus")
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name
            float(value)
        assert "repro_queries_total 2" in text
        assert "repro_query_latency_seconds_bucket" in text

    def test_metrics_rejects_unknown_format(self):
        service = QueryService(clique_line_fragmentation())
        with pytest.raises(ValueError):
            service.metrics("xml")


class TestAdvisorsConsumeQueryLog:
    def test_rebalance_advisor_accepts_query_log(self):
        fragmentation = clique_line_fragmentation()
        with QueryService(
            fragmentation, placement="round_robin", workers=3
        ) as service:
            for _ in range(3):
                service.cache.clear()
                service.query_batch(cross_fragment_queries())
            advisor = RebalanceAdvisor()
            dispatch = dict(service.stats.per_site_load)
            plain = advisor.fragment_loads(service.placement_plan, dispatch)
            informed = advisor.fragment_loads(
                service.placement_plan, dispatch, query_log=service.query_log
            )
            # The workload-informed load model must at least not lose signal.
            assert sum(informed.values()) >= sum(plain.values())
            skew = advisor.skew(
                service.placement_plan, dispatch, query_log=service.query_log
            )
            assert skew >= 0.0

    def test_refragmentation_advisor_accepts_query_log(self):
        fragmentation = clique_line_fragmentation()
        service = QueryService(fragmentation)
        service.query(0, 11)
        advisor = RefragmentationAdvisor(min_query_sample=1)
        assessment = advisor.assess(fragmentation, query_log=service.query_log)
        assert assessment is not None

    def test_skewed_workload_is_visible_to_advisors(self):
        service = QueryService(clique_line_fragmentation())
        for _ in range(5):
            service.cache.clear()
            service.query(0, 3)  # stays inside fragment 0
        assert service.query_log.query_skew() >= 1.0
        assert 0 in service.query_log.fragment_frequencies()


class TestStatisticsCompatibilityView:
    def test_reset_zeroes_every_counter_and_histogram(self):
        service = QueryService(clique_line_fragmentation())
        service.query(0, 11)
        assert service.stats.queries == 1
        service.stats.reset()
        assert service.stats.queries == 0
        assert service.stats.latency_quantiles()["p99"] == 0.0
        service.query(0, 5)
        assert service.stats.queries == 1  # counting resumes

    def test_as_dict_from_dict_round_trip(self):
        service = QueryService(clique_line_fragmentation())
        for pair in ((0, 11), (1, 9), (0, 11)):
            service.query(*pair)
        snapshot = service.stats.as_dict()
        restored = ServiceStatistics.from_dict(snapshot)
        again = restored.as_dict()
        for key, value in snapshot.items():
            assert again[key] == pytest.approx(value), key

    def test_from_dict_coerces_json_string_keys(self):
        service = QueryService(clique_line_fragmentation())
        service.query(0, 11)
        snapshot = json.loads(json.dumps(service.stats.as_dict()))
        restored = ServiceStatistics.from_dict(snapshot)
        assert dict(restored.per_site_load) == dict(service.stats.per_site_load)

    def test_cached_and_evaluated_latency_series_are_split(self):
        service = QueryService(clique_line_fragmentation())
        service.query(0, 11)  # evaluated
        service.query(0, 11)  # cached
        stats = service.stats
        assert stats.cache_hits == 1 and stats.cache_misses == 1
        assert stats.evaluated_latency > 0
        assert stats.cached_latency > 0
        assert stats.average_evaluated_latency() > stats.average_cached_latency()
        assert stats.latency_quantiles("evaluated")["p50"] > 0
        assert stats.latency_quantiles("cached")["p50"] > 0

    def test_stats_share_the_service_registry(self):
        service = QueryService(clique_line_fragmentation())
        service.query(0, 11)
        assert isinstance(service.stats.registry, MetricsRegistry)
        counter = service.stats.registry.get("repro_queries_total")
        assert counter.value() == 1


class TestQueryLogConstructionOptions:
    def test_query_log_size_zero_disables_logging(self):
        service = QueryService(clique_line_fragmentation(), query_log_size=0)
        service.query(0, 11)
        assert service.query_log.recorded == 0
        assert isinstance(service.query_log, QueryLog)

    def test_slow_query_threshold_is_wired_through(self):
        service = QueryService(
            clique_line_fragmentation(), slow_query_threshold=0.0
        )
        service.query(0, 11)
        assert service.query_log.slow_count == 1


class TestKernelSelectionTelemetry:
    def test_selection_counters_and_span_backends_in_process(self):
        from repro.closure import (
            KERNEL_BACKENDS,
            KERNEL_SELECTIONS_COUNTER,
            reachability_semiring,
        )

        fragmentation = clique_line_fragmentation(blocks=3, block_size=4)
        with QueryService(fragmentation, semiring=reachability_semiring()) as service:
            service.query_batch(cross_fragment_queries())
            payload = service.metrics("json")["metrics"]
            series = payload[KERNEL_SELECTIONS_COUNTER]["series"]
            assert series, "no kernel selections were recorded"
            backends = set()
            for entry in series:
                backend = entry["labels"]["backend"]
                assert backend in KERNEL_BACKENDS
                assert entry["labels"]["context"] in (
                    "local_query", "complementary", "closure", "seminaive"
                )
                assert entry["value"] > 0
                backends.add(backend)
            trace = service.tracer.recent(1)[0]
            kernel_spans = [s for s in trace.spans if s.name == "kernel"]
            assert kernel_spans
            for span in kernel_spans:
                assert span.attributes.get("backend") in backends

    def test_selection_counters_flow_back_from_placed_workers(self):
        from repro.closure import KERNEL_SELECTIONS_COUNTER, reachability_semiring

        fragmentation = clique_line_fragmentation(blocks=3, block_size=4)
        with QueryService(
            fragmentation,
            semiring=reachability_semiring(),
            placement="round_robin",
            workers=3,
        ) as service:
            service.query_batch(cross_fragment_queries())
            payload = service.metrics("json")["metrics"]
            series = payload[KERNEL_SELECTIONS_COUNTER]["series"]
            assert any(
                entry["labels"]["context"] == "local_query" and entry["value"] > 0
                for entry in series
            )

    def test_prometheus_export_includes_selections(self):
        from repro.closure import KERNEL_SELECTIONS_COUNTER, reachability_semiring

        fragmentation = clique_line_fragmentation(blocks=2, block_size=4)
        with QueryService(fragmentation, semiring=reachability_semiring()) as service:
            service.query_batch([(0, 7)])
            text = service.metrics("prometheus")
            assert KERNEL_SELECTIONS_COUNTER in text
