"""Randomized interleavings of updates, queries and live refragments.

The oracle is a from-scratch rebuild: after any prefix of the operation
stream, a service that absorbed everything in place (incremental updates +
scoped refragments) must answer exactly like a fresh engine built over the
current graph and layout — for both standard semirings.  A second oracle is
the replay path: a replica restoring a pre-stream snapshot and replaying the
log (refragments included) must converge on the same answers.
"""

import random

import pytest

from repro.closure import reachability_semiring, shortest_path_semiring
from repro.disconnection import DisconnectionSetEngine
from repro.fragmentation import GroundTruthFragmenter
from repro.graph import DiGraph
from repro.service import QueryService


def seeded_graph(rng, blocks=3, size=4):
    graph = DiGraph()
    node_blocks = [list(range(i * size, (i + 1) * size)) for i in range(blocks)]
    for block in node_blocks:
        for i, a in enumerate(block):
            for b in block[i + 1:]:
                weight = rng.uniform(0.5, 3.0)
                graph.add_edge(a, b, weight)
                graph.add_edge(b, a, weight)
    for i in range(blocks - 1):
        left, right = node_blocks[i][-1], node_blocks[i + 1][0]
        weight = rng.uniform(0.5, 3.0)
        graph.add_edge(left, right, weight)
        graph.add_edge(right, left, weight)
    return graph, node_blocks


def random_blocks(rng, nodes, count):
    """A random node partition with every block nonempty."""
    shuffled = list(nodes)
    rng.shuffle(shuffled)
    cuts = sorted(rng.sample(range(1, len(shuffled)), count - 1))
    blocks = []
    start = 0
    for cut in cuts + [len(shuffled)]:
        blocks.append(set(shuffled[start:cut]))
        start = cut
    return blocks


def assert_matches_fresh(service, semiring, probes):
    fragmentation = service.database.fragmentation()
    fresh = DisconnectionSetEngine(fragmentation, semiring=semiring)
    for source, target in probes:
        got = service.query(source, target).value
        want = fresh.query(source, target).value
        if isinstance(want, float) and isinstance(got, float):
            assert got == pytest.approx(want), (source, target)
        else:
            assert got == want, (source, target)


@pytest.mark.parametrize("seed", [3, 17, 52])
@pytest.mark.parametrize(
    "make_semiring", [shortest_path_semiring, reachability_semiring]
)
def test_interleaved_stream_matches_from_scratch_rebuilds(seed, make_semiring):
    rng = random.Random(seed)
    semiring = make_semiring()
    graph, blocks = seeded_graph(rng)
    nodes = sorted(graph.nodes())
    service = QueryService(
        GroundTruthFragmenter([set(b) for b in blocks]).fragment(graph),
        semiring=semiring,
    )
    refragments_applied = 0
    for step in range(40):
        op = rng.random()
        if op < 0.45:
            source, target = rng.sample(nodes, 2)
            service.query(source, target)
        elif op < 0.75:
            source, target = rng.sample(nodes, 2)
            if service.database.graph.has_edge(source, target) and rng.random() < 0.4:
                try:
                    service.update_edge(source, target, delete=True)
                except Exception:
                    pass  # deleting the last edge of a fragment may fall back
            else:
                service.update_edge(source, target, rng.uniform(0.5, 3.0))
        else:
            count = rng.choice([2, 3, 4])
            service.refragment(
                GroundTruthFragmenter(random_blocks(rng, nodes, count))
            )
            refragments_applied += 1
        if step % 10 == 9:
            probes = [tuple(rng.sample(nodes, 2)) for _ in range(6)]
            assert_matches_fresh(service, semiring, probes)
    assert refragments_applied > 0
    assert service.stats.refragments == refragments_applied
    probes = [tuple(rng.sample(nodes, 2)) for _ in range(10)]
    assert_matches_fresh(service, semiring, probes)


@pytest.mark.parametrize("seed", [7, 23])
def test_replay_converges_across_interleaved_refragments(tmp_path, seed):
    rng = random.Random(seed)
    graph, blocks = seeded_graph(rng)
    nodes = sorted(graph.nodes())
    live = QueryService(
        GroundTruthFragmenter([set(b) for b in blocks]).fragment(graph)
    )
    live.snapshot(tmp_path / "snap")
    for _ in range(12):
        op = rng.random()
        if op < 0.6:
            source, target = rng.sample(nodes, 2)
            live.update_edge(source, target, rng.uniform(0.5, 3.0))
        else:
            count = rng.choice([2, 3])
            live.refragment(GroundTruthFragmenter(random_blocks(rng, nodes, count)))
    restored = QueryService.from_snapshot(
        tmp_path / "snap", replay_log=live.database.delta_log
    )
    assert restored.database.delta_log.last_sequence == live.database.delta_log.last_sequence
    assert [f.edges for f in restored.database.fragmentation().fragments] == [
        f.edges for f in live.database.fragmentation().fragments
    ]
    for _ in range(10):
        source, target = rng.sample(nodes, 2)
        assert restored.query(source, target).value == pytest.approx(
            live.query(source, target).value
        )
