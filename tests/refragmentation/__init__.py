"""Tests for the live refragmentation subsystem."""
