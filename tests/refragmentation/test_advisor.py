"""Tests for the refragmentation advisor's signals, triggers and advice."""

import pytest

from repro.fragmentation import (
    BondEnergyFragmenter,
    GroundTruthFragmenter,
    HashFragmenter,
    LinearFragmenter,
)
from repro.graph import DiGraph
from repro.incremental import DeltaLog, VersionVector
from repro.refragmentation import (
    RefragmentationAdvisor,
    fragmenter_for,
    measure_layout,
)


def clustered_graph(blocks=3, size=4):
    graph = DiGraph()
    node_blocks = [list(range(i * size, (i + 1) * size)) for i in range(blocks)]
    for block in node_blocks:
        for i, a in enumerate(block):
            for b in block[i + 1:]:
                graph.add_edge(a, b, 1.0)
                graph.add_edge(b, a, 1.0)
    for i in range(blocks - 1):
        left, right = node_blocks[i][-1], node_blocks[i + 1][0]
        graph.add_edge(left, right, 1.0)
        graph.add_edge(right, left, 1.0)
    return graph, node_blocks


class TestSignals:
    def test_good_layout_measures_small_borders(self):
        graph, blocks = clustered_graph()
        fragmentation = GroundTruthFragmenter([set(b) for b in blocks]).fragment(graph)
        signals = measure_layout(fragmentation)
        assert signals.fragment_count == 3
        assert signals.border_nodes == 2  # one shared node per bridge
        assert 0.0 < signals.border_share < 0.5
        assert signals.complementary_facts > 0

    def test_hash_layout_measures_worse_than_clustered(self):
        graph, blocks = clustered_graph()
        clustered = GroundTruthFragmenter([set(b) for b in blocks]).fragment(graph)
        hashed = HashFragmenter(3).fragment(graph)
        good = measure_layout(clustered)
        bad = measure_layout(hashed)
        assert bad.border_nodes > good.border_nodes
        assert bad.cross_edge_ratio > good.cross_edge_ratio

    def test_update_skew_reads_vector_and_log(self):
        graph, blocks = clustered_graph()
        fragmentation = GroundTruthFragmenter([set(b) for b in blocks]).fragment(graph)
        vector = VersionVector()
        log = DeltaLog()
        assert RefragmentationAdvisor.update_skew(fragmentation) == 0.0
        for _ in range(6):
            vector.bump(0)
        log.append("insert", dirty_fragments=(0,), incremental=True)
        skew = RefragmentationAdvisor.update_skew(
            fragmentation, version_vector=vector, delta_log=log
        )
        assert skew == pytest.approx(3.0)  # all 7 signals on 1 of 3 fragments


class TestAssess:
    def test_untriggered_on_a_healthy_layout(self):
        graph, blocks = clustered_graph()
        fragmentation = GroundTruthFragmenter([set(b) for b in blocks]).fragment(graph)
        advisor = RefragmentationAdvisor()
        advisor.observe(fragmentation)
        assessment = advisor.assess(fragmentation)
        assert not assessment.triggered
        assert assessment.reasons == []

    def test_border_growth_triggers_against_the_baseline(self):
        graph, blocks = clustered_graph()
        good = GroundTruthFragmenter([set(b) for b in blocks]).fragment(graph)
        advisor = RefragmentationAdvisor(border_growth_threshold=1.5)
        advisor.observe(good)
        eroded = HashFragmenter(3).fragment(graph)
        assessment = advisor.assess(eroded)
        assert assessment.triggered
        assert any("border nodes grew" in reason for reason in assessment.reasons)

    def test_cross_ratio_triggers_without_a_baseline(self):
        graph, _ = clustered_graph()
        eroded = HashFragmenter(3).fragment(graph)
        advisor = RefragmentationAdvisor(cross_ratio_threshold=0.5)
        assessment = advisor.assess(eroded)
        assert assessment.triggered
        assert any("cross-fragment edge ratio" in reason for reason in assessment.reasons)

    def test_update_skew_triggers(self):
        graph, blocks = clustered_graph()
        fragmentation = GroundTruthFragmenter([set(b) for b in blocks]).fragment(graph)
        vector = VersionVector()
        for _ in range(30):
            vector.bump(0)
        advisor = RefragmentationAdvisor(update_skew_threshold=2.0)
        advisor.observe(fragmentation)
        assessment = advisor.assess(fragmentation, version_vector=vector)
        assert assessment.triggered
        assert any("update skew" in reason for reason in assessment.reasons)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RefragmentationAdvisor(border_growth_threshold=0.5)


class TestRecommend:
    def test_recommends_a_measured_improvement_over_hash(self):
        graph, _ = clustered_graph()
        eroded = HashFragmenter(3).fragment(graph)
        advisor = RefragmentationAdvisor()
        advice = advisor.recommend(eroded)
        assert advice.worthwhile
        assert advice.candidate.border_nodes < advice.current.border_nodes
        redrawn = advice.fragmenter.fragment(graph)
        assert measure_layout(redrawn).border_nodes == advice.candidate.border_nodes

    def test_a_wash_is_not_worthwhile(self):
        graph, blocks = clustered_graph()
        good = GroundTruthFragmenter([set(b) for b in blocks]).fragment(graph)
        # Force the candidate to be the same layout: no improvement possible.
        advisor = RefragmentationAdvisor(
            fragmenter_factory=lambda g, n: GroundTruthFragmenter([set(b) for b in blocks])
        )
        advice = advisor.recommend(good)
        assert not advice.worthwhile

    def test_pluggable_factory_is_used(self):
        graph, _ = clustered_graph()
        eroded = HashFragmenter(3).fragment(graph)
        advisor = RefragmentationAdvisor(
            fragmenter_factory=lambda g, n: BondEnergyFragmenter(n)
        )
        advice = advisor.recommend(eroded)
        assert advice.proposed.algorithm.startswith("bond-energy")


class TestFragmenterFor:
    def test_known_names(self):
        graph, _ = clustered_graph()
        assert isinstance(fragmenter_for("bond-energy", 3), BondEnergyFragmenter)
        assert isinstance(fragmenter_for("linear", 3), LinearFragmenter)
        assert isinstance(fragmenter_for("hash", 3), HashFragmenter)
        auto = fragmenter_for("auto", 3, graph=graph)
        assert auto.fragment(graph).fragment_count() <= 3

    def test_unknown_name_and_auto_without_graph(self):
        with pytest.raises(ValueError):
            fragmenter_for("nope", 3)
        with pytest.raises(ValueError):
            fragmenter_for("auto", 3)
