"""Unit tests for layout alignment and the in-place live refragmenter."""

import pytest

from repro.closure import Semiring, shortest_path_cost
from repro.disconnection import DisconnectionSetEngine, FragmentedDatabase
from repro.disconnection.complementary import precompute_complementary_information
from repro.fragmentation import Fragmentation, GroundTruthFragmenter
from repro.graph import DiGraph
from repro.incremental.maintainer import IncrementalFallback
from repro.refragmentation import LiveRefragmenter, align_layout


def clique_line(blocks=4, size=4):
    graph = DiGraph()
    node_blocks = [list(range(i * size, (i + 1) * size)) for i in range(blocks)]
    for block in node_blocks:
        for i, a in enumerate(block):
            for b in block[i + 1:]:
                graph.add_edge(a, b, 1.0)
                graph.add_edge(b, a, 1.0)
    for i in range(blocks - 1):
        left, right = node_blocks[i][-1], node_blocks[i + 1][0]
        graph.add_edge(left, right, 1.0)
        graph.add_edge(right, left, 1.0)
    return graph, node_blocks


class TestAlignLayout:
    def test_identical_layout_keeps_every_slot(self):
        old = [{(0, 1)}, {(2, 3)}, {(4, 5)}]
        aligned = align_layout(old, [{(4, 5)}, {(0, 1)}, {(2, 3)}])
        assert aligned == old

    def test_partial_overlap_prefers_the_biggest_match(self):
        old = [{(0, 1), (1, 2), (2, 3)}, {(4, 5), (5, 6)}]
        proposed = [{(4, 5), (5, 6), (2, 3)}, {(0, 1), (1, 2)}]
        aligned = align_layout(old, proposed)
        assert aligned[0] == {(0, 1), (1, 2)}
        assert aligned[1] == {(4, 5), (5, 6), (2, 3)}

    def test_shrinking_layout_drops_trailing_ids(self):
        old = [{(0, 1)}, {(2, 3)}, {(4, 5)}]
        aligned = align_layout(old, [{(0, 1), (4, 5)}, {(2, 3)}])
        assert len(aligned) == 2
        assert aligned[0] == {(0, 1), (4, 5)}
        assert aligned[1] == {(2, 3)}

    def test_growing_layout_appends_new_ids(self):
        old = [{(0, 1), (2, 3)}]
        aligned = align_layout(old, [{(0, 1)}, {(2, 3)}])
        assert len(aligned) == 2
        assert aligned[0] == {(0, 1)}  # the bigger-overlap winner keeps slot 0
        assert aligned[1] == {(2, 3)}

    def test_every_proposed_edge_survives_alignment(self):
        old = [{(0, 1)}, {(2, 3), (3, 4)}]
        proposed = [{(3, 4)}, {(0, 1), (2, 3)}]
        aligned = align_layout(old, proposed)
        assert sorted(edge for edges in aligned for edge in edges) == sorted(
            edge for edges in proposed for edge in edges
        )


class TestLiveRefragmenter:
    def _engine(self, graph, blocks):
        fragmentation = GroundTruthFragmenter([set(b) for b in blocks]).fragment(graph)
        return DisconnectionSetEngine(fragmentation)

    def test_untouched_fragments_stay_object_identical(self):
        graph, blocks = clique_line()
        engine = self._engine(graph, blocks)
        before = {site.fragment_id: site for site in engine.catalog.sites()}
        compact_before = {fid: site.compact() for fid, site in before.items()}
        # Move one node between the last two blocks; the first two are untouched.
        new_blocks = [set(blocks[0]), set(blocks[1]), set(blocks[2]) | {12}, set(blocks[3]) - {12}]
        proposed = GroundTruthFragmenter(new_blocks).fragment(graph)
        aligned = align_layout(
            [f.edges for f in engine.catalog.fragmentation.fragments],
            [set(f.edges) for f in proposed.fragments],
        )
        result = LiveRefragmenter(engine).apply(
            Fragmentation(graph, aligned, algorithm=proposed.algorithm)
        )
        assert set(result.unchanged) == {0, 1}
        assert set(result.changed) == {2, 3}
        for fid in result.unchanged:
            assert engine.catalog.site(fid) is before[fid]
            assert engine.catalog.site(fid).compact() is compact_before[fid]
        for fid in result.changed:
            assert engine.catalog.site(fid) is not before[fid]

    def test_answers_match_a_fresh_engine_after_the_redraw(self):
        graph, blocks = clique_line()
        engine = self._engine(graph, blocks)
        new_blocks = [set(blocks[0]) | {4}, set(blocks[1]) - {4}, set(blocks[2]), set(blocks[3])]
        proposed = GroundTruthFragmenter(new_blocks).fragment(graph)
        aligned = align_layout(
            [f.edges for f in engine.catalog.fragmentation.fragments],
            [set(f.edges) for f in proposed.fragments],
        )
        new_fragmentation = Fragmentation(graph, aligned, algorithm=proposed.algorithm)
        LiveRefragmenter(engine).apply(new_fragmentation)
        fresh = DisconnectionSetEngine(new_fragmentation)
        for source, target in [(0, 15), (5, 12), (4, 1), (15, 0), (8, 13)]:
            assert engine.query(source, target).value == pytest.approx(
                fresh.query(source, target).value
            )
            assert engine.query(source, target).value == pytest.approx(
                shortest_path_cost(graph, source, target)
            )

    def test_unchanged_pairs_keep_their_complementary_values(self):
        graph, blocks = clique_line()
        engine = self._engine(graph, blocks)
        info = engine.catalog.complementary
        kept_pair_values = dict(info.values[(0, 1)])
        new_blocks = [set(blocks[0]), set(blocks[1]), set(blocks[2]) | {12}, set(blocks[3]) - {12}]
        proposed = GroundTruthFragmenter(new_blocks).fragment(graph)
        aligned = align_layout(
            [f.edges for f in engine.catalog.fragmentation.fragments],
            [set(f.edges) for f in proposed.fragments],
        )
        result = LiveRefragmenter(engine).apply(
            Fragmentation(graph, aligned, algorithm=proposed.algorithm)
        )
        assert result.pairs_kept >= 1
        assert info.values[(0, 1)] == kept_pair_values
        assert (2, 3) in {pair for pair in result.report.pairs_changed}

    def test_shrinking_redraw_drops_ids_and_sites(self):
        graph, blocks = clique_line(blocks=3)
        engine = self._engine(graph, blocks)
        merged = [set(blocks[0]) | set(blocks[1]), set(blocks[2])]
        proposed = GroundTruthFragmenter(merged).fragment(graph)
        aligned = align_layout(
            [f.edges for f in engine.catalog.fragmentation.fragments],
            [set(f.edges) for f in proposed.fragments],
        )
        result = LiveRefragmenter(engine).apply(
            Fragmentation(graph, aligned, algorithm=proposed.algorithm)
        )
        assert result.dropped == (2,)
        assert engine.catalog.site_count() == 2
        fresh = DisconnectionSetEngine(engine.catalog.fragmentation)
        for source, target in [(0, 11), (5, 9), (11, 0)]:
            assert engine.query(source, target).value == pytest.approx(
                fresh.query(source, target).value
            )

    def test_custom_semiring_is_outside_the_envelope(self):
        graph, blocks = clique_line(blocks=2)
        fragmentation = GroundTruthFragmenter([set(b) for b in blocks]).fragment(graph)
        custom = Semiring(
            name="custom",
            zero=float("inf"),
            one=0.0,
            plus=min,
            times=lambda a, b: a + b,
        )
        engine = DisconnectionSetEngine(fragmentation, semiring=custom)
        with pytest.raises(IncrementalFallback):
            LiveRefragmenter(engine)

    def test_stored_paths_are_repaired_in_place(self):
        graph, blocks = clique_line()
        fragmentation = GroundTruthFragmenter([set(b) for b in blocks]).fragment(graph)
        complementary = precompute_complementary_information(
            fragmentation, store_paths=True
        )
        engine = DisconnectionSetEngine(fragmentation, complementary=complementary)
        new_blocks = [set(blocks[0]), set(blocks[1]), set(blocks[2]) | {12}, set(blocks[3]) - {12}]
        proposed = GroundTruthFragmenter(new_blocks).fragment(graph)
        aligned = align_layout(
            [f.edges for f in engine.catalog.fragmentation.fragments],
            [set(f.edges) for f in proposed.fragments],
        )
        new_fragmentation = Fragmentation(graph, aligned, algorithm=proposed.algorithm)
        LiveRefragmenter(engine).apply(new_fragmentation)
        info = engine.catalog.complementary
        fresh = precompute_complementary_information(new_fragmentation, store_paths=True)
        assert set(info.paths) == set(fresh.paths)
        for pair, fresh_paths in fresh.paths.items():
            assert set(info.paths[pair]) == set(fresh_paths)
            # Equal-cost alternatives may differ between the repaired and the
            # fresh expansion; every stored path must be a real walk through
            # the graph whose cost equals the stored value.
            for (source, target), path in info.paths[pair].items():
                assert path[0] == source and path[-1] == target
                cost = sum(graph.edge_weight(a, b) for a, b in zip(path, path[1:]))
                assert cost == pytest.approx(info.values[pair][(source, target)])


class TestDatabaseRefragment:
    def test_scoped_refragment_keeps_the_engine_alive(self):
        graph, blocks = clique_line()
        fragmentation = GroundTruthFragmenter([set(b) for b in blocks]).fragment(graph)
        database = FragmentedDatabase(fragmentation, incremental=True)
        engine = database.engine()
        new_blocks = [set(blocks[0]), set(blocks[1]), set(blocks[2]) | {12}, set(blocks[3]) - {12}]
        database.refragment(GroundTruthFragmenter(new_blocks))
        assert database.engine() is engine
        assert database.statistics.scoped_refragments == 1
        assert database.last_refragment is not None
        record = database.delta_log.last()
        assert record.incremental and record.layout is not None

    def test_layout_replaces_fragmenter(self):
        graph, blocks = clique_line(blocks=2)
        fragmentation = GroundTruthFragmenter([set(b) for b in blocks]).fragment(graph)
        database = FragmentedDatabase(fragmentation, incremental=True)
        database.engine()
        layout = [list(f.edges) for f in fragmentation.fragments]
        database.refragment(layout=layout)
        assert [set(f.edges) for f in database.fragmentation().fragments] == [
            set(edges) for edges in layout
        ]
        with pytest.raises(ValueError):
            database.refragment()

    def test_non_incremental_database_takes_the_classic_path(self):
        graph, blocks = clique_line(blocks=2)
        fragmentation = GroundTruthFragmenter([set(b) for b in blocks]).fragment(graph)
        database = FragmentedDatabase(fragmentation)
        engine = database.engine()
        epoch = database.version_vector.epoch
        database.refragment(GroundTruthFragmenter([set(blocks[0]) | {4}, set(blocks[1]) - {4}]))
        assert database.version_vector.epoch == epoch + 1
        assert database.engine() is not engine
        assert database.statistics.refragments == 1
        assert database.statistics.scoped_refragments == 0
