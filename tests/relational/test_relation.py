"""Unit tests for the Relation value type."""

import pytest

from repro.exceptions import SchemaError
from repro.relational import Relation, edge_relation, pair_relation


class TestConstruction:
    def test_basic_construction(self):
        relation = Relation(("a", "b"), [(1, 2), (3, 4)])
        assert relation.cardinality() == 2
        assert relation.arity() == 2

    def test_duplicate_rows_are_removed(self):
        relation = Relation(("a",), [(1,), (1,), (2,)])
        assert relation.cardinality() == 2

    def test_duplicate_attributes_raise(self):
        with pytest.raises(SchemaError):
            Relation(("a", "a"), [])

    def test_empty_schema_raises(self):
        with pytest.raises(SchemaError):
            Relation((), [])

    def test_wrong_arity_row_raises(self):
        with pytest.raises(SchemaError):
            Relation(("a", "b"), [(1,)])

    def test_empty_factory(self):
        relation = Relation.empty(("x", "y"))
        assert relation.is_empty()

    def test_edge_relation_schema(self):
        relation = edge_relation([("a", "b", 1.0)])
        assert relation.schema == ("source", "target", "cost")

    def test_pair_relation_schema(self):
        relation = pair_relation([("a", "b")])
        assert relation.schema == ("source", "target")


class TestAccessors:
    def test_attribute_index(self):
        relation = Relation(("x", "y", "z"), [])
        assert relation.attribute_index("y") == 1
        with pytest.raises(SchemaError):
            relation.attribute_index("missing")

    def test_membership_and_iteration(self):
        relation = Relation(("a", "b"), [(1, 2)])
        assert (1, 2) in relation
        assert [1, 2] in relation
        assert list(relation) == [(1, 2)]

    def test_equality_and_hash(self):
        left = Relation(("a", "b"), [(1, 2), (3, 4)])
        right = Relation(("a", "b"), [(3, 4), (1, 2)])
        assert left == right
        assert hash(left) == hash(right)

    def test_inequality_different_schema(self):
        assert Relation(("a",), [(1,)]) != Relation(("b",), [(1,)])

    def test_as_dicts_sorted(self):
        relation = Relation(("name", "value"), [("b", 2), ("a", 1)])
        dicts = relation.as_dicts()
        assert dicts[0] == {"name": "a", "value": 1}

    def test_column_and_distinct_values(self):
        relation = Relation(("k", "v"), [("x", 1), ("y", 1)])
        assert relation.distinct_values("v") == frozenset({1})
        assert sorted(relation.column("k")) == ["x", "y"]

    def test_with_name_and_with_rows(self):
        relation = Relation(("a",), [(1,)], name="R")
        renamed = relation.with_name("S")
        assert renamed.name == "S"
        assert renamed.rows == relation.rows
        refilled = relation.with_rows([(9,)])
        assert (9,) in refilled
