"""Unit tests for the relational fixpoint (transitive closure) operators."""

import pytest

from repro.relational import (
    edge_relation,
    naive_closure,
    pair_relation,
    seminaive_closure,
    smart_closure,
)


@pytest.fixture
def chain_relation():
    return pair_relation([("a", "b"), ("b", "c"), ("c", "d")])


@pytest.fixture
def weighted_cycle():
    return edge_relation([("a", "b", 1.0), ("b", "c", 1.0), ("c", "a", 1.0)])


class TestCorrectness:
    def test_chain_closure_contains_all_pairs(self, chain_relation):
        closure, _ = seminaive_closure(chain_relation)
        expected = {("a", "b"), ("a", "c"), ("a", "d"), ("b", "c"), ("b", "d"), ("c", "d")}
        assert closure.rows == frozenset(expected)

    def test_all_strategies_agree_on_reachability(self, chain_relation):
        naive, _ = naive_closure(chain_relation)
        semi, _ = seminaive_closure(chain_relation)
        smart, _ = smart_closure(chain_relation)
        assert naive.rows == semi.rows == smart.rows

    def test_weighted_closure_keeps_cheapest_cost(self):
        relation = edge_relation([("a", "b", 1.0), ("b", "c", 1.0), ("a", "c", 10.0)])
        closure, _ = seminaive_closure(relation)
        costs = {(s, t): c for s, t, c in closure.rows}
        assert costs[("a", "c")] == 2.0

    def test_cycle_closure_terminates(self, weighted_cycle):
        closure, stats = seminaive_closure(weighted_cycle)
        costs = {(s, t): c for s, t, c in closure.rows}
        assert costs[("a", "a")] == 3.0
        assert stats.iterations < 20

    def test_strategies_agree_on_weighted_cycle(self, weighted_cycle):
        semi, _ = seminaive_closure(weighted_cycle)
        naive, _ = naive_closure(weighted_cycle)
        smart, _ = smart_closure(weighted_cycle)
        assert semi.rows == naive.rows == smart.rows

    def test_empty_relation(self):
        closure, stats = seminaive_closure(pair_relation([]))
        assert closure.is_empty()
        assert stats.result_size == 0


class TestStatistics:
    def test_seminaive_iterations_track_diameter(self):
        # A chain of length 5 needs about 5 rounds (diameter) to converge.
        chain = pair_relation([(i, i + 1) for i in range(5)])
        _, stats = seminaive_closure(chain)
        assert 4 <= stats.iterations <= 6

    def test_smart_uses_logarithmic_iterations(self):
        chain = pair_relation([(i, i + 1) for i in range(16)])
        _, smart_stats = smart_closure(chain)
        _, semi_stats = seminaive_closure(chain)
        assert smart_stats.iterations < semi_stats.iterations

    def test_max_iterations_caps_work(self, chain_relation):
        _, stats = seminaive_closure(chain_relation, max_iterations=1)
        assert stats.iterations == 1

    def test_statistics_record_tuples(self, chain_relation):
        _, stats = seminaive_closure(chain_relation)
        assert stats.tuples_produced >= stats.result_size - len(chain_relation)
        assert len(stats.delta_sizes) == stats.iterations
