"""Unit tests for the relational algebra operators."""

import pytest

from repro.exceptions import SchemaError
from repro.relational import (
    Relation,
    aggregate_min,
    cartesian_product,
    compose,
    difference,
    edge_relation,
    equi_join,
    intersection,
    natural_join,
    project,
    rename,
    select,
    select_eq,
    select_in,
    semijoin,
    union,
)


@pytest.fixture
def cities() -> Relation:
    return Relation(
        ("city", "country", "population"),
        [
            ("amsterdam", "nl", 870),
            ("utrecht", "nl", 360),
            ("milan", "it", 1370),
            ("verona", "it", 257),
        ],
        name="cities",
    )


class TestSelectionProjection:
    def test_select_with_predicate(self, cities):
        result = select(cities, lambda row: row["population"] > 500)
        assert result.cardinality() == 2

    def test_select_eq(self, cities):
        result = select_eq(cities, "country", "it")
        assert {row[0] for row in result.rows} == {"milan", "verona"}

    def test_select_in(self, cities):
        result = select_in(cities, "city", ["utrecht", "milan", "ghost"])
        assert result.cardinality() == 2

    def test_project_removes_duplicates(self, cities):
        result = project(cities, ["country"])
        assert result.cardinality() == 2
        assert result.schema == ("country",)

    def test_project_missing_attribute_raises(self, cities):
        with pytest.raises(SchemaError):
            project(cities, ["unknown"])

    def test_rename(self, cities):
        renamed = rename(cities, {"city": "name"})
        assert renamed.schema == ("name", "country", "population")

    def test_rename_collision_raises(self, cities):
        with pytest.raises(SchemaError):
            rename(cities, {"city": "country"})


class TestSetOperators:
    def test_union(self):
        left = Relation(("a",), [(1,)])
        right = Relation(("a",), [(2,)])
        assert union(left, right).cardinality() == 2

    def test_union_schema_mismatch_raises(self):
        with pytest.raises(SchemaError):
            union(Relation(("a",), []), Relation(("b",), []))

    def test_difference_and_intersection(self):
        left = Relation(("a",), [(1,), (2,)])
        right = Relation(("a",), [(2,), (3,)])
        assert difference(left, right).rows == frozenset({(1,)})
        assert intersection(left, right).rows == frozenset({(2,)})


class TestJoins:
    def test_natural_join_on_shared_attribute(self):
        left = Relation(("id", "name"), [(1, "a"), (2, "b")])
        right = Relation(("id", "score"), [(1, 10), (3, 30)])
        joined = natural_join(left, right)
        assert joined.cardinality() == 1
        assert joined.schema == ("id", "name", "score")

    def test_natural_join_without_shared_attributes_is_product(self):
        left = Relation(("a",), [(1,)])
        right = Relation(("b",), [(2,), (3,)])
        assert natural_join(left, right).cardinality() == 2

    def test_cartesian_product_prefixes_clashes(self):
        left = Relation(("x", "y"), [(1, 2)], name="L")
        right = Relation(("y", "z"), [(3, 4)], name="R")
        product = cartesian_product(left, right)
        assert "R.y" in product.schema
        assert product.cardinality() == 1

    def test_equi_join_chains_paths(self):
        hops1 = Relation(("entry", "exit", "cost"), [("a", "x", 1.0), ("a", "y", 2.0)])
        hops2 = Relation(("entry", "exit", "cost"), [("x", "b", 5.0), ("y", "b", 1.0)])
        joined = equi_join(hops1, hops2, on=[("exit", "entry")], suffix="_2")
        assert joined.cardinality() == 2
        assert "exit_2" in joined.schema

    def test_semijoin(self):
        edges = Relation(("source", "target"), [("a", "b"), ("c", "d")])
        border = Relation(("node",), [("a",)])
        result = semijoin(edges, border, on=[("source", "node")])
        assert result.rows == frozenset({("a", "b")})


class TestComposeAndAggregate:
    def test_compose_without_cost(self):
        left = Relation(("source", "target"), [("a", "b")])
        right = Relation(("source", "target"), [("b", "c")])
        composed = compose(left, right)
        assert ("a", "c") in composed

    def test_compose_with_cost_adds_costs(self):
        left = edge_relation([("a", "b", 2.0)])
        right = edge_relation([("b", "c", 3.0)])
        composed = compose(left, right)
        assert ("a", "c", 5.0) in composed

    def test_aggregate_min(self):
        relation = Relation(
            ("source", "target", "cost"),
            [("a", "b", 5.0), ("a", "b", 2.0), ("a", "c", 1.0)],
        )
        best = aggregate_min(relation, ("source", "target"), "cost")
        assert ("a", "b", 2.0) in best
        assert best.cardinality() == 2
