"""Unit tests for the aggregate helpers."""

from repro.relational import Relation
from repro.relational.aggregates import (
    argmin_rows,
    count,
    count_distinct,
    group_count,
    maximum,
    minimum,
    total,
)


def _sample() -> Relation:
    return Relation(
        ("country", "city", "population"),
        [
            ("nl", "amsterdam", 870),
            ("nl", "utrecht", 360),
            ("it", "milan", 1370),
        ],
    )


class TestAggregates:
    def test_count(self):
        assert count(_sample()) == 3

    def test_count_distinct(self):
        assert count_distinct(_sample(), "country") == 2

    def test_group_count(self):
        grouped = group_count(_sample(), ("country",))
        assert ("nl", 2) in grouped
        assert ("it", 1) in grouped
        assert grouped.schema == ("country", "count")

    def test_minimum_maximum(self):
        assert minimum(_sample(), "population") == 360
        assert maximum(_sample(), "population") == 1370

    def test_minimum_of_empty_is_none(self):
        empty = Relation.empty(("x",))
        assert minimum(empty, "x") is None
        assert maximum(empty, "x") is None

    def test_total(self):
        assert total(_sample(), "population") == 2600.0
        assert total(Relation.empty(("x",)), "x") == 0.0

    def test_argmin_rows(self):
        rows = argmin_rows(_sample(), "population")
        assert len(rows) == 1
        assert rows[0][1] == "utrecht"

    def test_argmin_rows_empty(self):
        assert argmin_rows(Relation.empty(("x",)), "x") == []

    def test_argmin_rows_ties(self):
        relation = Relation(("k", "v"), [("a", 1), ("b", 1), ("c", 2)])
        assert len(argmin_rows(relation, "v")) == 2
