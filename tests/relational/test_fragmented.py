"""Tests for horizontally fragmented relations."""

import pytest

from repro.exceptions import FragmentationError, SchemaError
from repro.fragmentation import GroundTruthFragmenter
from repro.generators import two_cluster_dumbbell
from repro.relational import FragmentedRelation, Relation, edge_relation


@pytest.fixture
def cities() -> Relation:
    return Relation(
        ("city", "country"),
        [
            ("amsterdam", "nl"), ("utrecht", "nl"),
            ("milan", "it"), ("verona", "it"),
            ("paris", "fr"),
        ],
        name="cities",
    )


class TestConstruction:
    def test_from_attribute_values(self, cities):
        fragmented = FragmentedRelation.from_attribute_values(
            cities, "country", {"nl": ["nl"], "it": ["it"]}, rest_fragment="other"
        )
        assert fragmented.fragment("nl").cardinality() == 2
        assert fragmented.fragment("it").cardinality() == 2
        assert fragmented.fragment("other").cardinality() == 1

    def test_from_predicates_requires_completeness(self, cities):
        with pytest.raises(FragmentationError):
            FragmentedRelation.from_predicates(
                cities, {"nl": lambda row: row["country"] == "nl"}
            )

    def test_first_matching_predicate_wins(self, cities):
        fragmented = FragmentedRelation.from_predicates(
            cities,
            {
                "all": lambda row: True,
                "nl": lambda row: row["country"] == "nl",
            },
        )
        assert fragmented.fragment("all").cardinality() == 5
        assert fragmented.fragment("nl").is_empty()

    def test_from_graph_fragmentation(self):
        graph = two_cluster_dumbbell(3, bridge_nodes=1)
        fragmentation = GroundTruthFragmenter([set(range(3)), set(range(3, 6))]).fragment(graph)
        fragmented = FragmentedRelation.from_graph_fragmentation(fragmentation)
        assert set(fragmented.fragment_names()) == {"fragment_0", "fragment_1"}
        base = edge_relation(graph.weighted_edges())
        assert fragmented.reconstructs(base)


class TestValidationAndOperations:
    def test_completeness_disjointness_reconstruction(self, cities):
        fragmented = FragmentedRelation.from_attribute_values(
            cities, "country", {"nl": ["nl"], "it": ["it"], "fr": ["fr"]}, rest_fragment=None
        )
        assert fragmented.is_complete(cities)
        assert fragmented.is_disjoint()
        assert fragmented.reconstructs(cities)
        assert fragmented.reconstruct() == cities.with_name("cities")

    def test_overlapping_fragments_are_not_disjoint(self, cities):
        fragmented = FragmentedRelation(
            schema=cities.schema,
            fragments={"a": cities, "b": cities},
        )
        assert not fragmented.is_disjoint()
        assert fragmented.is_complete(cities)

    def test_schema_mismatch_raises(self, cities):
        fragmented = FragmentedRelation.from_attribute_values(
            cities, "country", {"nl": ["nl"]}, rest_fragment="rest"
        )
        with pytest.raises(SchemaError):
            fragmented.is_complete(Relation(("other",), [("x",)]))

    def test_locate_and_cardinalities(self, cities):
        fragmented = FragmentedRelation.from_attribute_values(
            cities, "country", {"nl": ["nl"]}, rest_fragment="rest"
        )
        assert fragmented.locate(("amsterdam", "nl")) == ["nl"]
        assert fragmented.locate(("ghost", "xx")) == []
        assert fragmented.fragment_cardinalities() == {"nl": 2, "rest": 3}
        assert fragmented.cardinality() == 5

    def test_fragmentwise_selection_and_semijoin(self, cities):
        fragmented = FragmentedRelation.from_attribute_values(
            cities, "country", {"nl": ["nl"], "it": ["it"]}, rest_fragment="rest"
        )
        selected = fragmented.select_fragmentwise(lambda row: row["city"].startswith("m"))
        assert selected["it"].cardinality() == 1
        assert selected["nl"].is_empty()
        reduced = fragmented.semijoin_reduce("city", ["amsterdam", "verona"])
        assert reduced["nl"].cardinality() == 1
        assert reduced["it"].cardinality() == 1
        assert reduced["rest"].is_empty()

    def test_reconstruct_empty(self):
        fragmented = FragmentedRelation(schema=("a",), fragments={})
        assert fragmented.reconstruct().is_empty()
