"""Smoke tests for the top-level public API surface."""

import importlib

import pytest

import repro


class TestPublicExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists {name} but it is not importable"

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.graph",
            "repro.relational",
            "repro.generators",
            "repro.closure",
            "repro.fragmentation",
            "repro.disconnection",
            "repro.incremental",
            "repro.service",
            "repro.parallel",
            "repro.experiments",
            "repro.cli",
        ],
    )
    def test_subpackage_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists {name} but it is not importable"

    def test_readme_quickstart_symbols_exist(self):
        # The classes/functions the README quickstart relies on.
        for name in (
            "generate_transportation_graph",
            "paper_table1_config",
            "BondEnergyFragmenter",
            "DisconnectionSetEngine",
            "characterize",
        ):
            assert hasattr(repro, name)

    def test_exceptions_form_a_hierarchy(self):
        from repro.exceptions import (
            DisconnectionSetError,
            FragmentationError,
            GraphError,
            NoChainError,
            ReproError,
        )

        assert issubclass(GraphError, ReproError)
        assert issubclass(FragmentationError, ReproError)
        assert issubclass(NoChainError, DisconnectionSetError)
        assert issubclass(DisconnectionSetError, ReproError)
