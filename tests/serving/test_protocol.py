"""Tests for the shared serving grammar (one spec table, one error path)."""

import pytest

from repro.serving import (
    COMMAND_SPECS,
    ProtocolError,
    commands_for,
    decode_node,
    parse_json_request,
    parse_line,
)


class TestParseLine:
    def test_blank_lines_are_none(self):
        assert parse_line("") is None
        assert parse_line("   \n") is None

    def test_query_parses_with_args(self):
        request = parse_line("query a 17\n")
        assert request.op == "query"
        assert request.node(0) == "a"
        assert request.node(1) == 17

    def test_op_is_case_insensitive(self):
        assert parse_line("QUERY a b").op == "query"

    def test_unknown_command_message_is_the_historical_one(self):
        with pytest.raises(ProtocolError, match="unrecognised command 'bogus'"):
            parse_line("bogus\n")

    def test_bad_arity_reports_usage(self):
        with pytest.raises(ProtocolError, match="usage: query SOURCE TARGET"):
            parse_line("query a")

    def test_batch_requires_even_args(self):
        assert parse_line("batch a b c d").pairs() == [("a", "b"), ("c", "d")]
        with pytest.raises(ProtocolError, match="usage: batch"):
            parse_line("batch a b c")

    def test_trace_validates_choices(self):
        assert parse_line("trace on").text(0) == "on"
        with pytest.raises(ProtocolError, match="expected one of on|off"):
            parse_line("trace maybe")

    def test_network_only_commands_are_unknown_on_the_console(self):
        for op in ("closure", "resume", "cancel", "hello", "ping"):
            with pytest.raises(ProtocolError, match="unrecognised command"):
                parse_line(f"{op} x", surface="console")

    def test_console_only_commands_are_unknown_on_the_network(self):
        for op in ("snapshot", "quit", "exit"):
            with pytest.raises(ProtocolError, match="unrecognised command"):
                parse_line(f"{op} x" if op == "snapshot" else op, surface="network")

    def test_operator_commands_exist_on_both_surfaces(self):
        # A remote operator must never be blinder than a local one: the
        # operator controls and the health probes parse on both surfaces.
        for op in ("placement", "rebalance", "refragment", "advise", "healthz", "readyz", "profile"):
            assert parse_line(op, surface="console").op == op
            assert parse_line(op, surface="network").op == op

    def test_unknown_surface_raises(self):
        with pytest.raises(ValueError, match="unknown surface"):
            parse_line("query a b", surface="carrier-pigeon")


class TestParseJsonRequest:
    def test_happy_path_with_options(self):
        request = parse_json_request(
            {"op": "closure", "args": ["*"], "id": "c1", "timeout": 2.5}
        )
        assert request.op == "closure"
        assert request.args == ("*",)
        assert request.option("id") == "c1"
        assert request.option("timeout") == 2.5
        assert request.option("missing", "fallback") == "fallback"

    def test_non_object_document_is_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_json_request(["query", "a", "b"])

    def test_missing_op_is_rejected(self):
        with pytest.raises(ProtocolError, match="'op'"):
            parse_json_request({"args": ["a", "b"]})

    def test_non_array_args_are_rejected(self):
        with pytest.raises(ProtocolError, match="'args' must be an array"):
            parse_json_request({"op": "query", "args": "a b"})

    def test_json_numbers_survive_as_nodes(self):
        request = parse_json_request({"op": "query", "args": [3, "7"]})
        assert request.node(0) == 3
        assert request.node(1) == 7

    def test_arity_is_enforced_on_the_network_too(self):
        with pytest.raises(ProtocolError, match="usage: resume"):
            parse_json_request({"op": "resume", "args": []})


class TestGrammarTable:
    def test_surfaces_partition_the_grammar(self):
        console, network = set(commands_for("console")), set(commands_for("network"))
        assert {"query", "batch", "update", "delete", "stats"} <= console & network
        assert {"closure", "resume", "cancel", "hello", "ping"} <= network - console
        assert {"snapshot", "quit", "exit"} <= console - network
        assert {"placement", "migrate", "healthz", "readyz", "profile"} <= console & network
        assert console | network == set(COMMAND_SPECS)

    def test_decode_node_matches_the_cli_convention(self):
        assert decode_node("12") == 12
        assert decode_node("-3") == -3
        assert decode_node("a12") == "a12"
        assert decode_node(7) == 7

    def test_request_accessor_defaults(self):
        request = parse_line("update a b 2.5")
        assert request.number(2, 1.0) == 2.5
        assert parse_line("update a b").number(2, 1.0) == 1.0
        assert parse_line("slowlog").integer(0, 10) == 10
        assert parse_line("stats").text(0, "text") == "text"
