"""``healthz``/``readyz`` over the network: pool death, saturation, SLO burn.

Liveness (``healthz``) fails only when the worker pool lost processes;
readiness (``readyz``) additionally drains on a saturated admission queue
or a page-severity SLO burn.  The probes are pure reads: observing a dead
worker must not respawn it (the routed pool heals lazily on the next
evaluate), and probing must not consume admission tokens.
"""

import asyncio

from repro.observability import BurnWindow, SLODefinition, SLOMonitor
from repro.serving import ClosureServer
from repro.service import QueryService

from tests.observability.test_service_telemetry import (
    clique_line_fragmentation,
    cross_fragment_queries,
)
from tests.serving.test_server import (
    Client,
    make_service,
    open_admission,
    tiny_config,
)


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestHealthyBaseline:
    def test_healthz_and_readyz_report_ok(self):
        async def scenario():
            service = make_service()
            async with ClosureServer(service, tiny_config()) as server:
                async with Client(*server.address) as client:
                    health = await client.rpc(op="healthz")
                    ready = await client.rpc(op="readyz")
            assert health["ok"] and health["status"] == "ok"
            assert ready["ok"] and ready["status"] == "ready"
            assert ready["reasons"] == []
            checks = ready["checks"]
            assert checks["catalog_version"] == service.catalog_version
            assert checks["pool"]["healthy"] is True
            assert checks["queue_depth"] == 0
            assert checks["slo"]["severity"] == "ok"

        asyncio.run(scenario())

    def test_stats_response_carries_the_slo_section(self):
        async def scenario():
            service = make_service()
            async with ClosureServer(service, tiny_config()) as server:
                async with Client(*server.address) as client:
                    await client.rpc(op="query", args=["0", "9"])
                    stats = await client.rpc(op="stats")
            assert stats["ok"]
            slo = stats["slo"]
            assert slo["severity"] in ("ok", "ticket", "page")
            names = {objective["name"] for objective in slo["objectives"]}
            assert {"query_latency", "serving_availability"} <= names

        asyncio.run(scenario())


class TestPoolDegradation:
    def test_killed_worker_flips_healthz_without_respawning(self):
        async def scenario():
            fragmentation = clique_line_fragmentation()
            with QueryService(
                fragmentation, placement="round_robin", workers=3
            ) as service:
                # Start the lazy pool, then kill one worker while it idles.
                service.query_batch(cross_fragment_queries())
                handle = service._pool._workers[0]
                handle.process.terminate()
                handle.process.join()
                async with ClosureServer(service, tiny_config()) as server:
                    async with Client(*server.address) as client:
                        health = await client.rpc(op="healthz")
                        ready = await client.rpc(op="readyz")
                        again = await client.rpc(op="healthz")
                assert not health["ok"] and health["status"] == "degraded"
                pool = health["checks"]["pool"]
                assert pool["mode"] == "placed"
                assert pool["alive"] == pool["workers"] - 1
                assert pool["per_worker"]["0"] is False
                assert not ready["ok"] and ready["status"] == "not_ready"
                assert "pool_degraded" in ready["reasons"]
                # The probe is a pure read: looking did not respawn the
                # worker, so a second probe still sees the degradation.
                assert not again["ok"]
                assert service._pool.liveness()[0] is False
                # The pool heals lazily on the next evaluate; health clears.
                service.cache.clear()
                service.query_batch(cross_fragment_queries())
                assert service.pool_health()["healthy"] is True

        asyncio.run(scenario())


class TestQueueSaturation:
    def test_full_admission_queue_drains_readyz(self):
        async def scenario():
            service = make_service()
            config = tiny_config(
                admission=open_admission(max_concurrent=1, max_queue=2)
            )
            async with ClosureServer(service, config) as server:
                admission = server.admission
                assert admission.admit("hog").status == "run"
                assert admission.admit("waiter_a").status == "queue"
                assert admission.admit("waiter_b").status == "queue"
                async with Client(*server.address) as client:
                    # The probes skip admission: they answer even though the
                    # queue is full, and answering consumes nothing.
                    health = await client.rpc(op="healthz")
                    ready = await client.rpc(op="readyz")
                    assert health["ok"], "liveness is about the pool, not load"
                    assert not ready["ok"] and ready["status"] == "not_ready"
                    assert ready["reasons"] == ["queue_saturated"]
                    assert ready["checks"]["queue_depth"] == 2

                    # Load drains; readiness recovers without a restart.
                    admission.abandon_queued("waiter_a")
                    admission.abandon_queued("waiter_b")
                    admission.finish("hog")
                    recovered = await client.rpc(op="readyz")
                    assert recovered["ok"] and recovered["status"] == "ready"

        asyncio.run(scenario())


class TestSLOBurn:
    def test_page_severity_burn_drains_readyz(self):
        async def scenario():
            service = make_service()
            async with ClosureServer(service, tiny_config()) as server:
                # Swap in a monitor with tight windows and a fake clock so a
                # few samples replay a realistic page-severity episode.
                clock = FakeClock()
                slo = SLODefinition(
                    name="availability",
                    objective=0.999,
                    counter="probe_requests_total",
                    bad_label="outcome",
                    bad_values=("error",),
                )
                windows = (
                    BurnWindow(
                        long_seconds=600.0,
                        short_seconds=60.0,
                        factor=10.0,
                        severity="page",
                    ),
                )
                server.slo_monitor = SLOMonitor(
                    service.registry, (slo,), windows=windows, clock=clock
                )
                requests = service.registry.counter(
                    "probe_requests_total", "probe", labelnames=("outcome",)
                )
                async with Client(*server.address) as client:
                    ready = await client.rpc(op="readyz")
                    assert ready["ok"], "no burn yet: the server is ready"
                    # 5% errors against a 0.1% budget = 50x burn.
                    for _ in range(10):
                        requests.inc(95, outcome="ok")
                        requests.inc(5, outcome="error")
                        clock.advance(30.0)
                        server.slo_monitor.sample()
                    burning = await client.rpc(op="readyz")
                    assert not burning["ok"]
                    assert "slo_burn" in burning["reasons"]
                    assert burning["checks"]["slo"]["severity"] == "page"
                    # Liveness is unaffected: the pool never went away.
                    health = await client.rpc(op="healthz")
                    assert health["ok"]
                    # The bleeding stops; the short window clears the page.
                    for _ in range(4):
                        requests.inc(100, outcome="ok")
                        clock.advance(30.0)
                        server.slo_monitor.sample()
                    recovered = await client.rpc(op="readyz")
                    assert recovered["ok"]

        asyncio.run(scenario())


class TestPrometheusExposition:
    def test_serving_families_emit_exactly_one_help_and_type(self):
        async def scenario():
            service = make_service()
            async with ClosureServer(service, tiny_config()) as server:
                async with Client(*server.address) as client:
                    # Exercise enough of the surface that every serving
                    # family exists before the exposition is rendered.
                    await client.rpc(op="query", args=["0", "9"])
                    await client.rpc(op="healthz")
                    response = await client.rpc(op="stats", args=["prometheus"])
            return response["prometheus"]

        text = asyncio.run(scenario())
        help_lines, type_lines, samples = {}, {}, set()
        for line in text.splitlines():
            if line.startswith("# HELP "):
                name, _, help_text = line[len("# HELP ") :].partition(" ")
                help_lines.setdefault(name, []).append(help_text)
            elif line.startswith("# TYPE "):
                name, _, kind = line[len("# TYPE ") :].partition(" ")
                type_lines.setdefault(name, []).append(kind)
            elif line and not line.startswith("#"):
                samples.add(line.split("{")[0].split(" ")[0])
        serving_families = {
            name for name in type_lines if name.startswith("repro_serving_")
        }
        assert serving_families, "the serving tier must export metrics"
        for name in serving_families:
            # Exactly one TYPE and exactly one non-empty HELP per family:
            # a gauge re-registered by a second subsystem must not re-emit
            # headers or drop its description.
            assert len(type_lines[name]) == 1, name
            assert len(help_lines.get(name, [])) == 1, name
            assert help_lines[name][0].strip(), name
        # Histogram families surface as _bucket/_sum/_count samples; map
        # each sample back to a declared family and require headers for all.
        for sample in samples:
            family = sample
            for suffix in ("_bucket", "_sum", "_count"):
                if family.endswith(suffix) and family[: -len(suffix)] in type_lines:
                    family = family[: -len(suffix)]
                    break
            assert family in type_lines, f"sample {sample} missing # TYPE"
