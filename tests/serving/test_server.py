"""Tests for the network serving tier: streaming, continuations, fairness.

These are the concurrency-edge tests the subsystem exists to pass:

* a client disconnecting mid-stream frees its quantum slot and saved state,
* a pickled suspension resumed over a *new* connection produces rows
  bit-identical to an uninterrupted run,
* an update interleaved with a suspended query invalidates its continuation
  token cleanly (stale rejection, never mixed-version rows),
* saturation answers reject-with-retry-after, and queued requests are
  promoted when slots free up.

Each test drives a real ``ClosureServer`` on an ephemeral loopback port via
``asyncio.run`` (the suite does not depend on an asyncio pytest plugin).
"""

import asyncio
import json

import pytest

from repro.fragmentation import GroundTruthFragmenter
from repro.generators import two_cluster_dumbbell
from repro.graph.compact import CompactGraph
from repro.serving import (
    ALL_SOURCES,
    AdmissionConfig,
    ClosureServer,
    PreemptableClosureIterator,
    ServingConfig,
)
from repro.service import QueryService


def make_service(**options):
    graph = two_cluster_dumbbell(5, bridge_nodes=2)
    fragmentation = GroundTruthFragmenter(
        [set(range(5)), set(range(5, 10))]
    ).fragment(graph)
    return QueryService(fragmentation, **options)


def open_admission(**overrides):
    defaults = dict(client_rate=1e6, client_burst=1e6)
    defaults.update(overrides)
    return AdmissionConfig(**defaults)


def tiny_config(**overrides):
    defaults = dict(
        quantum_seconds=0.005,
        page_size=4,
        quanta_per_call=1,
        admission=open_admission(),
    )
    defaults.update(overrides)
    return ServingConfig(**defaults)


class Client:
    """A minimal NDJSON client for one connection."""

    def __init__(self, host, port):
        self._host, self._port = host, port
        self.reader = None
        self.writer = None

    async def __aenter__(self):
        self.reader, self.writer = await asyncio.open_connection(self._host, self._port)
        return self

    async def __aexit__(self, *exc_info):
        await self.close()

    async def close(self):
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self.writer = None

    async def send(self, **payload):
        self.writer.write(json.dumps(payload).encode() + b"\n")
        await self.writer.drain()

    async def recv(self):
        line = await self.reader.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    async def rpc(self, **payload):
        await self.send(**payload)
        return await self.recv()

    async def drain_closure(self, **payload):
        """Issue one closure/resume call; returns (rows, continuation|None)."""
        await self.send(**payload)
        rows, token = [], None
        while True:
            message = await self.recv()
            assert message.get("ok"), message
            rows.extend(message.get("page") or [])
            if message.get("done"):
                break
            if message.get("suspended"):
                token = message["continuation"]
                break
        return rows, token

    async def run_closure_to_completion(self, source=ALL_SOURCES):
        rows, token = await self.drain_closure(op="closure", args=[source])
        while token:
            more, token = await self.drain_closure(op="resume", args=[token])
            rows.extend(more)
        return rows


def uninterrupted_rows(service):
    iterator = PreemptableClosureIterator(
        CompactGraph.from_digraph(service.database.graph),
        ALL_SOURCES,
        kind=service.semiring.name,
        catalog_version=service.catalog_version,
    )
    rows = []
    while not iterator.exhausted:
        rows.extend(iterator.run_quantum(float("inf")).rows)
    return [list(row) for row in rows]


async def suspend_once(client):
    """Start a whole-graph closure and read just past its first suspension."""
    rows, token = await client.drain_closure(op="closure", args=[ALL_SOURCES])
    assert token is not None, "whole-graph closure finished before suspending"
    return rows, token


class TestStreaming:
    def test_point_query_round_trips(self):
        async def scenario():
            service = make_service()
            async with ClosureServer(service, tiny_config()) as server:
                async with Client(*server.address) as client:
                    response = await client.rpc(op="query", args=["0", "9"], id="q1")
                    assert response["ok"]
                    assert response["id"] == "q1"
                    assert response["answer"]["value"] == pytest.approx(
                        service.query(0, 9).value
                    )

        asyncio.run(scenario())

    def test_suspended_closure_resumes_bit_identically(self):
        async def scenario():
            service = make_service()
            async with ClosureServer(service, tiny_config()) as server:
                async with Client(*server.address) as client:
                    await client.rpc(op="hello", args=["alice"])
                    rows = await client.run_closure_to_completion()
                assert rows == uninterrupted_rows(service)

        asyncio.run(scenario())

    def test_resume_works_across_a_reconnect(self):
        async def scenario():
            service = make_service()
            async with ClosureServer(service, tiny_config()) as server:
                async with Client(*server.address) as first:
                    await first.rpc(op="hello", args=["alice"])
                    head, token = await suspend_once(first)
                # A *new* connection under the same identity picks the
                # continuation up; the identified client's state survived
                # the disconnect.
                async with Client(*server.address) as second:
                    await second.rpc(op="hello", args=["alice"])
                    rows, token = await second.drain_closure(
                        op="resume", args=[token]
                    )
                    head.extend(rows)
                    while token:
                        more, token = await second.drain_closure(
                            op="resume", args=[token]
                        )
                        head.extend(more)
                assert head == uninterrupted_rows(service)

        asyncio.run(scenario())

    def test_bad_json_and_unknown_ops_keep_the_connection_alive(self):
        async def scenario():
            service = make_service()
            async with ClosureServer(service, tiny_config()) as server:
                async with Client(*server.address) as client:
                    client.writer.write(b"this is not json\n")
                    await client.writer.drain()
                    assert "bad JSON" in (await client.recv())["error"]
                    response = await client.rpc(op="launch-missiles")
                    assert "unrecognised command" in response["error"]
                    assert (await client.rpc(op="ping"))["pong"]

        asyncio.run(scenario())


class TestDisconnects:
    def test_disconnect_frees_slot_and_saved_state(self):
        async def scenario():
            service = make_service()
            async with ClosureServer(service, tiny_config()) as server:
                client = Client(*server.address)
                await client.__aenter__()
                _, token = await suspend_once(client)
                assert len(server.continuations) == 1
                # Drop the (anonymous) connection mid-conversation.
                await client.close()
                # Let the server's connection handler observe the EOF.
                for _ in range(50):
                    await asyncio.sleep(0.01)
                    if len(server.continuations) == 0:
                        break
                assert len(server.continuations) == 0
                assert server.admission.active == 0
                # The token is gone for everyone, on any connection.
                async with Client(*server.address) as probe:
                    response = await probe.rpc(op="resume", args=[token])
                    assert not response["ok"]
                    assert "unknown continuation token" in response["error"]

        asyncio.run(scenario())

    def test_identified_clients_states_survive_their_connection(self):
        async def scenario():
            service = make_service()
            async with ClosureServer(service, tiny_config()) as server:
                client = Client(*server.address)
                await client.__aenter__()
                await client.rpc(op="hello", args=["alice"])
                await suspend_once(client)
                await client.close()
                await asyncio.sleep(0.05)
                assert len(server.continuations) == 1

        asyncio.run(scenario())


class TestConsistency:
    def test_interleaved_update_invalidates_the_continuation(self):
        async def scenario():
            service = make_service()
            async with ClosureServer(service, tiny_config()) as server:
                async with Client(*server.address) as client:
                    await client.rpc(op="hello", args=["alice"])
                    _, token = await suspend_once(client)
                    version_before = service.catalog_version
                    updated = await client.rpc(op="update", args=["0", "9", "3.5"])
                    assert updated["ok"]
                    assert updated["version"] != version_before
                    response = await client.rpc(op="resume", args=[token])
                    assert not response["ok"]
                    assert response.get("stale") is True
                    assert "stale" in response["error"]
                    # The rejected state was consumed; a retry is cleanly
                    # "unknown", never a mixed-version answer.
                    retry = await client.rpc(op="resume", args=[token])
                    assert "unknown continuation token" in retry["error"]
                    # Re-issuing evaluates against the new catalog version.
                    rows = await client.run_closure_to_completion()
                    assert rows == uninterrupted_rows(service)

        asyncio.run(scenario())

    def test_cancel_discards_a_parked_state(self):
        async def scenario():
            service = make_service()
            async with ClosureServer(service, tiny_config()) as server:
                async with Client(*server.address) as client:
                    await client.rpc(op="hello", args=["alice"])
                    _, token = await suspend_once(client)
                    assert (await client.rpc(op="cancel", args=[token]))["cancelled"]
                    assert len(server.continuations) == 0

        asyncio.run(scenario())


class TestAdmission:
    def test_saturation_rejects_with_retry_after(self):
        async def scenario():
            service = make_service()
            config = tiny_config(
                quantum_seconds=0.05,
                quanta_per_call=1000,
                admission=open_admission(max_concurrent=1, max_queue=0),
            )
            async with ClosureServer(service, config) as server:
                async with Client(*server.address) as heavy, Client(
                    *server.address
                ) as light:
                    await heavy.send(op="closure", args=[ALL_SOURCES])
                    # Wait for proof the slot is held (first streamed page).
                    first = await heavy.recv()
                    assert first.get("page")
                    response = await light.rpc(op="query", args=["0", "9"])
                    assert response.get("rejected")
                    assert response["reason"] == "queue_full"
                    assert response["retry_after"] > 0
                    # Drain the heavy stream; afterwards the light client
                    # is admitted again.
                    while True:
                        message = await heavy.recv()
                        if message.get("done") or message.get("suspended"):
                            break
                    assert (await light.rpc(op="query", args=["0", "9"]))["ok"]

        asyncio.run(scenario())

    def test_queued_request_is_promoted_when_the_slot_frees(self):
        async def scenario():
            service = make_service()
            config = tiny_config(
                quantum_seconds=0.02,
                quanta_per_call=2,
                admission=open_admission(max_concurrent=1, max_queue=4),
            )
            async with ClosureServer(service, config) as server:
                async with Client(*server.address) as heavy, Client(
                    *server.address
                ) as light:
                    await heavy.send(op="closure", args=[ALL_SOURCES])
                    first = await heavy.recv()
                    assert first.get("page")
                    # The point query queues behind the closure, then runs.
                    answer = await light.rpc(op="query", args=["0", "9"])
                    assert answer["ok"]
                    while True:
                        message = await heavy.recv()
                        if message.get("done") or message.get("suspended"):
                            break

        asyncio.run(scenario())

    def test_per_client_rate_limit_rejects_the_hog_only(self):
        async def scenario():
            service = make_service()
            config = tiny_config(
                admission=AdmissionConfig(
                    client_rate=0.001, client_burst=5.0, heavy_cost=5.0
                )
            )
            async with ClosureServer(service, config) as server:
                async with Client(*server.address) as hog, Client(
                    *server.address
                ) as polite:
                    await hog.rpc(op="hello", args=["hog"])
                    await polite.rpc(op="hello", args=["polite"])
                    _, token = await suspend_once(hog)  # drains the burst
                    response = await hog.rpc(op="resume", args=[token])
                    assert response.get("rejected")
                    assert response["reason"] == "rate_limited"
                    assert response["retry_after"] > 0
                    assert (await polite.rpc(op="query", args=["0", "9"]))["ok"]

        asyncio.run(scenario())


class TestBackgroundRefragmentation:
    def test_background_cadence_keeps_assessment_off_the_update_path(self):
        service = make_service(auto_refragment=True, refragment_cadence="background")
        checks_before = service._updates_at_last_check
        for i in range(80):
            service.update_edge(0, 5 + (i % 5), 1.0 + i)
        # The update hot path never moved the assessment watermark.
        assert service._updates_at_last_check == checks_before
        outcome = service.auto_refragment_now()
        assert outcome in ("not_triggered", "rejected", "redrawn", "backoff")
        # With no further updates the next idle check is a cheap no-op.
        assert service.auto_refragment_now() in ("unchanged", "backoff")

    def test_auto_refragment_now_without_advisor_is_disabled(self):
        assert make_service().auto_refragment_now() == "disabled"

    def test_idle_task_assesses_between_requests(self):
        async def scenario():
            service = make_service(
                auto_refragment=True, refragment_cadence="background"
            )
            config = tiny_config(idle_assess_seconds=0.02)
            async with ClosureServer(service, config) as server:
                async with Client(*server.address) as client:
                    await client.rpc(op="update", args=["0", "7", "2.0"])
                deadline = asyncio.get_running_loop().time() + 2.0
                counter = service.registry.counter(
                    "repro_serving_idle_assessments_total", labelnames=("outcome",)
                )
                while asyncio.get_running_loop().time() < deadline:
                    await asyncio.sleep(0.02)
                    total = sum(counter.series().values())
                    if total > 0:
                        return
                raise AssertionError("the idle task never ran an assessment")

        asyncio.run(scenario())


class TestStats:
    def test_stats_expose_serving_counters_and_live_depths(self):
        async def scenario():
            service = make_service()
            async with ClosureServer(service, tiny_config()) as server:
                async with Client(*server.address) as client:
                    await client.rpc(op="hello", args=["alice"])
                    await client.rpc(op="query", args=["0", "9"])
                    await client.run_closure_to_completion()
                    stats = await client.rpc(op="stats")
                    serving = stats["serving"]
                    assert serving["active_requests"] == 0
                    assert serving["queue_depth"] == 0
                    assert serving["clients"]["alice"]["admitted"] >= 2
                    assert "queue_depth" in stats["stats"]
                    prometheus = (await client.rpc(op="stats", args=["prometheus"]))[
                        "prometheus"
                    ]
                    for metric in (
                        "repro_serving_requests_total",
                        "repro_serving_quanta_total",
                        "repro_serving_quantum_seconds",
                        "repro_serving_queue_depth",
                        "repro_serving_client_requests_total",
                        "repro_queue_depth ",
                    ):
                        assert metric in prometheus, metric

        asyncio.run(scenario())

    def test_quantum_spans_are_traced(self):
        async def scenario():
            service = make_service(tracing=True)
            async with ClosureServer(service, tiny_config()) as server:
                async with Client(*server.address) as client:
                    await client.rpc(op="hello", args=["alice"])
                    await client.run_closure_to_completion()
            traces = service.tracer.recent()
            assert any(
                span.name == "serving_quantum"
                for trace in traces
                for span in trace.spans
            )

        asyncio.run(scenario())
