"""Tests for the continuation store: ownership, eviction, adoption."""

import pytest

from repro.serving import ContinuationStore, ProtocolError, SavedQueryState


def state(version="v1"):
    return SavedQueryState(kind="reachability", catalog_version=version)


class TestOwnership:
    def test_put_take_round_trips_the_state(self):
        store = ContinuationStore()
        token = store.put(state(), client="alice")
        taken = store.take(token, client="alice")
        assert taken.kind == "reachability"
        assert taken.catalog_version == "v1"
        assert len(store) == 0

    def test_take_is_single_shot(self):
        store = ContinuationStore()
        token = store.put(state(), client="alice")
        store.take(token, client="alice")
        with pytest.raises(ProtocolError, match="unknown continuation token"):
            store.take(token, client="alice")

    def test_tokens_are_not_transferable(self):
        store = ContinuationStore()
        token = store.put(state(), client="alice")
        with pytest.raises(ProtocolError, match="belongs to another client"):
            store.take(token, client="mallory")
        # The failed take must not consume the state.
        assert store.take(token, client="alice") is not None

    def test_drop_client_frees_only_that_clients_states(self):
        store = ContinuationStore()
        store.put(state(), client="alice")
        store.put(state(), client="alice")
        bob = store.put(state(), client="bob")
        assert store.drop_client("alice") == 2
        assert len(store) == 1
        assert store.take(bob, client="bob") is not None

    def test_adopt_transfers_ownership(self):
        store = ContinuationStore()
        token = store.put(state(), client="conn-1")
        assert store.adopt("conn-1", "alice") == 1
        assert store.take(token, client="alice") is not None

    def test_discard_respects_ownership(self):
        store = ContinuationStore()
        token = store.put(state(), client="alice")
        assert not store.discard(token, client="bob")
        assert store.discard(token, client="alice")
        assert not store.discard(token, client="alice")


class TestBounds:
    def test_capacity_evicts_oldest_first(self):
        store = ContinuationStore(capacity=2)
        first = store.put(state(), client="a")
        store.put(state(), client="a")
        store.put(state(), client="a")
        assert len(store) == 2
        assert store.evictions == 1
        with pytest.raises(ProtocolError, match="unknown continuation token"):
            store.take(first, client="a")

    def test_zero_capacity_is_rejected(self):
        with pytest.raises(ValueError):
            ContinuationStore(capacity=0)

    def test_states_are_pickled_on_put(self):
        # The plain-data contract is enforced at suspension time: anything
        # unpicklable in the state fails put(), not a later resume.
        store = ContinuationStore()
        bad = state()
        bad.current = {"handle": lambda: None}
        with pytest.raises(Exception):
            store.put(bad, client="a")
