"""Tests for admission control: slots, queueing, token buckets, deadlines."""

import pytest

from repro.observability import MetricsRegistry
from repro.serving import AdmissionConfig, AdmissionController, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def controller(clock, registry=None, **overrides):
    defaults = dict(max_concurrent=2, max_queue=2, client_rate=10.0, client_burst=10.0)
    defaults.update(overrides)
    return AdmissionController(
        AdmissionConfig(**defaults), registry=registry, clock=clock
    )


class TestSlots:
    def test_runs_until_slots_fill_then_queues_then_rejects(self, clock):
        admission = controller(clock)
        assert admission.admit("a").status == "run"
        assert admission.admit("b").status == "run"
        assert admission.admit("c").status == "queue"
        assert admission.admit("d").status == "queue"
        rejected = admission.admit("e")
        assert rejected.status == "reject"
        assert rejected.reason == "queue_full"
        assert rejected.retry_after > 0

    def test_finish_frees_the_slot_for_promotion(self, clock):
        admission = controller(clock)
        admission.admit("a")
        admission.admit("b")
        assert admission.admit("c").status == "queue"
        admission.finish("a")
        assert admission.free_slots == 1
        admission.start_queued("c")
        assert admission.active == 2
        assert admission.queued == 0

    def test_abandon_queued_frees_the_queue_spot(self, clock):
        admission = controller(clock, max_concurrent=1, max_queue=1)
        admission.admit("a")
        assert admission.admit("b").status == "queue"
        admission.abandon_queued("b", reason="deadline")
        assert admission.queued == 0
        # The spot is reusable immediately.
        assert admission.admit("c").status == "queue"

    def test_transition_guards(self, clock):
        admission = controller(clock)
        with pytest.raises(RuntimeError):
            admission.start_queued("nobody")
        with pytest.raises(RuntimeError):
            admission.abandon_queued("nobody")
        with pytest.raises(RuntimeError):
            admission.finish("nobody")


class TestTokenBuckets:
    def test_burst_exhaustion_rate_limits(self, clock):
        admission = controller(clock, max_concurrent=100, heavy_cost=5.0)
        # 10-token burst: two heavy admissions drain it.
        assert admission.admit("hog", cost=5.0).status == "run"
        assert admission.admit("hog", cost=5.0).status == "run"
        rejected = admission.admit("hog", cost=5.0)
        assert rejected.status == "reject"
        assert rejected.reason == "rate_limited"
        # 5 missing tokens at 10/s refill: half a second away.
        assert rejected.retry_after == pytest.approx(0.5)

    def test_one_client_throttling_leaves_others_unaffected(self, clock):
        admission = controller(clock, max_concurrent=100)
        for _ in range(3):
            admission.admit("hog", cost=5.0)
        assert admission.admit("hog", cost=5.0).status == "reject"
        assert admission.admit("polite", cost=1.0).status == "run"

    def test_refill_restores_admission(self, clock):
        admission = controller(clock, max_concurrent=100)
        admission.admit("hog", cost=10.0)
        assert admission.admit("hog", cost=10.0).status == "reject"
        clock.advance(1.0)  # 10 tokens/s
        assert admission.admit("hog", cost=10.0).status == "run"

    def test_bucket_caps_at_capacity(self, clock):
        bucket = TokenBucket(capacity=5.0, rate=100.0, now=clock())
        clock.advance(60.0)
        assert not bucket.take(6.0, clock())
        assert bucket.take(5.0, clock())


class TestTelemetry:
    def test_live_gauges_track_active_and_queued(self, clock):
        registry = MetricsRegistry()
        admission = controller(clock, registry=registry)
        active = registry.gauge("repro_serving_active_requests")
        depth = registry.gauge("repro_serving_queue_depth")
        admission.admit("a")
        admission.admit("b")
        admission.admit("c")
        assert active.value() == 2.0
        assert depth.value() == 1.0
        admission.finish("a")
        admission.start_queued("c")
        assert active.value() == 2.0
        assert depth.value() == 0.0

    def test_per_client_dispatch_counters(self, clock):
        registry = MetricsRegistry()
        admission = controller(clock, registry=registry)
        admission.admit("a")
        admission.finish("a")
        admission.admit("a")
        counter = registry.counter(
            "repro_serving_client_requests_total", labelnames=("client",)
        )
        assert counter.value(client="a") == 2.0

    def test_client_stats_reads_back_the_accounting(self, clock):
        admission = controller(clock, max_concurrent=1, max_queue=0)
        admission.admit("a", cost=4.0)
        admission.admit("b", cost=1.0)  # queue_full reject (slot taken)
        stats = admission.client_stats()
        assert stats["a"]["admitted"] == 1
        assert stats["a"]["active"] == 1
        assert stats["a"]["tokens"] == pytest.approx(6.0)
        assert stats["b"]["rejected"] == 1


class TestConfigValidation:
    def test_bad_knobs_raise(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_concurrent=0)
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue=-1)
        with pytest.raises(ValueError):
            AdmissionConfig(client_rate=0.0)
