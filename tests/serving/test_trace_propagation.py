"""End-to-end trace propagation through the network serving tier.

The acceptance shape for the observability PR: a query served over the
NDJSON protocol — preempted, suspended, and resumed across calls and even
across reconnects — yields ONE trace spanning the client command, its
admission wait, every serving quantum, and (on a placed pool) the worker
kernel spans, assembled from the per-segment records via
``Tracer.assemble``.  A second pair of runs proves the span tree is
bit-identical modulo timing.
"""

import asyncio

from repro.serving import ALL_SOURCES, ClosureServer
from repro.service import QueryService

from tests.observability.test_service_telemetry import (
    clique_line_fragmentation,
    cross_fragment_queries,
)
from tests.serving.test_server import (
    Client,
    make_service,
    suspend_once,
    tiny_config,
    uninterrupted_rows,
)


async def drain_call(client, **payload):
    """One closure/resume call; returns (rows, continuation|None, trace)."""
    await client.send(**payload)
    rows, token, trace = [], None, None
    while True:
        message = await client.recv()
        assert message.get("ok"), message
        rows.extend(message.get("page") or [])
        if message.get("done"):
            trace = message["trace"]
            break
        if message.get("suspended"):
            token = message["continuation"]
            trace = message["trace"]
            break
    return rows, token, trace


def tree_shape(trace):
    """The span tree with every timing- and identity-bearing field erased.

    Spans become ``(name, parent_position, attrs)`` rows where positions
    index into the merged span list — identical runs must produce identical
    shapes even though ids and durations differ.  Attributes that embed a
    trace id (``trace_echo``) are reduced to presence markers.
    """
    position = {span.span_id: index for index, span in enumerate(trace.spans)}
    rows = []
    for span in trace.spans:
        attrs = {
            key: ("<trace>" if key == "trace_echo" else value)
            for key, value in sorted(span.attributes.items())
        }
        parent = position.get(span.parent_id)
        if parent is None and span.parent_id is not None:
            parent = "<wire>"
        rows.append((span.name, parent, tuple(attrs.items())))
    return rows


class TestPointQueryPropagation:
    def test_query_yields_one_trace_with_admission_wait(self):
        async def scenario():
            service = make_service()
            async with ClosureServer(service, tiny_config()) as server:
                async with Client(*server.address) as client:
                    response = await client.rpc(op="query", args=["0", "9"])
            assert response["ok"]
            merged = service.tracer.assemble(response["trace"])
            assert merged is not None
            assert merged.root_name == "request"
            [root] = merged.find("request")
            assert root.attributes["op"] == "query"
            [wait] = merged.find("admission_wait")
            assert wait.parent_id == root.span_id
            # The service-side query span nests under the request root, so
            # the whole evaluation shares the client's trace id.
            [query_span] = merged.find("query")
            assert query_span.trace_id == merged.trace_id

        asyncio.run(scenario())

    def test_client_traceparent_is_adopted(self):
        async def scenario():
            service = make_service()
            header = f"00-{'ab' * 16}-{'cd' * 8}-01"
            async with ClosureServer(service, tiny_config()) as server:
                async with Client(*server.address) as client:
                    response = await client.rpc(
                        op="query", args=["0", "9"], traceparent=header
                    )
            assert response["trace"] == "ab" * 16
            merged = service.tracer.assemble("ab" * 16)
            [root] = merged.find("request")
            # The client's wire span id parents the server-side root; it
            # matches no local span, so the root stays top-level.
            assert root.parent_id == "cd" * 8
            assert merged.root_name == "request"

        asyncio.run(scenario())

    def test_malformed_traceparent_degrades_to_a_fresh_trace(self):
        async def scenario():
            service = make_service()
            async with ClosureServer(service, tiny_config()) as server:
                async with Client(*server.address) as client:
                    response = await client.rpc(
                        op="query", args=["0", "9"], traceparent="garbage-header"
                    )
            assert response["ok"]
            trace_id = response["trace"]
            assert len(trace_id) == 32 and trace_id != "garbage-header"
            assert service.tracer.assemble(trace_id) is not None

        asyncio.run(scenario())

    def test_trace_id_flows_even_when_tracing_is_disabled(self):
        async def scenario():
            service = make_service(tracing=False)
            async with ClosureServer(service, tiny_config()) as server:
                async with Client(*server.address) as client:
                    response = await client.rpc(op="query", args=["0", "9"])
            assert response["ok"]
            # Propagation is independent of recording: the id flows so an
            # upstream collector can stitch its side, but nothing is kept.
            assert len(response["trace"]) == 32
            assert service.tracer.assemble(response["trace"]) is None

        asyncio.run(scenario())


class TestClosurePropagation:
    def _run_closure(self, service, config=None, traceparent=None):
        """Drive a whole-graph closure to completion over the network.

        Returns (rows, trace ids seen per call, number of calls).
        """

        async def scenario():
            async with ClosureServer(service, config or tiny_config()) as server:
                async with Client(*server.address) as client:
                    await client.rpc(op="hello", args=["alice"])
                    payload = dict(op="closure", args=[ALL_SOURCES])
                    if traceparent is not None:
                        payload["traceparent"] = traceparent
                    rows, token, trace = await drain_call(client, **payload)
                    traces, calls = [trace], 1
                    while token:
                        more, token, trace = await drain_call(
                            client, op="resume", args=[token]
                        )
                        rows.extend(more)
                        traces.append(trace)
                        calls += 1
            return rows, traces, calls

        return asyncio.run(scenario())

    def test_suspend_resume_yields_one_chained_trace(self):
        service = make_service()
        rows, traces, calls = self._run_closure(service)
        assert calls >= 3, "the whole-graph closure must actually suspend"
        assert rows == uninterrupted_rows(service)
        # Every call — the opener and each resume — reported the same trace.
        assert len(set(traces)) == 1
        merged = service.tracer.assemble(traces[0])
        assert merged is not None

        # One request-root segment per call, chained: the opener is the only
        # top-level span and each resume's root parents under the segment
        # that suspended it (the context rides the pickled saved state).
        requests = merged.find("request")
        assert len(requests) == calls
        assert requests[0].parent_id is None
        for previous, current in zip(requests, requests[1:]):
            assert current.parent_id == previous.span_id
        top_level = [span for span in merged.spans if span.parent_id is None]
        assert top_level == [requests[0]]

        # Each call paid admission and ran exactly one quantum
        # (quanta_per_call=1); every quantum parents under its call's root.
        assert len(merged.find("admission_wait")) == calls
        quanta = merged.find("serving_quantum")
        assert len(quanta) == calls
        request_ids = {span.span_id for span in requests}
        assert all(span.parent_id in request_ids for span in quanta)
        assert [span.attributes["exhausted"] for span in quanta].count(True) == 1
        assert quanta[-1].attributes["exhausted"] is True

    def test_span_tree_is_bit_identical_modulo_timing(self):
        first_service = make_service()
        first_rows, first_traces, _ = self._run_closure(first_service)
        second_service = make_service()
        second_rows, second_traces, _ = self._run_closure(second_service)
        assert first_rows == second_rows
        first = first_service.tracer.assemble(first_traces[0])
        second = second_service.tracer.assemble(second_traces[0])
        assert tree_shape(first) == tree_shape(second)

    def test_closure_adopts_the_client_traceparent(self):
        service = make_service()
        header = f"00-{'12' * 16}-{'34' * 8}-01"
        rows, traces, calls = self._run_closure(service, traceparent=header)
        assert set(traces) == {"12" * 16}
        merged = service.tracer.assemble("12" * 16)
        requests = merged.find("request")
        assert len(requests) == calls
        # The opener parents under the client's wire span (top-level in the
        # merged view); the resumes chain locally as usual.
        assert requests[0].parent_id == "34" * 8
        assert merged.root_name == "request"

    def test_disconnect_mid_stream_keeps_one_trace(self):
        async def scenario():
            service = make_service()
            async with ClosureServer(service, tiny_config()) as server:
                async with Client(*server.address) as first:
                    await first.rpc(op="hello", args=["alice"])
                    await first.send(op="closure", args=[ALL_SOURCES])
                    rows, token, trace = [], None, None
                    while token is None:
                        message = await first.recv()
                        assert message.get("ok"), message
                        rows.extend(message.get("page") or [])
                        token = message.get("continuation")
                        trace = message.get("trace", trace)
                    assert not message.get("done")
                # The connection died mid-stream; the identified client's
                # continuation (and its pickled trace context) survived.
                async with Client(*server.address) as second:
                    await second.rpc(op="hello", args=["alice"])
                    calls = 1
                    while token:
                        more, token, resumed = await drain_call(
                            second, op="resume", args=[token]
                        )
                        rows.extend(more)
                        assert resumed == trace
                        calls += 1
                return service, rows, trace, calls

            return None

        service, rows, trace, calls = asyncio.run(scenario())
        assert rows == uninterrupted_rows(service)
        merged = service.tracer.assemble(trace)
        requests = merged.find("request")
        assert len(requests) == calls
        assert [span for span in merged.spans if span.parent_id is None] == [
            requests[0]
        ]
        clients = {span.attributes["client"] for span in requests}
        assert clients == {"alice"}


class TestPlacedPoolPropagation:
    def test_worker_kernel_spans_join_the_client_trace(self):
        async def scenario():
            fragmentation = clique_line_fragmentation()
            pairs = [
                str(node)
                for pair in cross_fragment_queries()
                for node in pair
            ]
            with QueryService(
                fragmentation, placement="round_robin", workers=3
            ) as service:
                async with ClosureServer(service, tiny_config()) as server:
                    async with Client(*server.address) as client:
                        response = await client.rpc(op="batch", args=pairs)
                assert response["ok"], response
                trace_id = response["trace"]
                merged = service.tracer.assemble(trace_id)
                assert merged.root_name == "request"
                # The batch dispatched routed tasks to worker processes; the
                # trace id crossed the pool's task queues and came back as
                # the workers' echo on every remote evaluate span.
                ran_tasks = service._pool.last_task_workers
                assert ran_tasks, "the batch must have dispatched routed tasks"
                worker_spans = merged.find("worker_evaluate")
                assert worker_spans
                assert all(span.remote for span in worker_spans)
                assert {
                    span.attributes["trace_echo"] for span in worker_spans
                } == {trace_id}
                # Every worker kernel span parents under its worker span and
                # names the kernel backend that ran the fragment.
                kernels = merged.find("kernel")
                assert len(kernels) == len(ran_tasks)
                worker_ids = {span.span_id for span in worker_spans}
                assert all(span.parent_id in worker_ids for span in kernels)
                for span in kernels:
                    assert isinstance(span.attributes["backend"], str)
                    assert span.attributes["backend"]

        asyncio.run(scenario())
