"""Tests for the preemptable closure iterator and its resume contract.

The load-bearing property is *bit-identical resume*: however a closure run
is chopped into quanta, row caps, pickled suspensions, and resumptions, the
concatenated rows equal the uninterrupted run's exactly.
"""

import pickle

import pytest

from repro.exceptions import ReproError
from repro.generators import two_cluster_dumbbell
from repro.graph.compact import CompactGraph
from repro.serving import (
    ALL_SOURCES,
    PreemptableClosureIterator,
    SavedQueryState,
    StaleStateError,
)


@pytest.fixture(scope="module")
def compact():
    return CompactGraph.from_digraph(two_cluster_dumbbell(5, bridge_nodes=2))


def run_to_completion(iterator):
    rows = []
    while not iterator.exhausted:
        rows.extend(iterator.run_quantum(float("inf")).rows)
    return rows


def reference_rows(compact, kind, sources=ALL_SOURCES):
    return run_to_completion(
        PreemptableClosureIterator(compact, sources, kind=kind, catalog_version="v1")
    )


class TestDeterminism:
    @pytest.mark.parametrize("kind", ["shortest_path", "reachability"])
    def test_uninterrupted_runs_are_repeatable(self, compact, kind):
        assert reference_rows(compact, kind) == reference_rows(compact, kind)

    def test_whole_graph_covers_every_source(self, compact):
        rows = reference_rows(compact, "reachability")
        assert {row[0] for row in rows} == set(
            compact.node_of(i) for i in range(compact.node_count())
        )

    def test_single_source_is_a_slice_of_the_whole_graph(self, compact):
        source = compact.node_of(0)
        single = reference_rows(compact, "shortest_path", sources=source)
        whole = reference_rows(compact, "shortest_path")
        assert single == [row for row in whole if row[0] == source]


class TestResumeContract:
    @pytest.mark.parametrize("kind", ["shortest_path", "reachability"])
    @pytest.mark.parametrize("chunk", [1, 3, 7])
    def test_pickle_round_trip_resume_is_bit_identical(self, compact, kind, chunk):
        # The satellite requirement: suspend every `chunk` rows, pickle the
        # saved state, resume from the unpickled copy — concatenation equals
        # the uninterrupted run exactly.
        reference = reference_rows(compact, kind)
        iterator = PreemptableClosureIterator(
            compact, ALL_SOURCES, kind=kind, catalog_version="v1"
        )
        rows = []
        while not iterator.exhausted:
            rows.extend(iterator.run_quantum(float("inf"), max_rows=chunk).rows)
            state = pickle.loads(pickle.dumps(iterator.save()))
            assert isinstance(state, SavedQueryState)
            iterator = PreemptableClosureIterator.from_state(
                compact, state, catalog_version="v1"
            )
        assert rows == reference
        assert iterator.produced == len(reference)

    def test_saved_state_is_immune_to_the_iterator_running_on(self, compact):
        iterator = PreemptableClosureIterator(
            compact, ALL_SOURCES, kind="shortest_path", catalog_version="v1"
        )
        head = iterator.run_quantum(float("inf"), max_rows=4).rows
        state = iterator.save()
        # Run the original to completion *after* saving; the saved state
        # must still resume from the suspension point, not the end.
        tail_direct = run_to_completion(iterator)
        resumed = PreemptableClosureIterator.from_state(
            compact, state, catalog_version="v1"
        )
        assert run_to_completion(resumed) == tail_direct
        assert head + tail_direct == reference_rows(compact, "shortest_path")

    def test_stale_catalog_version_is_rejected(self, compact):
        iterator = PreemptableClosureIterator(
            compact, ALL_SOURCES, kind="reachability", catalog_version="v1"
        )
        iterator.run_quantum(float("inf"), max_rows=2)
        state = iterator.save()
        with pytest.raises(StaleStateError, match="stale"):
            PreemptableClosureIterator.from_state(compact, state, catalog_version="v2")


class TestQuanta:
    def test_tiny_budget_still_makes_progress(self, compact):
        iterator = PreemptableClosureIterator(
            compact, ALL_SOURCES, kind="shortest_path", catalog_version="v1"
        )
        report = iterator.run_quantum(0.0)
        # A zero budget must not spin forever nor stall: at least one step.
        assert report.seconds >= 0.0
        assert not iterator.exhausted

    def test_row_cap_bounds_every_quantum(self, compact):
        iterator = PreemptableClosureIterator(
            compact, ALL_SOURCES, kind="reachability", catalog_version="v1"
        )
        while not iterator.exhausted:
            assert len(iterator.run_quantum(float("inf"), max_rows=3).rows) <= 3

    def test_unknown_source_raises(self, compact):
        with pytest.raises(ReproError, match="unknown closure source"):
            PreemptableClosureIterator(compact, "no-such-node")

    def test_unsupported_kind_raises(self, compact):
        with pytest.raises(ReproError, match="supports kinds"):
            PreemptableClosureIterator(compact, ALL_SOURCES, kind="widest_path")
