"""Property-based integration tests: the disconnection set approach is lossless.

For every randomly generated clustered graph, every fragmentation produced by
the paper's algorithms, and every source/destination pair drawn, the engine's
answer must equal the centralised Dijkstra answer — the "correct and precise"
requirement of Sec. 2.1.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.closure import reachability_semiring, shortest_path_cost
from repro.disconnection import DisconnectionSetEngine
from repro.exceptions import DisconnectedError, NoChainError
from repro.fragmentation import (
    BondEnergyFragmenter,
    CenterBasedFragmenter,
    LinearFragmenter,
)
from repro.graph import DiGraph, Point, is_reachable

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _clustered_graph(seed: int, cluster_count: int, cluster_size: int) -> DiGraph:
    """A connected, clustered, symmetric weighted graph with coordinates."""
    rng = random.Random(seed)
    graph = DiGraph()
    for cluster in range(cluster_count):
        offset = cluster * 30.0
        members = [cluster * cluster_size + index for index in range(cluster_size)]
        for node in members:
            graph.set_coordinate(node, Point(offset + rng.uniform(0, 10), rng.uniform(0, 10)))
        # Spanning path + random chords inside the cluster.
        for a, b in zip(members, members[1:]):
            graph.add_symmetric_edge(a, b, rng.uniform(1, 5))
        for _ in range(cluster_size):
            a, b = rng.choice(members), rng.choice(members)
            if a != b:
                graph.add_symmetric_edge(a, b, rng.uniform(1, 5))
    # Chain the clusters with one or two border edges.
    for cluster in range(cluster_count - 1):
        left = cluster * cluster_size + cluster_size - 1
        right = (cluster + 1) * cluster_size
        graph.add_symmetric_edge(left, right, rng.uniform(3, 8))
        if rng.random() < 0.5:
            graph.add_symmetric_edge(left - 1, right + 1, rng.uniform(3, 8))
    return graph


@st.composite
def engine_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=2_000))
    cluster_count = draw(st.integers(min_value=2, max_value=4))
    cluster_size = draw(st.integers(min_value=4, max_value=7))
    graph = _clustered_graph(seed, cluster_count, cluster_size)
    fragmenter_name = draw(st.sampled_from(["center", "bond", "linear"]))
    if fragmenter_name == "center":
        fragmenter = CenterBasedFragmenter(cluster_count, center_selection="distributed")
    elif fragmenter_name == "bond":
        fragmenter = BondEnergyFragmenter(cluster_count, restarts=2)
    else:
        fragmenter = LinearFragmenter(cluster_count)
    node_count = cluster_count * cluster_size
    source = draw(st.integers(min_value=0, max_value=node_count - 1))
    target = draw(st.integers(min_value=0, max_value=node_count - 1))
    return graph, fragmenter, source, target


class TestEngineMatchesCentralized:
    @SETTINGS
    @given(case=engine_cases())
    def test_shortest_path_answers_are_lossless(self, case):
        graph, fragmenter, source, target = case
        fragmentation = fragmenter.fragment(graph)
        fragmentation.validate()
        engine = DisconnectionSetEngine(fragmentation)
        try:
            expected = shortest_path_cost(graph, source, target)
        except DisconnectedError:
            expected = None
        try:
            answer = engine.query(source, target)
            value = answer.value
        except NoChainError:
            value = None
        if expected is None:
            assert value is None
        else:
            assert value == pytest.approx(expected)

    @SETTINGS
    @given(case=engine_cases())
    def test_reachability_answers_are_lossless(self, case):
        graph, fragmenter, source, target = case
        fragmentation = fragmenter.fragment(graph)
        engine = DisconnectionSetEngine(fragmentation, semiring=reachability_semiring())
        expected = is_reachable(graph, source, target)
        assert engine.is_connected(source, target) == expected
