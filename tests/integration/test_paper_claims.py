"""Integration tests pinning the paper's section-level performance claims.

These are the figure-level statements of Sec. 2.1/2.2 (speed-up, iteration
reduction, selectivity of small disconnection sets) verified on small
instances; the full-size regenerations live in benchmarks/.
"""

import pytest

from repro.closure import seminaive_transitive_closure
from repro.disconnection import DisconnectionSetEngine, precompute_complementary_information
from repro.fragmentation import (
    CenterBasedFragmenter,
    GroundTruthFragmenter,
    HashFragmenter,
    characterize,
    complementary_information_size,
    fragment_diameters,
)
from repro.generators import cross_cluster_queries
from repro.graph import hop_diameter
from repro.parallel import ParallelSimulator


class TestIterationReduction:
    """"The diameter of each subgraph is highly reduced" (Sec. 2.1)."""

    def test_fragment_diameters_are_smaller_than_graph_diameter(self, small_transportation_network):
        network = small_transportation_network
        fragmentation = GroundTruthFragmenter(network.clusters).fragment(network.graph)
        graph_diameter = hop_diameter(network.graph)
        assert max(fragment_diameters(fragmentation)) < graph_diameter

    def test_local_closures_need_fewer_iterations_than_global(self, small_transportation_network):
        network = small_transportation_network
        fragmentation = GroundTruthFragmenter(network.clusters).fragment(network.graph)
        global_iterations = seminaive_transitive_closure(network.graph).statistics.iterations
        for fragment in fragmentation.fragments:
            local = seminaive_transitive_closure(fragmentation.fragment_subgraph(fragment.fragment_id))
            assert local.statistics.iterations <= global_iterations


class TestSpeedup:
    """"For good fragmentations, it gives a linear speed-up" (Sec. 1)."""

    def test_parallel_beats_sequential_on_cross_cluster_queries(self, small_transportation_network):
        network = small_transportation_network
        fragmentation = GroundTruthFragmenter(network.clusters).fragment(network.graph)
        simulator = ParallelSimulator(fragmentation)
        queries = cross_cluster_queries(network.clusters, 5, seed=2, minimum_cluster_distance=3)
        result = simulator.simulate_workload(queries, include_centralized_baseline=True)
        # End-to-end queries touch all 4 fragments; speedup should be well
        # above 1 and bounded by the fragment count.
        assert 1.5 <= result.overall_speedup() <= 4.5
        assert result.speedup_vs_centralized() > 1.0


class TestSelectivity:
    """Small disconnection sets mean less precomputed data and cheaper searches."""

    def test_good_fragmentation_needs_less_complementary_information(self, small_transportation_network):
        network = small_transportation_network
        good = GroundTruthFragmenter(network.clusters).fragment(network.graph)
        bad = HashFragmenter(4).fragment(network.graph)
        assert complementary_information_size(good) < complementary_information_size(bad)
        good_info = precompute_complementary_information(good)
        assert good_info.size_in_facts() <= complementary_information_size(good)

    def test_smaller_disconnection_sets_mean_less_site_work(self, small_transportation_network):
        network = small_transportation_network
        good = GroundTruthFragmenter(network.clusters).fragment(network.graph)
        bad = HashFragmenter(4).fragment(network.graph)
        good_engine = DisconnectionSetEngine(good)
        bad_engine = DisconnectionSetEngine(bad)
        queries = cross_cluster_queries(network.clusters, 3, seed=5)
        good_work = sum(
            good_engine.query(q.source, q.target).report.total_site_tuples() for q in queries
        )
        bad_work = sum(
            bad_engine.query(q.source, q.target).report.total_site_tuples() for q in queries
        )
        assert good_work < bad_work


class TestWorkloadBalanceClaim:
    """Center-based fragmentation balances fragment sizes (Sec. 3.1 goal)."""

    def test_center_based_fragments_are_balanced(self, small_transportation_network):
        network = small_transportation_network
        fragmentation = CenterBasedFragmenter(4, center_selection="distributed").fragment(network.graph)
        characteristics = characterize(fragmentation, include_diameter=False)
        # AF (mean absolute deviation of fragment sizes) stays well below the
        # mean fragment size itself.
        assert characteristics.fragment_size_deviation < characteristics.average_fragment_size
