"""End-to-end integration tests: generator -> fragmenter -> engine -> simulator."""

import pytest

from repro.closure import shortest_path_cost
from repro.disconnection import DisconnectionSetEngine
from repro.exceptions import DisconnectedError
from repro.fragmentation import (
    BondEnergyFragmenter,
    CenterBasedFragmenter,
    GroundTruthFragmenter,
    LinearFragmenter,
    characterize,
)
from repro.generators import (
    european_railway_example,
    mixed_workload,
)
from repro.parallel import ParallelSimulator


class TestRailwayScenario:
    """The Amsterdam-to-Milan scenario of Sec. 2.1, end to end."""

    @pytest.fixture(scope="class")
    def setup(self):
        graph, countries = european_railway_example()
        clusters = [set(cities) for cities in countries.values()]
        fragmentation = GroundTruthFragmenter(clusters).fragment(graph)
        engine = DisconnectionSetEngine(fragmentation)
        return graph, fragmentation, engine

    def test_fragmentation_matches_countries(self, setup):
        _, fragmentation, _ = setup
        fragmentation.validate()
        assert fragmentation.fragment_count() == 3

    def test_amsterdam_to_milan(self, setup):
        graph, _, engine = setup
        expected = shortest_path_cost(graph, "amsterdam", "milan")
        answer = engine.query("amsterdam", "milan")
        assert answer.value == pytest.approx(expected)
        # The route crosses Holland -> Germany -> Italy: three fragments.
        assert len(answer.chain) == 3

    def test_dutch_query_answered_by_dutch_site_alone(self, setup):
        graph, _, engine = setup
        answer = engine.query("amsterdam", "eindhoven")
        assert answer.value == pytest.approx(shortest_path_cost(graph, "amsterdam", "eindhoven"))
        assert len(answer.report.site_work) == 1

    def test_every_city_pair_matches_centralized(self, setup):
        graph, _, engine = setup
        cities = graph.nodes()
        for source in cities[::3]:
            for target in cities[1::4]:
                if source == target:
                    continue
                assert engine.query(source, target).value == pytest.approx(
                    shortest_path_cost(graph, source, target)
                )


class TestFragmenterEnginePipeline:
    """Every paper fragmenter feeds the engine and preserves query answers."""

    @pytest.mark.parametrize(
        "make_fragmenter",
        [
            lambda: CenterBasedFragmenter(4, center_selection="distributed"),
            lambda: BondEnergyFragmenter(4),
            lambda: LinearFragmenter(4),
        ],
        ids=["center-based", "bond-energy", "linear"],
    )
    def test_queries_match_centralized(self, small_transportation_network, make_fragmenter):
        network = small_transportation_network
        graph = network.graph
        fragmentation = make_fragmenter().fragment(graph)
        fragmentation.validate()
        engine = DisconnectionSetEngine(fragmentation)
        workload = mixed_workload(graph, network.clusters, 8, cross_fraction=0.5, seed=13)
        for query in workload:
            try:
                expected = shortest_path_cost(graph, query.source, query.target)
            except DisconnectedError:
                expected = None
            answer = engine.query(query.source, query.target)
            if expected is None:
                assert not answer.exists()
            else:
                assert answer.value == pytest.approx(expected)

    def test_fragmentation_quality_feeds_simulation(self, small_transportation_network):
        network = small_transportation_network
        graph = network.graph
        fragmentation = CenterBasedFragmenter(4, center_selection="distributed").fragment(graph)
        characteristics = characterize(fragmentation)
        simulator = ParallelSimulator(fragmentation)
        workload = mixed_workload(graph, network.clusters, 5, cross_fraction=0.8, seed=21)
        result = simulator.simulate_workload(workload, include_centralized_baseline=True)
        assert characteristics.fragment_count == 4
        assert result.overall_speedup() >= 1.0
        assert result.speedup_vs_centralized() > 1.0
