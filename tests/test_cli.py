"""Tests for the command-line interface (python -m repro ...)."""

import json

import pytest

from repro.cli import main
from repro.graph import load_json


@pytest.fixture
def graph_file(tmp_path):
    """Generate a small transportation graph JSON via the CLI itself."""
    path = tmp_path / "graph.json"
    exit_code = main(
        [
            "generate", str(path),
            "--kind", "transportation",
            "--clusters", "3",
            "--nodes", "8",
            "--seed", "5",
        ]
    )
    assert exit_code == 0
    return path


class TestGenerate:
    def test_generate_transportation(self, graph_file, capsys):
        graph = load_json(graph_file)
        assert graph.node_count() == 24
        assert graph.has_coordinates()

    def test_generate_random(self, tmp_path, capsys):
        path = tmp_path / "random.json"
        exit_code = main(["generate", str(path), "--kind", "random", "--nodes", "30", "--seed", "1"])
        assert exit_code == 0
        assert load_json(path).node_count() == 30


class TestFragment:
    def test_fragment_with_named_algorithm(self, graph_file, capsys, tmp_path):
        output = tmp_path / "fragmentation.json"
        exit_code = main(
            ["fragment", str(graph_file), "--algorithm", "linear", "--fragments", "3",
             "--output", str(output)]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "linear" in captured.out
        document = json.loads(output.read_text())
        assert document["algorithm"] == "linear"
        assert len(document["fragments"]) >= 2

    def test_fragment_with_advisor(self, graph_file, capsys):
        exit_code = main(["fragment", str(graph_file), "--algorithm", "auto", "--fragments", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "advisor" in captured.out
        assert "DS" in captured.out


class TestQuery:
    def test_query_cost(self, graph_file, capsys):
        exit_code = main(
            ["query", str(graph_file), "0", "20", "--algorithm", "center-distributed", "--fragments", "3"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "cost:" in captured.out
        assert "fragment chain:" in captured.out

    def test_query_with_route(self, graph_file, capsys):
        exit_code = main(
            ["query", str(graph_file), "0", "20", "--algorithm", "linear", "--fragments", "3", "--route"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "route:" in captured.out

    def test_query_unknown_node_reports_error(self, graph_file, capsys):
        exit_code = main(
            ["query", str(graph_file), "0", "no-such-node", "--algorithm", "linear", "--fragments", "2"]
        )
        assert exit_code == 2
        assert "error" in capsys.readouterr().err


class TestExperimentCommand:
    def test_experiment_table1(self, capsys):
        exit_code = main(["experiment", "table1", "--trials", "1", "--seed", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "bond-energy" in captured.out
