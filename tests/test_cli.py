"""Tests for the command-line interface (python -m repro ...)."""

import json

import pytest

from repro.cli import main
from repro.graph import load_json


@pytest.fixture
def graph_file(tmp_path):
    """Generate a small transportation graph JSON via the CLI itself."""
    path = tmp_path / "graph.json"
    exit_code = main(
        [
            "generate", str(path),
            "--kind", "transportation",
            "--clusters", "3",
            "--nodes", "8",
            "--seed", "5",
        ]
    )
    assert exit_code == 0
    return path


class TestGenerate:
    def test_generate_transportation(self, graph_file, capsys):
        graph = load_json(graph_file)
        assert graph.node_count() == 24
        assert graph.has_coordinates()

    def test_generate_random(self, tmp_path, capsys):
        path = tmp_path / "random.json"
        exit_code = main(["generate", str(path), "--kind", "random", "--nodes", "30", "--seed", "1"])
        assert exit_code == 0
        assert load_json(path).node_count() == 30


class TestFragment:
    def test_fragment_with_named_algorithm(self, graph_file, capsys, tmp_path):
        output = tmp_path / "fragmentation.json"
        exit_code = main(
            ["fragment", str(graph_file), "--algorithm", "linear", "--fragments", "3",
             "--output", str(output)]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "linear" in captured.out
        document = json.loads(output.read_text())
        assert document["algorithm"] == "linear"
        assert len(document["fragments"]) >= 2

    def test_fragment_with_advisor(self, graph_file, capsys):
        exit_code = main(["fragment", str(graph_file), "--algorithm", "auto", "--fragments", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "advisor" in captured.out
        assert "DS" in captured.out


class TestQuery:
    def test_query_cost(self, graph_file, capsys):
        exit_code = main(
            ["query", str(graph_file), "0", "20", "--algorithm", "center-distributed", "--fragments", "3"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "cost:" in captured.out
        assert "fragment chain:" in captured.out

    def test_query_with_route(self, graph_file, capsys):
        exit_code = main(
            ["query", str(graph_file), "0", "20", "--algorithm", "linear", "--fragments", "3", "--route"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "route:" in captured.out

    def test_query_unknown_node_reports_error(self, graph_file, capsys):
        exit_code = main(
            ["query", str(graph_file), "0", "no-such-node", "--algorithm", "linear", "--fragments", "2"]
        )
        assert exit_code == 2
        assert "error" in capsys.readouterr().err


class TestExperimentCommand:
    def test_experiment_table1(self, capsys):
        exit_code = main(["experiment", "table1", "--trials", "1", "--seed", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "bond-energy" in captured.out


@pytest.fixture
def snapshot_dir(graph_file, tmp_path, capsys):
    """Prepare a snapshot of the generated graph via the CLI itself."""
    path = tmp_path / "snapshot"
    exit_code = main(
        ["snapshot", str(graph_file), str(path), "--algorithm", "linear", "--fragments", "3"]
    )
    capsys.readouterr()
    assert exit_code == 0
    return path


class TestSnapshotCommand:
    def test_snapshot_writes_manifest_and_payload(self, snapshot_dir, capsys):
        assert (snapshot_dir / "manifest.json").is_file()
        assert (snapshot_dir / "payload.pkl").is_file()

    def test_snapshot_prints_characteristics(self, graph_file, tmp_path, capsys):
        exit_code = main(["snapshot", str(graph_file), str(tmp_path / "s"), "--algorithm", "linear"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "version:" in captured.out
        assert "complementary_facts:" in captured.out


class TestBatchQueryCommand:
    def test_batch_query_from_snapshot(self, snapshot_dir, capsys):
        exit_code = main(["batch-query", str(snapshot_dir), "0:20", "0:20", "1:15", "--stats"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "loaded snapshot" in captured.out
        assert "0 -> 20" in captured.out
        assert "duplicate_queries_saved: 1" in captured.out

    def test_batch_query_from_graph_json(self, graph_file, capsys):
        exit_code = main(
            ["batch-query", str(graph_file), "0:20", "--algorithm", "linear", "--fragments", "3"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "0 -> 20" in captured.out

    def test_batch_query_from_queries_file(self, snapshot_dir, tmp_path, capsys):
        queries = tmp_path / "queries.json"
        queries.write_text(json.dumps([[0, 20], [1, 15]]))
        exit_code = main(["batch-query", str(snapshot_dir), "--queries", str(queries)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "1 -> 15" in captured.out

    def test_batch_query_requires_queries(self, snapshot_dir, capsys):
        exit_code = main(["batch-query", str(snapshot_dir)])
        assert exit_code == 2
        assert "no queries" in capsys.readouterr().err


class TestServeCommand:
    def _serve(self, monkeypatch, capsys, source, script):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        exit_code = main(["serve", str(source)])
        return exit_code, capsys.readouterr()

    def test_serve_query_loop(self, snapshot_dir, monkeypatch, capsys):
        exit_code, captured = self._serve(
            monkeypatch, capsys, snapshot_dir, "query 0 20\nquery 0 20\nstats\nquit\n"
        )
        assert exit_code == 0
        assert captured.out.count("0 -> 20") == 2
        assert "(cached)" in captured.out
        assert "hit_rate: 0.5" in captured.out

    def test_serve_update_invalidates(self, snapshot_dir, monkeypatch, capsys):
        script = "query 0 20\nupdate 0 20 2.5\nquery 0 20\nquit\n"
        exit_code, captured = self._serve(monkeypatch, capsys, snapshot_dir, script)
        assert exit_code == 0
        assert "updated; fragment" in captured.out
        assert "value 2.5" in captured.out

    def test_serve_snapshot_command(self, snapshot_dir, tmp_path, monkeypatch, capsys):
        target = tmp_path / "resnap"
        exit_code, captured = self._serve(
            monkeypatch, capsys, snapshot_dir, f"snapshot {target}\nquit\n"
        )
        assert exit_code == 0
        assert (target / "manifest.json").is_file()

    def test_serve_reports_bad_commands(self, snapshot_dir, monkeypatch, capsys):
        # Bad lines (unknown commands, bad weights, unknown nodes) must not
        # take the long-lived server down.
        script = "bogus\nupdate 0 20 notanumber\nquery 0 no-such-node\nquery 0 20\nquit\n"
        exit_code, captured = self._serve(monkeypatch, capsys, snapshot_dir, script)
        assert exit_code == 0
        assert "unrecognised command" in captured.out
        assert "could not convert" in captured.out
        assert "0 -> 20: value" in captured.out

    def test_batch_query_rejects_non_snapshot_directory(self, tmp_path, capsys):
        exit_code = main(["batch-query", str(tmp_path), "0:20"])
        assert exit_code == 2
        assert "not a snapshot" in capsys.readouterr().err

    def test_batch_query_rejects_missing_source(self, tmp_path, capsys):
        exit_code = main(["batch-query", str(tmp_path / "nowhere.json"), "0:20"])
        assert exit_code == 2
        assert "does not exist" in capsys.readouterr().err
