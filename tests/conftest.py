"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.generators import (
    TransportationGraphConfig,
    european_railway_example,
    generate_transportation_graph,
    grid_graph,
    two_cluster_dumbbell,
)
from repro.graph import DiGraph, Point


@pytest.fixture
def triangle_graph() -> DiGraph:
    """A weighted directed triangle with an extra chord: 4 nodes, simple paths."""
    graph = DiGraph()
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("b", "c", 2.0)
    graph.add_edge("a", "c", 5.0)
    graph.add_edge("c", "d", 1.0)
    return graph


@pytest.fixture
def small_symmetric_graph() -> DiGraph:
    """A small symmetric graph with coordinates: two triangles joined by a bridge."""
    graph = DiGraph()
    coordinates = {
        1: (0.0, 0.0), 2: (1.0, 1.0), 3: (1.0, -1.0),
        4: (4.0, 0.0), 5: (5.0, 1.0), 6: (5.0, -1.0),
    }
    for node, point in coordinates.items():
        graph.set_coordinate(node, Point(*point))
    for a, b in [(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6), (3, 4)]:
        graph.add_symmetric_edge(a, b, 1.0)
    return graph


@pytest.fixture
def dumbbell_graph() -> DiGraph:
    """Two 5-cliques joined by one bridge edge (ideal 2-fragment input)."""
    return two_cluster_dumbbell(5)


@pytest.fixture
def small_grid() -> DiGraph:
    """A 4x4 grid graph with coordinates."""
    return grid_graph(4, 4)


@pytest.fixture(scope="session")
def small_transportation_network():
    """A small (4 clusters x 12 nodes) transportation graph, shared across tests."""
    config = TransportationGraphConfig(
        cluster_count=4,
        nodes_per_cluster=12,
        cluster_c1=280.0,
        cluster_c2=0.03,
        inter_cluster_edges=2,
    )
    return generate_transportation_graph(config, seed=11)


@pytest.fixture(scope="session")
def railway():
    """The European railway example graph and its country clusters."""
    graph, countries = european_railway_example()
    return graph, countries
