"""Unit tests for graph metrics and summary statistics."""

import pytest

from repro.generators import chain_graph, complete_graph, grid_graph
from repro.graph import (
    DiGraph,
    average_degree,
    clustering_ratio,
    coefficient_of_variation,
    degree_histogram,
    estimated_seminaive_iterations,
    mean,
    mean_absolute_deviation,
    standard_deviation,
    summarize,
)


class TestStatistics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_mean_absolute_deviation(self):
        # Values 2, 4, 6: mean 4, deviations 2, 0, 2 -> MAD 4/3.
        assert mean_absolute_deviation([2.0, 4.0, 6.0]) == pytest.approx(4.0 / 3.0)
        assert mean_absolute_deviation([]) == 0.0
        assert mean_absolute_deviation([5.0, 5.0]) == 0.0

    def test_standard_deviation(self):
        assert standard_deviation([2.0, 2.0, 2.0]) == 0.0
        assert standard_deviation([0.0, 2.0]) == 1.0

    def test_coefficient_of_variation(self):
        assert coefficient_of_variation([2.0, 2.0]) == 0.0
        assert coefficient_of_variation([0.0, 0.0]) == 0.0
        assert coefficient_of_variation([0.0, 2.0]) == 1.0


class TestSummaries:
    def test_summarize_chain(self):
        summary = summarize(chain_graph(5))
        assert summary.node_count == 5
        assert summary.undirected_edge_count == 4
        assert summary.diameter == 4
        assert summary.weak_component_count == 1

    def test_summarize_empty(self):
        summary = summarize(DiGraph())
        assert summary.node_count == 0
        assert summary.diameter == 0
        assert summary.density == 0.0

    def test_summary_as_dict_keys(self):
        summary = summarize(chain_graph(3)).as_dict()
        assert {"node_count", "edge_count", "diameter", "density"} <= set(summary)

    def test_degree_histogram_complete_graph(self):
        histogram = degree_histogram(complete_graph(4))
        assert histogram == {3: 4}

    def test_average_degree(self):
        assert average_degree(complete_graph(4)) == 3.0
        assert average_degree(DiGraph()) == 0.0

    def test_estimated_seminaive_iterations(self):
        assert estimated_seminaive_iterations(chain_graph(6)) == 6
        assert estimated_seminaive_iterations(DiGraph()) == 0


class TestClusteringRatio:
    def test_fully_internal(self):
        graph = complete_graph(4)
        assert clustering_ratio(graph, [set(range(4))]) == 1.0

    def test_mixed(self):
        graph = DiGraph()
        graph.add_symmetric_edge(0, 1)
        graph.add_symmetric_edge(2, 3)
        graph.add_symmetric_edge(1, 2)  # cross-cluster
        ratio = clustering_ratio(graph, [{0, 1}, {2, 3}])
        assert ratio == pytest.approx(2.0 / 3.0)

    def test_empty_graph(self):
        assert clustering_ratio(DiGraph(), [set()]) == 0.0
