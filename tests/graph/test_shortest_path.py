"""Unit tests for shortest-path algorithms."""

import math

import pytest

from repro.exceptions import DisconnectedError, NegativeWeightError, NodeNotFoundError
from repro.generators import chain_graph, grid_graph
from repro.graph import (
    DiGraph,
    bellman_ford,
    dijkstra,
    eccentricity,
    floyd_warshall,
    hop_diameter,
    multi_source_shortest_paths,
    shortest_path,
    shortest_path_length,
    single_source_shortest_paths,
)


@pytest.fixture
def weighted_graph() -> DiGraph:
    graph = DiGraph()
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("b", "c", 2.0)
    graph.add_edge("a", "c", 10.0)
    graph.add_edge("c", "d", 3.0)
    graph.add_edge("b", "d", 9.0)
    return graph


class TestDijkstra:
    def test_distances(self, weighted_graph):
        distances, _ = dijkstra(weighted_graph, "a")
        assert distances["c"] == 3.0
        assert distances["d"] == 6.0

    def test_target_restriction_stops_early(self, weighted_graph):
        distances, _ = dijkstra(weighted_graph, "a", targets=["b"])
        assert distances["b"] == 1.0

    def test_missing_source_raises(self, weighted_graph):
        with pytest.raises(NodeNotFoundError):
            dijkstra(weighted_graph, "ghost")

    def test_negative_weight_raises(self):
        graph = DiGraph([("a", "b", -1.0)])
        with pytest.raises(NegativeWeightError):
            dijkstra(graph, "a")

    def test_shortest_path_route(self, weighted_graph):
        length, path = shortest_path(weighted_graph, "a", "d")
        assert length == 6.0
        assert path == ["a", "b", "c", "d"]

    def test_shortest_path_length_unreachable_raises(self, weighted_graph):
        weighted_graph.add_node("island")
        with pytest.raises(DisconnectedError):
            shortest_path_length(weighted_graph, "a", "island")

    def test_single_source_shortest_paths(self, weighted_graph):
        distances = single_source_shortest_paths(weighted_graph, "a")
        assert distances["a"] == 0.0
        assert distances["d"] == 6.0


class TestMultiSource:
    def test_nearest_source_wins(self):
        graph = chain_graph(7, symmetric=True)
        distances = multi_source_shortest_paths(graph, [0, 6])
        assert distances[3] == 3.0
        assert distances[1] == 1.0
        assert distances[5] == 1.0

    def test_missing_sources_are_ignored(self):
        graph = chain_graph(3)
        distances = multi_source_shortest_paths(graph, [0, "ghost"])
        assert distances[2] == 2.0


class TestBellmanFordAndFloydWarshall:
    def test_bellman_ford_matches_dijkstra(self, weighted_graph):
        bf_distances, _ = bellman_ford(weighted_graph, "a")
        dj_distances, _ = dijkstra(weighted_graph, "a")
        assert bf_distances == dj_distances

    def test_bellman_ford_handles_negative_edges(self):
        graph = DiGraph([("a", "b", 4.0), ("a", "c", 2.0), ("c", "b", -1.0)])
        distances, _ = bellman_ford(graph, "a")
        assert distances["b"] == 1.0

    def test_bellman_ford_detects_negative_cycle(self):
        graph = DiGraph([("a", "b", 1.0), ("b", "a", -2.0)])
        with pytest.raises(NegativeWeightError):
            bellman_ford(graph, "a")

    def test_floyd_warshall_matches_dijkstra(self, weighted_graph):
        all_pairs = floyd_warshall(weighted_graph)
        for source in weighted_graph.nodes():
            distances, _ = dijkstra(weighted_graph, source)
            for target, value in distances.items():
                assert all_pairs[source][target] == pytest.approx(value)

    def test_floyd_warshall_unreachable_is_inf(self):
        graph = DiGraph([("a", "b")])
        graph.add_node("z")
        assert floyd_warshall(graph)["a"]["z"] == math.inf


class TestDiameter:
    def test_chain_diameter(self):
        assert hop_diameter(chain_graph(6)) == 5

    def test_grid_diameter(self):
        assert hop_diameter(grid_graph(3, 4)) == 5  # (3-1) + (4-1)

    def test_eccentricity_of_chain_end(self):
        graph = chain_graph(4)
        assert eccentricity(graph, 0) == 3
        assert eccentricity(graph, 1) == 2

    def test_empty_graph_diameter_zero(self):
        assert hop_diameter(DiGraph()) == 0
