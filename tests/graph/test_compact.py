"""Unit tests for the compact (CSR + interner) graph representation."""

import pickle

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph import CompactGraph, DiGraph


@pytest.fixture
def sample_graph():
    graph = DiGraph([("a", "b", 2.0), ("b", "c", 1.5), ("c", "a", 3.0), ("b", "d", 0.5)])
    graph.add_node("isolated")
    return graph


class TestConstruction:
    def test_from_digraph_preserves_nodes_and_edges(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        assert compact.node_count() == sample_graph.node_count()
        assert compact.edge_count() == sample_graph.edge_count()
        assert sorted(compact.weighted_edges()) == sorted(sample_graph.weighted_edges())

    def test_node_ids_follow_insertion_order(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        assert compact.nodes() == sample_graph.nodes()
        for index, node in enumerate(sample_graph.nodes()):
            assert compact.node_id(node) == index
            assert compact.node_of(index) == node

    def test_from_edges_interns_in_first_seen_order(self):
        compact = CompactGraph.from_edges([(5, 7, 1.0), (7, 5, 1.0), (5, 9, 2.0)])
        assert compact.nodes() == [5, 7, 9]

    def test_from_edges_keeps_parallel_edges(self):
        compact = CompactGraph.from_edges([(0, 1, 3.0), (0, 1, 1.0)])
        assert compact.edge_count() == 2
        weights = sorted(weight for _, weight in compact.successor_ids(0))
        assert weights == [1.0, 3.0]

    def test_explicit_node_universe_covers_isolated_nodes(self):
        compact = CompactGraph.from_edges([(0, 1, 1.0)], nodes=[2, 0, 1])
        assert compact.nodes() == [2, 0, 1]
        assert compact.out_degree_of_id(compact.node_id(2)) == 0

    def test_round_trip_to_digraph(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        assert compact.to_digraph() == sample_graph


class TestLookups:
    def test_unknown_node_raises(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        with pytest.raises(NodeNotFoundError):
            compact.node_id("ghost")

    def test_try_node_id_returns_minus_one(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        assert compact.try_node_id("ghost") == -1
        assert compact.try_node_id("a") == compact.node_id("a")

    def test_has_node(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        assert compact.has_node("isolated")
        assert not compact.has_node("ghost")


class TestAdjacency:
    def test_successors_match_digraph(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        for node in sample_graph.nodes():
            expected = sorted(sample_graph.successor_items(node), key=repr)
            actual = sorted(
                ((compact.node_of(target_id), weight)
                 for target_id, weight in compact.successor_ids(compact.node_id(node))),
                key=repr,
            )
            assert actual == expected

    def test_predecessors_match_digraph(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        for node in sample_graph.nodes():
            expected = sorted(sample_graph.predecessor_items(node), key=repr)
            actual = sorted(
                ((compact.node_of(source_id), weight)
                 for source_id, weight in compact.predecessor_ids(compact.node_id(node))),
                key=repr,
            )
            assert actual == expected

    def test_successor_masks_encode_adjacency(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        masks = compact.successor_masks()
        for node in sample_graph.nodes():
            node_id = compact.node_id(node)
            for successor in sample_graph.successors(node):
                assert (masks[node_id] >> compact.node_id(successor)) & 1
            assert masks[node_id].bit_count() == sample_graph.out_degree(node)


class TestPlainState:
    def test_state_round_trip(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        rebuilt = CompactGraph.from_state(compact.state())
        assert rebuilt.nodes() == compact.nodes()
        assert rebuilt.weighted_edges() == compact.weighted_edges()

    def test_pickle_round_trip(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        compact.successor_masks()  # populate the lazy cache; it must not leak
        rebuilt = pickle.loads(pickle.dumps(compact))
        assert rebuilt.weighted_edges() == compact.weighted_edges()
        assert rebuilt.successor_masks() == compact.successor_masks()

    def test_unknown_state_format_rejected(self):
        with pytest.raises(ValueError):
            CompactGraph.from_state({"format": "something-else"})
