"""Unit tests for the compact (CSR + interner) graph representation."""

import pickle

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph import CompactGraph, DiGraph


@pytest.fixture
def sample_graph():
    graph = DiGraph([("a", "b", 2.0), ("b", "c", 1.5), ("c", "a", 3.0), ("b", "d", 0.5)])
    graph.add_node("isolated")
    return graph


class TestConstruction:
    def test_from_digraph_preserves_nodes_and_edges(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        assert compact.node_count() == sample_graph.node_count()
        assert compact.edge_count() == sample_graph.edge_count()
        assert sorted(compact.weighted_edges()) == sorted(sample_graph.weighted_edges())

    def test_node_ids_follow_insertion_order(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        assert compact.nodes() == sample_graph.nodes()
        for index, node in enumerate(sample_graph.nodes()):
            assert compact.node_id(node) == index
            assert compact.node_of(index) == node

    def test_from_edges_interns_in_first_seen_order(self):
        compact = CompactGraph.from_edges([(5, 7, 1.0), (7, 5, 1.0), (5, 9, 2.0)])
        assert compact.nodes() == [5, 7, 9]

    def test_from_edges_keeps_parallel_edges(self):
        compact = CompactGraph.from_edges([(0, 1, 3.0), (0, 1, 1.0)])
        assert compact.edge_count() == 2
        weights = sorted(weight for _, weight in compact.successor_ids(0))
        assert weights == [1.0, 3.0]

    def test_explicit_node_universe_covers_isolated_nodes(self):
        compact = CompactGraph.from_edges([(0, 1, 1.0)], nodes=[2, 0, 1])
        assert compact.nodes() == [2, 0, 1]
        assert compact.out_degree_of_id(compact.node_id(2)) == 0

    def test_round_trip_to_digraph(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        assert compact.to_digraph() == sample_graph


class TestLookups:
    def test_unknown_node_raises(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        with pytest.raises(NodeNotFoundError):
            compact.node_id("ghost")

    def test_try_node_id_returns_minus_one(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        assert compact.try_node_id("ghost") == -1
        assert compact.try_node_id("a") == compact.node_id("a")

    def test_has_node(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        assert compact.has_node("isolated")
        assert not compact.has_node("ghost")


class TestAdjacency:
    def test_successors_match_digraph(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        for node in sample_graph.nodes():
            expected = sorted(sample_graph.successor_items(node), key=repr)
            actual = sorted(
                ((compact.node_of(target_id), weight)
                 for target_id, weight in compact.successor_ids(compact.node_id(node))),
                key=repr,
            )
            assert actual == expected

    def test_predecessors_match_digraph(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        for node in sample_graph.nodes():
            expected = sorted(sample_graph.predecessor_items(node), key=repr)
            actual = sorted(
                ((compact.node_of(source_id), weight)
                 for source_id, weight in compact.predecessor_ids(compact.node_id(node))),
                key=repr,
            )
            assert actual == expected

    def test_successor_masks_encode_adjacency(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        masks = compact.successor_masks()
        for node in sample_graph.nodes():
            node_id = compact.node_id(node)
            for successor in sample_graph.successors(node):
                assert (masks[node_id] >> compact.node_id(successor)) & 1
            assert masks[node_id].bit_count() == sample_graph.out_degree(node)


class TestPlainState:
    def test_state_round_trip(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        rebuilt = CompactGraph.from_state(compact.state())
        assert rebuilt.nodes() == compact.nodes()
        assert rebuilt.weighted_edges() == compact.weighted_edges()

    def test_pickle_round_trip(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        compact.successor_masks()  # populate the lazy cache; it must not leak
        rebuilt = pickle.loads(pickle.dumps(compact))
        assert rebuilt.weighted_edges() == compact.weighted_edges()
        assert rebuilt.successor_masks() == compact.successor_masks()

    def test_unknown_state_format_rejected(self):
        with pytest.raises(ValueError):
            CompactGraph.from_state({"format": "something-else"})


class TestApplyDelta:
    def test_insert_reaches_new_and_existing_nodes(self, sample_graph):
        from repro.graph import CompactDelta

        compact = CompactGraph.from_digraph(sample_graph)
        compact.successor_masks()
        compact.apply_delta(CompactDelta(inserts=(("d", "e", 4.0), ("a", "d", 1.0))))
        assert compact.has_node("e")
        assert ("d", "e", 4.0) in compact.weighted_edges()
        assert ("a", "d", 1.0) in compact.weighted_edges()
        # Existing ids never move: the interner is reused, new nodes appended.
        assert compact.node_id("a") == sample_graph.nodes().index("a")
        assert compact.node_id("e") == compact.node_count() - 1

    def test_delete_removes_the_pair_and_keeps_the_node_interned(self, sample_graph):
        from repro.graph import CompactDelta

        compact = CompactGraph.from_digraph(sample_graph)
        compact.apply_delta(CompactDelta(deletes=(("b", "d"),)))
        assert ("b", "d", 0.5) not in compact.weighted_edges()
        assert compact.has_node("d")  # isolated ids stay interned on purpose
        assert compact.out_degree_of_id(compact.node_id("d")) == 0

    def test_reweight_updates_both_directions(self, sample_graph):
        from repro.graph import CompactDelta

        compact = CompactGraph.from_digraph(sample_graph)
        compact.apply_delta(CompactDelta(reweights=(("a", "b", 9.0),)))
        assert ("a", "b", 9.0) in compact.weighted_edges()
        backwards = dict(
            (source_id, weight)
            for source_id, weight in compact.predecessor_ids(compact.node_id("b"))
        )
        assert backwards[compact.node_id("a")] == 9.0

    def test_delta_matches_a_from_scratch_build(self, sample_graph):
        from repro.graph import CompactDelta

        compact = CompactGraph.from_digraph(sample_graph)
        compact.apply_delta(
            CompactDelta(
                inserts=(("d", "a", 2.0),),
                deletes=(("c", "a"),),
                reweights=(("b", "c", 7.0),),
            )
        )
        mutated = sample_graph.copy()
        mutated.add_edge("d", "a", 2.0)
        mutated.remove_edge("c", "a")
        mutated.add_edge("b", "c", 7.0)
        assert sorted(compact.weighted_edges()) == sorted(mutated.weighted_edges())

    def test_masks_are_invalidated(self, sample_graph):
        from repro.graph import CompactDelta

        compact = CompactGraph.from_digraph(sample_graph)
        before_succ = compact.successor_masks()[compact.node_id("a")]
        compact.predecessor_masks()
        compact.apply_delta(CompactDelta(deletes=(("a", "b"),)))
        after_succ = compact.successor_masks()[compact.node_id("a")]
        assert after_succ != before_succ
        assert not (compact.predecessor_masks()[compact.node_id("b")] >> compact.node_id("a")) & 1

    def test_delete_missing_pair_is_ignored_and_reweight_upserts(self, sample_graph):
        from repro.graph import CompactDelta

        compact = CompactGraph.from_digraph(sample_graph)
        edges_before = sorted(compact.weighted_edges())
        compact.apply_delta(CompactDelta(deletes=(("a", "nope"),)))
        assert sorted(compact.weighted_edges()) == edges_before
        compact.apply_delta(CompactDelta(reweights=(("a", "c", 6.0),)))
        assert ("a", "c", 6.0) in compact.weighted_edges()

    def test_empty_delta_is_a_no_op(self, sample_graph):
        from repro.graph import CompactDelta

        compact = CompactGraph.from_digraph(sample_graph)
        offsets_before = compact.forward_csr[0]
        compact.apply_delta(CompactDelta())
        assert compact.forward_csr[0] is offsets_before

    def test_derived_caches_are_invalidated(self, sample_graph):
        """Update-then-query must never serve pre-delta kernel caches."""
        from repro.closure import (
            KERNEL_BACKENDS,
            chain_index,
            graph_shape,
            numpy_available,
            packed_matrix,
            reachability_rows,
        )
        from repro.graph import CompactDelta

        compact = CompactGraph.from_digraph(sample_graph)
        # Warm every derived structure the backends cache.
        chain_index(compact)
        graph_shape(compact)
        if numpy_available():
            packed_matrix(compact)
        compact.apply_delta(
            CompactDelta(inserts=(("d", "a", 2.0),), deletes=(("a", "b"),))
        )
        fresh = CompactGraph.from_state(
            {k: v for k, v in compact.state().items() if k != "derived"}
        )
        ids = list(range(compact.node_count()))
        for backend in KERNEL_BACKENDS:
            stale_rows, _ = reachability_rows(
                compact, ids, whole_graph=True, backend=backend
            )
            fresh_rows, _ = reachability_rows(
                fresh, ids, whole_graph=True, backend=backend
            )
            assert stale_rows == fresh_rows, backend

    def test_state_round_trip_preserves_derived_caches(self, sample_graph):
        from repro.closure import chain_index
        from repro.closure.backends import CHAIN_KEY

        compact = CompactGraph.from_digraph(sample_graph)
        index = chain_index(compact)
        reloaded = CompactGraph.from_state(compact.state())
        assert reloaded.derived_state(CHAIN_KEY) is not None
        for source_id in range(compact.node_count()):
            assert chain_index(reloaded).reachable_mask(source_id) == index.reachable_mask(
                source_id
            )

    def test_state_without_derived_matches_legacy_format(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        assert "derived" not in compact.state()


class TestOverlay:
    def _delta(self):
        from repro.graph import CompactDelta

        return CompactDelta(
            inserts=(("d", "e", 4.0), ("a", "d", 1.0)),
            deletes=(("c", "a"),),
            reweights=(("b", "c", 7.0),),
        )

    def test_small_delta_stays_in_the_overlay(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        compact.apply_delta(self._delta())
        assert compact.has_overlay()
        assert compact.overlay_depth() == 4
        mutated = sample_graph.copy()
        mutated.add_edge("d", "e", 4.0)
        mutated.add_edge("a", "d", 1.0)
        mutated.remove_edge("c", "a")
        mutated.add_edge("b", "c", 7.0)
        assert sorted(compact.weighted_edges()) == sorted(mutated.weighted_edges())
        assert compact.edge_count() == mutated.edge_count()

    def test_threshold_triggers_compaction(self, sample_graph):
        from repro.graph import CompactDelta, overlay_compaction_counts

        compact = CompactGraph.from_digraph(sample_graph)
        compact.overlay_threshold = 2
        before = overlay_compaction_counts().get("threshold", 0)
        compact.apply_delta(CompactDelta(inserts=(("a", "d", 1.0), ("d", "a", 2.0))))
        assert not compact.has_overlay()
        assert compact.overlay_depth() == 0
        assert overlay_compaction_counts().get("threshold", 0) == before + 1

    def test_csr_property_access_forces_compaction(self, sample_graph):
        from repro.graph import CompactDelta, overlay_compaction_counts

        compact = CompactGraph.from_digraph(sample_graph)
        compact.apply_delta(CompactDelta(inserts=(("a", "d", 1.0),)))
        assert compact.has_overlay()
        before = overlay_compaction_counts().get("csr_access", 0)
        compact.forward_csr
        assert not compact.has_overlay()
        assert overlay_compaction_counts().get("csr_access", 0) == before + 1

    def test_compaction_matches_a_from_scratch_build(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        compact.apply_delta(self._delta())
        compact.compact_now()
        mutated = sample_graph.copy()
        mutated.add_edge("d", "e", 4.0)
        mutated.add_edge("a", "d", 1.0)
        mutated.remove_edge("c", "a")
        mutated.add_edge("b", "c", 7.0)
        fresh = CompactGraph.from_digraph(mutated)
        assert list(compact.forward_csr[0]) == list(fresh.forward_csr[0])
        assert list(compact.forward_csr[1]) == list(fresh.forward_csr[1])
        assert list(compact.forward_csr[2]) == list(fresh.forward_csr[2])
        assert list(compact.backward_csr[0]) == list(fresh.backward_csr[0])
        assert list(compact.backward_csr[1]) == list(fresh.backward_csr[1])

    def test_masks_stay_current_through_the_overlay(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        compact.successor_masks()
        compact.predecessor_masks()
        compact.apply_delta(self._delta())
        assert compact.has_overlay()
        control = CompactGraph.from_state(
            {k: v for k, v in compact.state().items() if k != "derived"}
        )
        control.compact_now()
        assert compact.successor_masks() == control.successor_masks()
        assert compact.predecessor_masks() == control.predecessor_masks()

    def test_state_round_trip_with_a_live_overlay(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        compact.apply_delta(self._delta())
        assert compact.has_overlay()
        state = compact.state()
        assert "overlay" in state
        rebuilt = CompactGraph.from_state(state)
        assert rebuilt.has_overlay()
        assert rebuilt.overlay_depth() == compact.overlay_depth()
        assert sorted(rebuilt.weighted_edges()) == sorted(compact.weighted_edges())
        assert rebuilt.edge_count() == compact.edge_count()
        via_pickle = pickle.loads(pickle.dumps(compact))
        assert sorted(via_pickle.weighted_edges()) == sorted(compact.weighted_edges())

    def test_captured_state_survives_later_compaction(self, sample_graph):
        compact = CompactGraph.from_digraph(sample_graph)
        compact.apply_delta(self._delta())
        state = compact.state()
        edges_then = sorted(compact.weighted_edges())
        compact.compact_now()
        from repro.graph import CompactDelta

        compact.apply_delta(CompactDelta(deletes=(("a", "b"),)))
        assert sorted(CompactGraph.from_state(state).weighted_edges()) == edges_then

    def test_overlay_routes_kernels_to_bigint(self, sample_graph):
        from repro.closure import select_kernel
        from repro.closure.backends import BACKEND_BIGINT
        from repro.graph import CompactDelta

        compact = CompactGraph.from_digraph(sample_graph)
        compact.apply_delta(CompactDelta(inserts=(("a", "d", 1.0),)))
        assert select_kernel(compact) == BACKEND_BIGINT
        assert compact.has_overlay()  # shape probing must not have compacted

    def test_merge_overlay_metrics_exports_depth_and_compactions(self, sample_graph):
        from repro.graph import (
            OVERLAY_COMPACTIONS_COUNTER,
            OVERLAY_DEPTH_GAUGE,
            merge_overlay_metrics,
        )
        from repro.observability import MetricsRegistry

        compact = CompactGraph.from_digraph(sample_graph)
        compact.apply_delta(self._delta())
        compact.compact_now()
        registry = MetricsRegistry()
        merge_overlay_metrics(registry)
        exported = set(registry.drain())
        assert OVERLAY_DEPTH_GAUGE in exported
        assert OVERLAY_COMPACTIONS_COUNTER in exported

    def test_env_var_overrides_the_default_threshold(self, sample_graph, monkeypatch):
        from repro.graph import ENV_OVERLAY_THRESHOLD
        from repro.graph.compact import overlay_threshold_default

        monkeypatch.setenv(ENV_OVERLAY_THRESHOLD, "7")
        assert overlay_threshold_default() == 7
        compact = CompactGraph.from_digraph(sample_graph)
        assert compact.overlay_threshold == 7
