"""Property tests for the compact-graph delta overlay.

Random insert/delete/reweight interleavings are applied one elementary
change at a time through :meth:`CompactGraph.apply_delta` with compaction
suppressed, so every query reads *through* a deep overlay.  Answers are
compared against a from-scratch rebuild of the same final graph: edge
lists, reachability rows (all three kernel backends), Dijkstra distances
and a custom-semiring fixpoint must all be bit-identical.  Integer edge
weights keep float sums exact, so ``==`` comparisons are legitimate.
"""

import os
import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.closure import Semiring, numpy_available, select_kernel
from repro.closure.backends import BACKEND_BIGINT, BACKEND_CHAIN, BACKEND_NUMPY
from repro.closure.kernels import array_dijkstra, reachability_rows, seminaive_closure_ids
from repro.graph import CompactDelta, CompactGraph, DiGraph, dijkstra

INF = float("inf")


@st.composite
def op_sequences(draw):
    """Draw ``(base_edges, ops)``: a seed edge dict and an op interleaving.

    Ops reference only pairs that exist (delete/reweight) or do not exist
    (insert) at that point, mirroring the mutable front-end's discipline,
    so a plain ``{pair: weight}`` model tracks the expected graph exactly.
    """
    node_pool = list(range(draw(st.integers(min_value=4, max_value=8))))
    pair = st.tuples(st.sampled_from(node_pool), st.sampled_from(node_pool)).filter(
        lambda p: p[0] != p[1]
    )
    base_pairs = sorted(draw(st.sets(pair, min_size=2, max_size=10)))
    base = {p: float(draw(st.integers(min_value=1, max_value=9))) for p in base_pairs}
    current = dict(base)
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=18))):
        kind = draw(st.sampled_from(("insert", "delete", "reweight")))
        if kind == "insert":
            candidates = [
                p for a in node_pool for b in node_pool
                if a != b and (p := (a, b)) not in current
            ]
            if not candidates:
                continue
            target = draw(st.sampled_from(sorted(candidates)))
            weight = float(draw(st.integers(min_value=1, max_value=9)))
            current[target] = weight
            ops.append(("insert", target, weight))
        elif not current:
            continue
        elif kind == "delete":
            target = draw(st.sampled_from(sorted(current)))
            del current[target]
            ops.append(("delete", target, 0.0))
        else:
            target = draw(st.sampled_from(sorted(current)))
            weight = float(draw(st.integers(min_value=1, max_value=9)))
            current[target] = weight
            ops.append(("reweight", target, weight))
    return base, ops


def replay(base, ops):
    """Return ``(overlay_graph, control_digraph, expected_edges)``.

    The overlay graph absorbs every op as its own one-element delta with
    compaction suppressed; the control digraph replays the same ops on the
    mutable front-end and is what a from-scratch rebuild sees.
    """
    control = DiGraph([(a, b, w) for (a, b), w in base.items()])
    graph = CompactGraph.from_digraph(control.copy())
    graph.overlay_threshold = 10 ** 9
    expected = dict(base)
    for kind, (a, b), weight in ops:
        if kind == "insert":
            graph.apply_delta(CompactDelta(inserts=((a, b, weight),)))
            control.add_edge(a, b, weight)
            expected[(a, b)] = weight
        elif kind == "delete":
            graph.apply_delta(CompactDelta(deletes=(((a, b)),)))
            control.remove_edge(a, b)
            del expected[(a, b)]
        else:
            graph.apply_delta(CompactDelta(reweights=((a, b, weight),)))
            control.add_edge(a, b, weight)
            expected[(a, b)] = weight
    return graph, control, expected


def reachable_names(graph, backend):
    rows, _ = reachability_rows(
        graph, list(range(graph.node_count())), whole_graph=True, backend=backend
    )
    return {
        graph.node_of(sid): {
            graph.node_of(tid)
            for tid in range(graph.node_count())
            if (mask >> tid) & 1
        }
        for sid, mask in rows.items()
    }


@settings(max_examples=30, deadline=None)
@given(op_sequences())
def test_overlay_edges_match_the_model(case):
    base, ops = case
    graph, _, expected = replay(base, ops)
    if ops:
        assert graph.overlay_depth() == len(ops)
    assert sorted(graph.weighted_edges()) == sorted(
        (a, b, w) for (a, b), w in expected.items()
    )
    assert graph.edge_count() == len(expected)


@settings(max_examples=30, deadline=None)
@given(op_sequences())
def test_overlay_reachability_matches_a_rebuild_on_every_backend(case):
    base, ops = case
    graph, control, _ = replay(base, ops)
    rebuild = CompactGraph.from_digraph(control)
    backends = [BACKEND_BIGINT, BACKEND_CHAIN]
    if numpy_available():
        backends.append(BACKEND_NUMPY)
    # bigint first: it reads straight through the live overlay; the pinned
    # indexed backends then force a compaction and must agree afterwards.
    for backend in backends:
        assert reachable_names(graph, backend) == reachable_names(rebuild, backend), backend


@settings(max_examples=30, deadline=None)
@given(op_sequences())
def test_overlay_dijkstra_matches_the_mutable_front_end(case):
    base, ops = case
    graph, control, _ = replay(base, ops)
    assert sorted(graph.nodes()) == sorted(control.nodes())
    for source in control.nodes():
        distances, _, _ = array_dijkstra(graph, graph.node_id(source))
        via_overlay = {
            graph.node_of(nid): value
            for nid, value in enumerate(distances)
            if value != INF
        }
        expected, _ = dijkstra(control, source)
        assert via_overlay == expected


@settings(max_examples=20, deadline=None)
@given(op_sequences())
def test_overlay_custom_semiring_fixpoint_matches_a_rebuild(case):
    base, ops = case
    graph, control, _ = replay(base, ops)
    rebuild = CompactGraph.from_digraph(control)
    semiring = Semiring(
        name="widest", plus=max, times=min, zero=0.0, one=INF
    )

    def by_name(target, values):
        return {
            (target.node_of(a), target.node_of(b)): value
            for (a, b), value in values.items()
        }

    overlay_values, _ = seminaive_closure_ids(graph, semiring)
    rebuild_values, _ = seminaive_closure_ids(rebuild, semiring)
    assert by_name(graph, overlay_values) == by_name(rebuild, rebuild_values)


@settings(max_examples=20, deadline=None)
@given(op_sequences())
def test_overlay_state_survives_pickling_and_compaction(case):
    base, ops = case
    graph, _, expected = replay(base, ops)
    revived = pickle.loads(pickle.dumps(graph))
    assert sorted(revived.weighted_edges()) == sorted(graph.weighted_edges())
    assert revived.edge_count() == graph.edge_count()
    revived.compact_now()
    graph.compact_now()
    assert not graph.has_overlay()
    assert sorted(graph.weighted_edges()) == sorted(
        (a, b, w) for (a, b), w in expected.items()
    )
    assert sorted(revived.weighted_edges()) == sorted(graph.weighted_edges())


def test_overlay_answers_survive_numpy_being_absent():
    """The numpy-less leg: selection avoids numpy, answers stay identical."""
    base = {(0, 1): 1.0, (1, 2): 2.0, (2, 0): 1.0, (1, 3): 4.0}
    ops = [
        ("insert", (3, 4), 1.0),
        ("delete", (2, 0), 0.0),
        ("reweight", (0, 1), 5.0),
        ("insert", (4, 0), 2.0),
    ]
    old = os.environ.get("REPRO_DISABLE_NUMPY")
    os.environ["REPRO_DISABLE_NUMPY"] = "1"
    try:
        assert not numpy_available()
        graph, control, _ = replay(base, ops)
        assert select_kernel(graph) == BACKEND_BIGINT
        rebuild = CompactGraph.from_digraph(control)
        for backend in (BACKEND_BIGINT, BACKEND_CHAIN):
            assert reachable_names(graph, backend) == reachable_names(rebuild, backend)
    finally:
        if old is None:
            del os.environ["REPRO_DISABLE_NUMPY"]
        else:
            os.environ["REPRO_DISABLE_NUMPY"] = old
