"""Unit tests for graph serialisation."""

import pytest

from repro.graph import (
    DiGraph,
    Point,
    from_dict,
    from_edge_list,
    load_json,
    save_json,
    to_dict,
    to_edge_list,
    to_relation_rows,
)


class TestEdgeLists:
    def test_roundtrip(self):
        graph = DiGraph([("a", "b", 1.0), ("b", "c", 2.5)])
        rebuilt = from_edge_list(to_edge_list(graph))
        assert rebuilt == graph

    def test_edge_list_is_sorted(self):
        graph = DiGraph([("z", "a", 1.0), ("a", "b", 1.0)])
        listed = to_edge_list(graph)
        assert listed[0][0] == "a"

    def test_symmetric_construction(self):
        graph = from_edge_list([("a", "b")], symmetric=True)
        assert graph.has_edge("a", "b") and graph.has_edge("b", "a")

    def test_default_weight(self):
        graph = from_edge_list([("a", "b")])
        assert graph.edge_weight("a", "b") == 1.0

    def test_to_relation_rows_matches_edge_list(self):
        graph = DiGraph([("a", "b", 2.0)])
        assert to_relation_rows(graph) == to_edge_list(graph)


class TestDictAndJson:
    def test_dict_roundtrip_with_coordinates(self):
        graph = DiGraph([(1, 2, 3.0)])
        graph.set_coordinate(1, Point(0.5, 1.5))
        graph.set_coordinate(2, Point(2.0, 0.0))
        rebuilt = from_dict(to_dict(graph))
        assert rebuilt == graph
        assert rebuilt.coordinate(1) == Point(0.5, 1.5)

    def test_integer_nodes_survive_roundtrip(self):
        graph = DiGraph([(10, 20, 1.0)])
        rebuilt = from_dict(to_dict(graph))
        assert rebuilt.has_edge(10, 20)

    def test_json_file_roundtrip(self, tmp_path):
        graph = DiGraph([("amsterdam", "utrecht", 4.0)])
        graph.set_coordinate("amsterdam", Point(4.9, 52.4))
        graph.set_coordinate("utrecht", Point(5.1, 52.1))
        path = tmp_path / "graph.json"
        save_json(graph, path)
        assert load_json(path) == graph

    def test_isolated_nodes_survive(self):
        graph = DiGraph(nodes=["only"])
        rebuilt = from_dict(to_dict(graph))
        assert rebuilt.has_node("only")
        assert rebuilt.edge_count() == 0
