"""Unit tests for the center (status) score of Sec. 3.1."""

import pytest

from repro.generators import chain_graph, star_graph
from repro.graph import DiGraph, rank_by_status, status_score, status_scores, top_candidates


class TestStatusScore:
    def test_star_center_scores_highest(self):
        graph = star_graph(6)
        ranking = rank_by_status(graph)
        assert ranking[0] == 0

    def test_chain_middle_scores_higher_than_end(self):
        graph = chain_graph(7)
        scores = status_scores(graph)
        assert scores[3] > scores[0]
        assert scores[3] > scores[6]

    def test_attenuation_reduces_far_contributions(self):
        graph = chain_graph(7)
        tight = status_score(graph, 3, attenuation=0.1)
        loose = status_score(graph, 3, attenuation=0.9)
        assert loose > tight

    def test_radius_zero_is_just_grade(self):
        graph = star_graph(5)
        assert status_score(graph, 0, radius=0) == 5.0

    def test_isolated_node_scores_zero(self):
        graph = DiGraph(nodes=["lonely"])
        assert status_score(graph, "lonely") == 0.0

    def test_scores_cover_every_node(self):
        graph = chain_graph(5)
        assert set(status_scores(graph)) == set(graph.nodes())


class TestRankingAndCandidates:
    def test_ranking_is_deterministic(self):
        graph = chain_graph(9)
        assert rank_by_status(graph) == rank_by_status(graph)

    def test_top_candidates_size(self):
        graph = chain_graph(20)
        pool = top_candidates(graph, 2, pool_factor=3.0)
        assert len(pool) == 6

    def test_top_candidates_zero_count(self):
        graph = chain_graph(5)
        assert list(top_candidates(graph, 0)) == []

    def test_top_candidates_contains_best_node(self):
        graph = star_graph(8)
        assert 0 in top_candidates(graph, 1)
