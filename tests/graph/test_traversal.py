"""Unit tests for graph traversals and components."""

from repro.generators import chain_graph, cycle_graph
from repro.graph import (
    DiGraph,
    bfs_levels,
    bfs_order,
    dfs_order,
    has_cycle,
    is_reachable,
    is_weakly_connected,
    reachable_set,
    strongly_connected_components,
    topological_sort,
    undirected_cycle_count,
    weakly_connected_components,
)


class TestBfsDfs:
    def test_bfs_order_directed(self):
        graph = DiGraph([("a", "b"), ("a", "c"), ("b", "d")])
        order = bfs_order(graph, "a")
        assert order[0] == "a"
        assert set(order) == {"a", "b", "c", "d"}
        assert order.index("b") < order.index("d")

    def test_bfs_undirected_crosses_reverse_edges(self):
        graph = DiGraph([("b", "a")])
        assert bfs_order(graph, "a") == ["a"]
        assert set(bfs_order(graph, "a", undirected=True)) == {"a", "b"}

    def test_bfs_levels_hop_counts(self):
        graph = chain_graph(5, symmetric=False)
        levels = bfs_levels(graph, 0)
        assert levels == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_dfs_visits_all_reachable(self):
        graph = DiGraph([("a", "b"), ("b", "c"), ("a", "d")])
        order = dfs_order(graph, "a")
        assert order[0] == "a"
        assert set(order) == {"a", "b", "c", "d"}

    def test_reachable_set_and_is_reachable(self):
        graph = DiGraph([("a", "b"), ("b", "c"), ("x", "y")])
        assert reachable_set(graph, "a") == {"a", "b", "c"}
        assert is_reachable(graph, "a", "c")
        assert not is_reachable(graph, "a", "y")
        assert is_reachable(graph, "a", "a")


class TestComponents:
    def test_weak_components(self):
        graph = DiGraph([("a", "b"), ("c", "d")])
        components = weakly_connected_components(graph)
        assert sorted(sorted(component) for component in components) == [["a", "b"], ["c", "d"]]
        assert not is_weakly_connected(graph)

    def test_single_component(self):
        graph = DiGraph([("a", "b"), ("b", "c")])
        assert is_weakly_connected(graph)

    def test_strongly_connected_components(self):
        graph = DiGraph([("a", "b"), ("b", "a"), ("b", "c")])
        components = strongly_connected_components(graph)
        as_sets = sorted(sorted(component) for component in components)
        assert ["a", "b"] in as_sets
        assert ["c"] in as_sets

    def test_scc_on_cycle(self):
        graph = cycle_graph(5, symmetric=False)
        components = strongly_connected_components(graph)
        assert len(components) == 1
        assert components[0] == set(range(5))


class TestCyclesAndTopoSort:
    def test_topological_sort_on_dag(self):
        graph = DiGraph([("a", "b"), ("b", "c"), ("a", "c")])
        order = topological_sort(graph)
        assert order is not None
        assert order.index("a") < order.index("b") < order.index("c")

    def test_topological_sort_none_on_cycle(self):
        graph = DiGraph([("a", "b"), ("b", "a")])
        assert topological_sort(graph) is None
        assert has_cycle(graph)

    def test_undirected_cycle_count_tree_is_zero(self):
        graph = DiGraph()
        graph.add_symmetric_edge("a", "b")
        graph.add_symmetric_edge("b", "c")
        assert undirected_cycle_count(graph) == 0

    def test_undirected_cycle_count_cycle_is_one(self):
        graph = cycle_graph(4)
        assert undirected_cycle_count(graph) == 1

    def test_undirected_cycle_count_two_independent_cycles(self):
        graph = cycle_graph(3)
        # Add a second triangle sharing node 0.
        graph.add_symmetric_edge(0, 10)
        graph.add_symmetric_edge(10, 11)
        graph.add_symmetric_edge(11, 0)
        assert undirected_cycle_count(graph) == 2
