"""Unit tests for k-connectivity and relevant-node analysis."""

import pytest

from repro.generators import chain_graph, complete_graph, cycle_graph, two_cluster_dumbbell
from repro.graph import (
    DiGraph,
    articulation_points,
    k_connectivity,
    relevant_nodes,
    vertex_disjoint_path_count,
)


class TestArticulationPoints:
    def test_chain_interior_nodes_are_articulation_points(self):
        graph = chain_graph(5)
        assert articulation_points(graph) == {1, 2, 3}

    def test_cycle_has_no_articulation_points(self):
        assert articulation_points(cycle_graph(5)) == set()

    def test_dumbbell_bridge_endpoints(self):
        graph = two_cluster_dumbbell(4, bridge_nodes=1)
        points = articulation_points(graph)
        # The two endpoints of the single bridge are the cut nodes.
        assert points == {0, 4}

    def test_complete_graph_has_none(self):
        assert articulation_points(complete_graph(5)) == set()


class TestDisjointPaths:
    def test_adjacent_nodes_are_uncuttable(self):
        graph = complete_graph(4)
        assert vertex_disjoint_path_count(graph, 0, 1) >= 3

    def test_chain_has_single_path(self):
        graph = chain_graph(4)
        assert vertex_disjoint_path_count(graph, 0, 3) == 1

    def test_cycle_has_two_paths(self):
        graph = cycle_graph(6)
        assert vertex_disjoint_path_count(graph, 0, 3) == 2

    def test_same_node_raises(self):
        with pytest.raises(ValueError):
            vertex_disjoint_path_count(chain_graph(3), 1, 1)

    def test_disconnected_pair_has_zero(self):
        graph = DiGraph(nodes=["a", "b"])
        graph.add_symmetric_edge("a", "c")
        assert vertex_disjoint_path_count(graph, "a", "b") == 0


class TestKConnectivity:
    def test_chain_is_1_connected(self):
        assert k_connectivity(chain_graph(5)) == 1

    def test_cycle_is_2_connected(self):
        assert k_connectivity(cycle_graph(6)) == 2

    def test_disconnected_graph_is_0_connected(self):
        graph = DiGraph()
        graph.add_symmetric_edge("a", "b")
        graph.add_symmetric_edge("c", "d")
        assert k_connectivity(graph) == 0

    def test_single_node(self):
        assert k_connectivity(DiGraph(nodes=["x"])) == 0


class TestRelevantNodes:
    def test_dumbbell_relevant_nodes_include_bridge_endpoints(self):
        graph = two_cluster_dumbbell(3, bridge_nodes=1)
        relevant = relevant_nodes(graph)
        assert {0, 3} <= relevant

    def test_cycle_every_node_relevant(self):
        # Removing any node of a cycle drops connectivity from 2 to 1.
        relevant = relevant_nodes(cycle_graph(5))
        assert relevant == set(range(5))
