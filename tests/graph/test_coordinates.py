"""Unit tests for coordinates and geometric helpers."""

import math

import pytest

from repro.exceptions import MissingCoordinatesError
from repro.graph import (
    Point,
    bounding_box,
    centroid,
    euclidean_distance,
    nodes_sorted_by_x,
    pairwise_distances,
    spread_out_selection,
)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_translated(self):
        assert Point(1, 1).translated(2, -1) == Point(3, 0)

    def test_ordering_is_lexicographic(self):
        assert Point(1, 5) < Point(2, 0)
        assert Point(1, 1) < Point(1, 2)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)


class TestHelpers:
    def test_euclidean_distance_accepts_tuples(self):
        assert euclidean_distance((0, 0), (0, 2)) == 2.0
        assert euclidean_distance(Point(0, 0), (1, 0)) == 1.0

    def test_centroid(self):
        assert centroid([Point(0, 0), Point(2, 0), Point(1, 3)]) == Point(1.0, 1.0)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_bounding_box(self):
        low, high = bounding_box([Point(1, 5), Point(-2, 3), Point(4, 0)])
        assert low == Point(-2, 0)
        assert high == Point(4, 5)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])

    def test_pairwise_distances_symmetric(self):
        coords = {"a": Point(0, 0), "b": Point(3, 4)}
        distances = pairwise_distances(coords)
        assert distances[("a", "b")] == 5.0
        assert distances[("b", "a")] == 5.0

    def test_nodes_sorted_by_x(self):
        coords = {"right": Point(5, 0), "left": Point(-1, 0), "mid": Point(2, 0)}
        assert list(nodes_sorted_by_x(coords)) == ["left", "mid", "right"]


class TestSpreadOutSelection:
    def test_selects_far_apart_nodes(self):
        # Two tight clusters far apart: one pick should land in each.
        coords = {
            "a1": Point(0, 0), "a2": Point(0.5, 0.5), "a3": Point(0.2, 0.1),
            "b1": Point(100, 100), "b2": Point(100.5, 100.2),
        }
        selected = spread_out_selection(coords, list(coords), 2)
        clusters = {name[0] for name in selected}
        assert clusters == {"a", "b"}

    def test_count_larger_than_pool(self):
        coords = {"a": Point(0, 0), "b": Point(1, 1)}
        assert sorted(spread_out_selection(coords, ["a", "b"], 5)) == ["a", "b"]

    def test_zero_count_returns_empty(self):
        assert spread_out_selection({"a": Point(0, 0)}, ["a"], 0) == []

    def test_missing_coordinates_raise(self):
        with pytest.raises(MissingCoordinatesError):
            spread_out_selection({"a": Point(0, 0)}, ["a", "ghost"], 2)

    def test_deterministic(self):
        coords = {i: Point(float(i), float(i % 3)) for i in range(10)}
        first = spread_out_selection(coords, list(coords), 4)
        second = spread_out_selection(coords, list(coords), 4)
        assert first == second
