"""Unit tests for the DiGraph container."""

import pytest

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError
from repro.graph import DiGraph, Point


class TestNodes:
    def test_add_node_is_idempotent(self):
        graph = DiGraph()
        graph.add_node("x")
        graph.add_node("x")
        assert graph.nodes() == ["x"]
        assert graph.node_count() == 1

    def test_contains_and_len(self):
        graph = DiGraph(nodes=[1, 2, 3])
        assert 2 in graph
        assert 9 not in graph
        assert len(graph) == 3

    def test_iteration_preserves_insertion_order(self):
        graph = DiGraph(nodes=["c", "a", "b"])
        assert list(graph) == ["c", "a", "b"]

    def test_remove_node_drops_incident_edges(self):
        graph = DiGraph([("a", "b"), ("b", "c"), ("c", "a")])
        graph.remove_node("b")
        assert not graph.has_node("b")
        assert graph.edges() == [("c", "a")]

    def test_remove_missing_node_raises(self):
        graph = DiGraph()
        with pytest.raises(NodeNotFoundError):
            graph.remove_node("ghost")


class TestEdges:
    def test_add_edge_creates_endpoints(self):
        graph = DiGraph()
        graph.add_edge("a", "b", 3.0)
        assert graph.has_node("a") and graph.has_node("b")
        assert graph.edge_weight("a", "b") == 3.0

    def test_add_edge_overwrites_weight(self):
        graph = DiGraph()
        graph.add_edge("a", "b", 3.0)
        graph.add_edge("a", "b", 7.0)
        assert graph.edge_weight("a", "b") == 7.0
        assert graph.edge_count() == 1

    def test_edges_are_directed(self):
        graph = DiGraph([("a", "b")])
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("b", "a")

    def test_symmetric_edge_adds_both_directions(self):
        graph = DiGraph()
        graph.add_symmetric_edge("a", "b", 2.5)
        assert graph.edge_weight("a", "b") == 2.5
        assert graph.edge_weight("b", "a") == 2.5

    def test_remove_edge(self):
        graph = DiGraph([("a", "b"), ("b", "c")])
        graph.remove_edge("a", "b")
        assert not graph.has_edge("a", "b")
        assert graph.has_edge("b", "c")

    def test_remove_missing_edge_raises(self):
        graph = DiGraph([("a", "b")])
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge("b", "a")

    def test_edge_weight_missing_raises(self):
        graph = DiGraph([("a", "b")])
        with pytest.raises(EdgeNotFoundError):
            graph.edge_weight("a", "z")

    def test_undirected_edge_count_counts_pairs_once(self):
        graph = DiGraph()
        graph.add_symmetric_edge(1, 2)
        graph.add_edge(2, 3)
        assert graph.edge_count() == 3
        assert graph.undirected_edge_count() == 2

    def test_weighted_edges_roundtrip(self):
        edges = [("a", "b", 1.0), ("b", "c", 2.0)]
        graph = DiGraph(edges)
        assert sorted(graph.weighted_edges()) == sorted(edges)


class TestAdjacency:
    def test_successors_predecessors_neighbors(self):
        graph = DiGraph([("a", "b"), ("c", "a"), ("a", "d")])
        assert sorted(graph.successors("a")) == ["b", "d"]
        assert graph.predecessors("a") == ["c"]
        assert sorted(graph.neighbors("a")) == ["b", "c", "d"]

    def test_degrees(self):
        graph = DiGraph([("a", "b"), ("c", "a"), ("a", "d")])
        assert graph.out_degree("a") == 2
        assert graph.in_degree("a") == 1
        assert graph.degree("a") == 3
        assert graph.undirected_degree("a") == 3

    def test_undirected_degree_counts_symmetric_pair_once(self):
        graph = DiGraph()
        graph.add_symmetric_edge("a", "b")
        assert graph.degree("a") == 2
        assert graph.undirected_degree("a") == 1

    def test_adjacency_of_missing_node_raises(self):
        graph = DiGraph([("a", "b")])
        with pytest.raises(NodeNotFoundError):
            graph.successors("ghost")


class TestCoordinatesAndDerivations:
    def test_set_and_get_coordinate(self):
        graph = DiGraph()
        graph.set_coordinate("a", (1.0, 2.0))
        assert graph.coordinate("a") == Point(1.0, 2.0)
        assert graph.coordinate("a").x == 1.0

    def test_has_coordinates_requires_all_nodes(self):
        graph = DiGraph([("a", "b")])
        graph.set_coordinate("a", (0, 0))
        assert not graph.has_coordinates()
        graph.set_coordinate("b", (1, 1))
        assert graph.has_coordinates()

    def test_copy_is_independent(self):
        graph = DiGraph([("a", "b", 1.0)])
        graph.set_coordinate("a", (0, 0))
        clone = graph.copy()
        clone.add_edge("b", "c")
        assert not graph.has_node("c")
        assert clone.coordinate("a") == graph.coordinate("a")

    def test_subgraph_keeps_only_induced_edges(self):
        graph = DiGraph([("a", "b"), ("b", "c"), ("c", "a")])
        sub = graph.subgraph({"a", "b"})
        assert sub.edges() == [("a", "b")]
        assert sorted(sub.nodes()) == ["a", "b"]

    def test_edge_subgraph(self):
        graph = DiGraph([("a", "b", 2.0), ("b", "c", 3.0)])
        sub = graph.edge_subgraph([("b", "c")])
        assert sub.edges() == [("b", "c")]
        assert sub.edge_weight("b", "c") == 3.0

    def test_reversed(self):
        graph = DiGraph([("a", "b", 2.0)])
        rev = graph.reversed()
        assert rev.has_edge("b", "a")
        assert not rev.has_edge("a", "b")

    def test_equality_ignores_insertion_order(self):
        left = DiGraph([("a", "b", 1.0), ("b", "c", 2.0)])
        right = DiGraph([("b", "c", 2.0), ("a", "b", 1.0)])
        assert left == right

    def test_repr_mentions_counts(self):
        graph = DiGraph([("a", "b")])
        assert "nodes=2" in repr(graph)
        assert "edges=1" in repr(graph)
