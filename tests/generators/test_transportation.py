"""Unit tests for the transportation graph generator (Fig. 3 workload)."""

import pytest

from repro.exceptions import FragmenterConfigurationError
from repro.generators import (
    TransportationGraphConfig,
    generate_transportation_graph,
    paper_table1_config,
    paper_table2_config,
)
from repro.graph import clustering_ratio, is_weakly_connected


@pytest.fixture(scope="module")
def small_network():
    config = TransportationGraphConfig(
        cluster_count=3, nodes_per_cluster=10, cluster_c1=220.0, cluster_c2=0.03, inter_cluster_edges=2
    )
    return generate_transportation_graph(config, seed=4)


class TestConfigValidation:
    def test_rejects_zero_clusters(self):
        with pytest.raises(FragmenterConfigurationError):
            TransportationGraphConfig(cluster_count=0)

    def test_rejects_zero_nodes(self):
        with pytest.raises(FragmenterConfigurationError):
            TransportationGraphConfig(nodes_per_cluster=0)

    def test_rejects_bad_topology(self):
        with pytest.raises(FragmenterConfigurationError):
            TransportationGraphConfig(topology="mesh")

    def test_rejects_zero_inter_cluster_edges(self):
        with pytest.raises(FragmenterConfigurationError):
            TransportationGraphConfig(inter_cluster_edges=0)


class TestStructure:
    def test_node_count(self, small_network):
        assert small_network.graph.node_count() == 30
        assert len(small_network.clusters) == 3
        assert all(len(cluster) == 10 for cluster in small_network.clusters)

    def test_clusters_partition_the_nodes(self, small_network):
        union = set().union(*small_network.clusters)
        assert union == set(small_network.graph.nodes())
        total = sum(len(cluster) for cluster in small_network.clusters)
        assert total == len(union)

    def test_connected(self, small_network):
        assert is_weakly_connected(small_network.graph)

    def test_high_intra_cluster_ratio(self, small_network):
        ratio = clustering_ratio(small_network.graph, small_network.clusters)
        assert ratio > 0.85

    def test_chain_topology_has_expected_border_pairs(self, small_network):
        # 3 clusters in a chain -> 2 connected pairs x 2 edges each.
        assert len(small_network.inter_cluster_pairs) == 4

    def test_border_nodes_are_in_two_adjacent_clusters(self, small_network):
        for a, b in small_network.inter_cluster_pairs:
            assert small_network.cluster_of(a) != small_network.cluster_of(b)

    def test_cluster_of_unknown_node_raises(self, small_network):
        with pytest.raises(KeyError):
            small_network.cluster_of(99999)

    def test_deterministic_per_seed(self):
        config = TransportationGraphConfig(cluster_count=2, nodes_per_cluster=8, cluster_c1=150.0)
        left = generate_transportation_graph(config, seed=9)
        right = generate_transportation_graph(config, seed=9)
        assert left.graph == right.graph

    def test_complete_topology_connects_all_pairs(self):
        config = TransportationGraphConfig(
            cluster_count=3, nodes_per_cluster=6, cluster_c1=90.0, topology="complete", inter_cluster_edges=1
        )
        network = generate_transportation_graph(config, seed=0)
        pairs = {
            tuple(sorted((network.cluster_of(a), network.cluster_of(b))))
            for a, b in network.inter_cluster_pairs
        }
        assert pairs == {(0, 1), (0, 2), (1, 2)}

    def test_explicit_pairs_override_topology(self):
        config = TransportationGraphConfig(
            cluster_count=3, nodes_per_cluster=6, cluster_c1=90.0,
            explicit_pairs=((0, 2),), inter_cluster_edges=1,
        )
        network = generate_transportation_graph(config, seed=0)
        pairs = {
            tuple(sorted((network.cluster_of(a), network.cluster_of(b))))
            for a, b in network.inter_cluster_pairs
        }
        assert pairs == {(0, 2)}


class TestPaperConfigs:
    def test_table1_workload_shape(self):
        network = generate_transportation_graph(paper_table1_config(), seed=0)
        assert network.graph.node_count() == 100
        # Paper: about 429 undirected edges; allow a generous band.
        assert 340 <= network.graph.undirected_edge_count() <= 520

    def test_table2_config_shape(self):
        config = paper_table2_config()
        assert config.cluster_count == 4
        assert config.nodes_per_cluster == 150
