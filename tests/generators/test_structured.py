"""Unit tests for the deterministic structured graph generators."""

import pytest

from repro.exceptions import FragmenterConfigurationError
from repro.generators import (
    chain_graph,
    complete_graph,
    cycle_graph,
    european_railway_example,
    grid_graph,
    layered_dag,
    star_graph,
    two_cluster_dumbbell,
)
from repro.graph import hop_diameter, is_weakly_connected


class TestBasicShapes:
    def test_chain(self):
        graph = chain_graph(5)
        assert graph.node_count() == 5
        assert graph.undirected_edge_count() == 4
        assert hop_diameter(graph) == 4

    def test_chain_directed(self):
        graph = chain_graph(3, symmetric=False)
        assert graph.has_edge(0, 1) and not graph.has_edge(1, 0)

    def test_chain_invalid_length(self):
        with pytest.raises(FragmenterConfigurationError):
            chain_graph(0)

    def test_cycle(self):
        graph = cycle_graph(6)
        assert graph.undirected_edge_count() == 6
        assert hop_diameter(graph) == 3

    def test_cycle_minimum_size(self):
        with pytest.raises(FragmenterConfigurationError):
            cycle_graph(2)

    def test_grid(self):
        graph = grid_graph(3, 4)
        assert graph.node_count() == 12
        assert graph.undirected_edge_count() == 3 * 3 + 2 * 4  # horizontal + vertical
        assert graph.has_coordinates()

    def test_grid_invalid(self):
        with pytest.raises(FragmenterConfigurationError):
            grid_graph(0, 3)

    def test_star(self):
        graph = star_graph(7)
        assert graph.node_count() == 8
        assert graph.undirected_degree(0) == 7

    def test_complete(self):
        graph = complete_graph(5)
        assert graph.undirected_edge_count() == 10
        assert hop_diameter(graph) == 1

    def test_layered_dag(self):
        graph = layered_dag(3, 2)
        assert graph.node_count() == 6
        assert graph.edge_count() == 2 * 2 * 2
        assert not graph.has_edge(2, 0)

    def test_dumbbell(self):
        graph = two_cluster_dumbbell(4, bridge_nodes=2)
        assert graph.node_count() == 8
        assert is_weakly_connected(graph)

    def test_dumbbell_validation(self):
        with pytest.raises(FragmenterConfigurationError):
            two_cluster_dumbbell(1)
        with pytest.raises(FragmenterConfigurationError):
            two_cluster_dumbbell(3, bridge_nodes=9)


class TestEuropeanRailway:
    def test_structure(self):
        graph, countries = european_railway_example()
        assert set(countries) == {"holland", "germany", "italy"}
        assert graph.node_count() == 18
        assert is_weakly_connected(graph)
        assert graph.has_coordinates()

    def test_cities_belong_to_exactly_one_country(self):
        _, countries = european_railway_example()
        all_cities = [city for cities in countries.values() for city in cities]
        assert len(all_cities) == len(set(all_cities))

    def test_amsterdam_reaches_milan(self):
        graph, _ = european_railway_example()
        from repro.closure import is_connected

        assert is_connected(graph, "amsterdam", "milan")
