"""Unit tests for the query workload generators."""

import pytest

from repro.exceptions import FragmenterConfigurationError
from repro.generators import (
    PathQuery,
    cross_cluster_queries,
    grid_graph,
    intra_cluster_queries,
    mixed_workload,
    random_queries,
)


@pytest.fixture
def clusters():
    return [set(range(0, 8)), set(range(8, 16)), set(range(16, 24))]


class TestPathQuery:
    def test_valid_kinds(self):
        PathQuery(source=1, target=2, kind="reachability")
        PathQuery(source=1, target=2, kind="shortest_path")

    def test_invalid_kind_raises(self):
        with pytest.raises(FragmenterConfigurationError):
            PathQuery(source=1, target=2, kind="widest")


class TestRandomQueries:
    def test_count_and_distinct_endpoints(self):
        graph = grid_graph(4, 4)
        queries = random_queries(graph, 25, seed=1)
        assert len(queries) == 25
        assert all(query.source != query.target for query in queries)

    def test_deterministic(self):
        graph = grid_graph(3, 3)
        assert random_queries(graph, 10, seed=5) == random_queries(graph, 10, seed=5)

    def test_requires_two_nodes(self):
        from repro.graph import DiGraph

        with pytest.raises(FragmenterConfigurationError):
            random_queries(DiGraph(nodes=["only"]), 3)


class TestClusterQueries:
    def test_cross_cluster_endpoints_in_different_clusters(self, clusters):
        queries = cross_cluster_queries(clusters, 20, seed=0)
        for query in queries:
            source_cluster = next(i for i, c in enumerate(clusters) if query.source in c)
            target_cluster = next(i for i, c in enumerate(clusters) if query.target in c)
            assert source_cluster != target_cluster

    def test_cross_cluster_minimum_distance(self, clusters):
        queries = cross_cluster_queries(clusters, 10, seed=0, minimum_cluster_distance=2)
        for query in queries:
            source_cluster = next(i for i, c in enumerate(clusters) if query.source in c)
            target_cluster = next(i for i, c in enumerate(clusters) if query.target in c)
            assert abs(source_cluster - target_cluster) >= 2

    def test_cross_cluster_needs_two_clusters(self):
        with pytest.raises(FragmenterConfigurationError):
            cross_cluster_queries([{1, 2}], 5)

    def test_intra_cluster_endpoints_share_cluster(self, clusters):
        queries = intra_cluster_queries(clusters, 20, seed=0)
        for query in queries:
            source_cluster = next(i for i, c in enumerate(clusters) if query.source in c)
            target_cluster = next(i for i, c in enumerate(clusters) if query.target in c)
            assert source_cluster == target_cluster
            assert query.source != query.target

    def test_intra_cluster_needs_cluster_of_two(self):
        with pytest.raises(FragmenterConfigurationError):
            intra_cluster_queries([{1}], 5)


class TestMixedWorkload:
    def test_total_count(self, clusters):
        graph = grid_graph(4, 6)
        workload = mixed_workload(graph, clusters, 30, cross_fraction=0.5, seed=2)
        assert len(workload) == 30

    def test_cross_fraction_validation(self, clusters):
        graph = grid_graph(2, 2)
        with pytest.raises(FragmenterConfigurationError):
            mixed_workload(graph, clusters, 10, cross_fraction=1.5)

    def test_all_cross(self, clusters):
        graph = grid_graph(4, 6)
        workload = mixed_workload(graph, clusters, 10, cross_fraction=1.0, seed=0)
        for query in workload:
            source_cluster = next(i for i, c in enumerate(clusters) if query.source in c)
            target_cluster = next(i for i, c in enumerate(clusters) if query.target in c)
            assert source_cluster != target_cluster
