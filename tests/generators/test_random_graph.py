"""Unit tests for the distance-biased random graph generator."""

import pytest

from repro.exceptions import FragmenterConfigurationError
from repro.generators import (
    RandomGraphConfig,
    calibrate_c1,
    edge_probability,
    generate_random_graph,
)
from repro.graph import is_weakly_connected


class TestConfigValidation:
    def test_rejects_nonpositive_nodes(self):
        with pytest.raises(FragmenterConfigurationError):
            RandomGraphConfig(node_count=0, c1=1.0, c2=0.1)

    def test_rejects_nonpositive_c1(self):
        with pytest.raises(FragmenterConfigurationError):
            RandomGraphConfig(node_count=10, c1=0.0, c2=0.1)

    def test_rejects_negative_c2(self):
        with pytest.raises(FragmenterConfigurationError):
            RandomGraphConfig(node_count=10, c1=1.0, c2=-0.1)

    def test_rejects_nonpositive_extent(self):
        with pytest.raises(FragmenterConfigurationError):
            RandomGraphConfig(node_count=10, c1=1.0, c2=0.1, extent=0.0)


class TestEdgeProbability:
    def test_decreases_with_distance(self):
        config = RandomGraphConfig(node_count=10, c1=50.0, c2=0.5)
        assert edge_probability(config, 1.0) > edge_probability(config, 10.0)

    def test_capped_at_one(self):
        config = RandomGraphConfig(node_count=2, c1=1e9, c2=0.0)
        assert edge_probability(config, 0.0) == 1.0

    def test_c2_zero_is_distance_independent(self):
        config = RandomGraphConfig(node_count=10, c1=50.0, c2=0.0)
        assert edge_probability(config, 1.0) == edge_probability(config, 99.0)


class TestGeneration:
    def test_deterministic_per_seed(self):
        config = RandomGraphConfig(node_count=30, c1=900.0, c2=0.05)
        assert generate_random_graph(config, seed=3) == generate_random_graph(config, seed=3)

    def test_different_seeds_differ(self):
        config = RandomGraphConfig(node_count=30, c1=900.0, c2=0.05)
        left = generate_random_graph(config, seed=1)
        right = generate_random_graph(config, seed=2)
        assert left != right

    def test_every_node_has_coordinates(self):
        graph = generate_random_graph(RandomGraphConfig(node_count=20, c1=500.0, c2=0.05), seed=0)
        assert graph.node_count() == 20
        assert graph.has_coordinates()

    def test_connect_flag_gives_connected_graph(self):
        config = RandomGraphConfig(node_count=40, c1=60.0, c2=0.2, connect=True)
        graph = generate_random_graph(config, seed=5)
        assert is_weakly_connected(graph)

    def test_symmetric_edges(self):
        graph = generate_random_graph(RandomGraphConfig(node_count=20, c1=800.0, c2=0.02), seed=0)
        for source, target in graph.edges():
            assert graph.has_edge(target, source)

    def test_weight_from_distance(self):
        graph = generate_random_graph(
            RandomGraphConfig(node_count=15, c1=800.0, c2=0.02, weight_from_distance=True), seed=1
        )
        for source, target, weight in graph.weighted_edges():
            distance = graph.coordinate(source).distance_to(graph.coordinate(target))
            assert weight == pytest.approx(distance)

    def test_unit_weights_option(self):
        graph = generate_random_graph(
            RandomGraphConfig(node_count=15, c1=800.0, c2=0.02, weight_from_distance=False), seed=1
        )
        assert all(weight == 1.0 for _, _, weight in graph.weighted_edges())

    def test_c1_increases_edge_count(self):
        sparse = generate_random_graph(RandomGraphConfig(node_count=40, c1=400.0, c2=0.05), seed=2)
        dense = generate_random_graph(RandomGraphConfig(node_count=40, c1=2400.0, c2=0.05), seed=2)
        assert dense.undirected_edge_count() > sparse.undirected_edge_count()


class TestCalibration:
    def test_calibrate_c1_hits_target_roughly(self):
        base = RandomGraphConfig(node_count=50, c1=500.0, c2=0.05)
        target = 120.0
        calibrated = calibrate_c1(base, target, seeds=(0, 1), iterations=8)
        graph = generate_random_graph(calibrated, seed=0)
        assert abs(graph.undirected_edge_count() - target) / target < 0.5
