"""The incremental maintainer vs from-scratch rebuilds.

The contract under test: after any sequence of insert/delete/reweight
updates, an incrementally maintained engine holds *exactly* the complementary
information and returns *exactly* the answers a from-scratch rebuild would —
while touching only the fragments the change actually dirtied.
"""

import random

import pytest

from repro.closure import reachability_semiring, shortest_path_semiring, widest_path_semiring
from repro.disconnection import DisconnectionSetEngine, FragmentedDatabase
from repro.disconnection.complementary import precompute_complementary_information
from repro.exceptions import NoChainError
from repro.fragmentation import GroundTruthFragmenter
from repro.generators import two_cluster_dumbbell
from repro.graph import DiGraph
from repro.incremental.maintainer import supports_incremental


def _random_database(seed, semiring, *, blocks=3, nodes_per_block=4):
    """A random multi-fragment database with integer weights (exact floats)."""
    rng = random.Random(seed)
    graph = DiGraph()
    node_blocks = [
        list(range(index * nodes_per_block, (index + 1) * nodes_per_block))
        for index in range(blocks)
    ]
    for block in node_blocks:  # an intra-block cycle keeps every fragment nonempty
        for a, b in zip(block, block[1:] + block[:1]):
            graph.add_edge(a, b, float(rng.randint(1, 9)))
    node_count = blocks * nodes_per_block
    for _ in range(2 * node_count):
        a, b = rng.randrange(node_count), rng.randrange(node_count)
        if a != b and not graph.has_edge(a, b):
            graph.add_edge(a, b, float(rng.randint(1, 9)))
    fragmentation = GroundTruthFragmenter([set(block) for block in node_blocks]).fragment(graph)
    database = FragmentedDatabase(fragmentation, semiring=semiring, incremental=True)
    database.engine()  # bind the live engine the maintainer patches
    return rng, database


def _answers(engine, pairs):
    values = []
    for source, target in pairs:
        try:
            values.append(engine.query(source, target).value)
        except NoChainError:
            values.append("no-chain")
    return values


def _assert_matches_rebuild(database, sample_pairs):
    """The live engine must agree with a from-scratch engine, fact for fact."""
    live = database.engine()
    reference = DisconnectionSetEngine(database.fragmentation(), semiring=live.semiring)
    assert live.catalog.complementary.values == reference.catalog.complementary.values
    assert _answers(live, sample_pairs) == _answers(reference, sample_pairs)


@pytest.mark.parametrize(
    "make_semiring", [shortest_path_semiring, reachability_semiring], ids=["sp", "reach"]
)
class TestRandomizedInterleavings:
    def test_incremental_matches_from_scratch_rebuild(self, make_semiring):
        semiring = make_semiring()
        rng, database = _random_database(11, semiring)
        node_count = 12
        sample_pairs = [
            (rng.randrange(node_count), rng.randrange(node_count)) for _ in range(10)
        ]
        for step in range(30):
            op = rng.choice(["insert", "insert", "reweight", "reweight", "delete", "query"])
            if op == "insert":
                a, b = rng.randrange(node_count + 2), rng.randrange(node_count + 2)
                if a == b:
                    continue
                database.insert_edge(a, b, float(rng.randint(1, 9)))
            elif op == "reweight":
                edges = database.graph.edges()
                a, b = rng.choice(edges)
                if database._owner_of_edge(a, b) is None:
                    continue
                database.update_edge_weight(a, b, float(rng.randint(1, 9)))
            elif op == "delete":
                edges = database.graph.edges()
                a, b = rng.choice(edges)
                if database._owner_of_edge(a, b) is None:
                    continue
                database.delete_edge(a, b)
            else:
                source, target = rng.choice(sample_pairs)
                try:
                    database.engine().query(source, target)
                except NoChainError:
                    pass
            _assert_matches_rebuild(database, sample_pairs)
        assert database.statistics.incremental_updates > 0

    def test_symmetric_updates_match_rebuild(self, make_semiring):
        semiring = make_semiring()
        rng, database = _random_database(5, semiring)
        sample_pairs = [(0, 11), (4, 2), (8, 1), (3, 10)]
        database.insert_edge(1, 6, 2.0, symmetric=True)
        _assert_matches_rebuild(database, sample_pairs)
        database.insert_edge(1, 6, 1.0, symmetric=True)  # reweight through insert
        _assert_matches_rebuild(database, sample_pairs)
        database.delete_edge(1, 6, symmetric=True)
        _assert_matches_rebuild(database, sample_pairs)
        assert database.statistics.incremental_updates == 3


class TestScoping:
    @pytest.fixture
    def database(self):
        graph = two_cluster_dumbbell(4, bridge_nodes=1)
        fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
        database = FragmentedDatabase(fragmentation, incremental=True)
        database.engine()
        return database

    def test_engine_identity_survives_incremental_updates(self, database):
        engine = database.engine()
        database.update_edge_weight(1, 2, 4.0)
        assert database.engine() is engine
        assert database.statistics.engine_rebuilds == 1
        assert database.statistics.incremental_updates == 1

    def test_interior_update_dirties_only_its_fragment(self, database):
        engine = database.engine()
        untouched = engine.catalog.site(1)
        untouched_compact = untouched.compact()
        owner = database.insert_edge(1, 3, 100.0)  # too heavy to improve anything
        assert owner == 0
        assert database.last_delta.dirty_fragments == (0,)
        assert engine.catalog.site(1) is untouched
        assert engine.catalog.site(1).compact() is untouched_compact
        assert database.version_vector.version_of(0) == 1
        assert database.version_vector.version_of(1) == 0

    def test_border_value_repair_dirties_both_pair_fragments(self):
        graph = two_cluster_dumbbell(4, bridge_nodes=2)  # DS(0, 1) = {4, 5}
        fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
        database = FragmentedDatabase(fragmentation, incremental=True)
        engine = database.engine()
        assert engine.catalog.complementary.for_pair(0, 1)[(4, 5)] == 1.0
        # Up-weighting the direct 4 -> 5 edge degrades the stored whole-graph
        # border value; the suspect probe finds it and repairs the row.
        database.update_edge_weight(4, 5, 10.0)
        assert database.engine() is engine
        assert engine.catalog.complementary.for_pair(0, 1)[(4, 5)] == 2.0  # 4 -> 6 -> 5
        assert set(database.last_delta.dirty_fragments) == {0, 1}
        assert database.last_delta.pairs_changed == ((0, 1),)
        _assert_matches_rebuild(database, [(1, 7), (6, 2), (0, 4)])
        assert database.statistics.incremental_updates == 1

    def test_update_events_carry_scope(self, database):
        events = []
        database.add_update_listener(events.append)
        database.insert_edge(1, 3, 100.0)
        assert events[-1].incremental
        assert events[-1].dirty_fragments == (0,)
        database.delete_edge(1, 3)
        assert events[-1].incremental
        assert 0 in events[-1].dirty_fragments

    def test_delta_log_records_the_stream(self, database):
        database.insert_edge(1, 3, 100.0)
        database.update_edge_weight(1, 3, 50.0)
        database.delete_edge(1, 3)
        kinds = [record.kind for record in database.delta_log.records()]
        assert kinds == ["insert", "reweight", "delete"]
        assert all(record.incremental for record in database.delta_log.records())


class TestFallbacks:
    def test_custom_semiring_falls_back_to_full_rebuild(self):
        graph = two_cluster_dumbbell(3, bridge_nodes=1)
        fragmentation = GroundTruthFragmenter([set(range(3)), set(range(3, 6))]).fragment(graph)
        database = FragmentedDatabase(
            fragmentation, semiring=widest_path_semiring(), incremental=True
        )
        first = database.engine()
        database.insert_edge(0, 2, 5.0)
        assert database.engine() is not first
        assert database.statistics.incremental_updates == 0
        assert database.statistics.engine_rebuilds == 2
        assert not database.delta_log.last().incremental

    def test_emptying_a_fragment_falls_back(self):
        graph = DiGraph(
            [
                ("a", "b", 1.0),
                ("b", "a", 1.0),
                ("c", "d", 1.0),
                ("d", "c", 1.0),
                ("b", "c", 1.0),
            ]
        )
        fragmentation = GroundTruthFragmenter([{"a", "b"}, {"c", "d"}]).fragment(graph)
        assert fragmentation.fragment_count() == 2
        database = FragmentedDatabase(fragmentation, incremental=True)
        engine = database.engine()
        epoch_before = database.version_vector.epoch
        database.delete_edge("c", "d")
        database.delete_edge("d", "c")  # fragment 1 is now empty: ids shift
        assert database.version_vector.epoch > epoch_before
        assert database.engine() is not engine
        assert database.fragmentation().fragment_count() == 1

    def test_classic_updates_advance_the_epoch(self):
        graph = two_cluster_dumbbell(3, bridge_nodes=1)
        fragmentation = GroundTruthFragmenter([set(range(3)), set(range(3, 6))]).fragment(graph)
        database = FragmentedDatabase(fragmentation)  # incremental off
        epoch = database.version_vector.epoch
        database.insert_edge(0, 2, 1.0)
        assert database.version_vector.epoch == epoch + 1
        assert database.delta_log.last().incremental is False

    def test_scoped_refragment_bumps_versions_not_the_epoch(self):
        from repro.fragmentation import CenterBasedFragmenter

        graph = two_cluster_dumbbell(4, bridge_nodes=1)
        fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
        database = FragmentedDatabase(fragmentation, incremental=True)
        engine = database.engine()
        epoch = database.version_vector.epoch
        database.refragment(CenterBasedFragmenter(2, center_selection="distributed"))
        # A live redraw is absorbed in place: the engine survives, only the
        # dirty fragments' versions move, and the record carries the layout.
        assert database.version_vector.epoch == epoch
        assert database.engine() is engine
        record = database.delta_log.last()
        assert record.kind == "refragment"
        assert record.incremental is True
        assert record.layout is not None

    def test_full_rebuild_refragment_advances_the_epoch(self):
        from repro.fragmentation import CenterBasedFragmenter

        graph = two_cluster_dumbbell(4, bridge_nodes=1)
        fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
        database = FragmentedDatabase(fragmentation)  # incremental off
        database.engine()
        epoch = database.version_vector.epoch
        database.refragment(CenterBasedFragmenter(2, center_selection="distributed"))
        assert database.version_vector.epoch == epoch + 1
        record = database.delta_log.last()
        assert record.kind == "refragment"
        assert record.incremental is False
        assert record.layout is not None  # replayable even on the classic path


class TestStoredPathRepair:
    """``store_paths=True`` catalogs are repaired in place, not rebuilt."""

    def _database(self):
        graph = two_cluster_dumbbell(4, bridge_nodes=2)
        fragmentation = GroundTruthFragmenter(
            [set(range(4)), set(range(4, 8))]
        ).fragment(graph)
        complementary = precompute_complementary_information(
            fragmentation, store_paths=True
        )
        database = FragmentedDatabase(
            fragmentation, complementary=complementary, incremental=True
        )
        database.engine()
        return database

    def _assert_paths_valid(self, database):
        """Stored route expansions must cover the same pairs a fresh
        precompute would, and every path must be a real walk whose cost
        equals the stored value (equal-cost alternatives may differ)."""
        info = database.engine().catalog.complementary
        fresh = precompute_complementary_information(
            database.fragmentation(), store_paths=True
        )
        assert set(info.paths) == set(fresh.paths)
        for pair, fresh_paths in fresh.paths.items():
            assert set(info.paths[pair]) == set(fresh_paths)
            for (source, target), path in info.paths[pair].items():
                assert path[0] == source and path[-1] == target
                cost = sum(
                    database.graph.edge_weight(a, b) for a, b in zip(path, path[1:])
                )
                assert cost == pytest.approx(info.values[pair][(source, target)])

    def test_store_paths_is_inside_the_envelope(self):
        database = self._database()
        assert supports_incremental(database)
        engine = database.engine()
        database.update_edge_weight(4, 5, 10.0)  # degrade the direct border edge
        assert database.engine() is engine
        assert database.statistics.incremental_updates == 1
        self._assert_paths_valid(database)

    def test_paths_follow_the_values_through_an_update_stream(self):
        database = self._database()
        engine = database.engine()
        database.update_edge_weight(4, 5, 10.0)
        database.insert_edge(0, 7, 3.0)
        database.update_edge_weight(0, 7, 1.0)
        database.delete_edge(0, 7)
        assert database.engine() is engine
        assert database.statistics.incremental_updates == 4
        self._assert_paths_valid(database)
        _assert_matches_rebuild(database, [(0, 7), (4, 5), (1, 6), (7, 0)])

    def test_custom_semiring_with_stored_paths_still_falls_back(self):
        graph = two_cluster_dumbbell(3, bridge_nodes=1)
        fragmentation = GroundTruthFragmenter(
            [set(range(3)), set(range(3, 6))]
        ).fragment(graph)
        semiring = widest_path_semiring()
        complementary = precompute_complementary_information(
            fragmentation, semiring=semiring, store_paths=True
        )
        database = FragmentedDatabase(
            fragmentation, semiring=semiring, complementary=complementary, incremental=True
        )
        first = database.engine()
        assert not supports_incremental(database)
        database.insert_edge(0, 2, 5.0)
        assert database.engine() is not first
        assert database.statistics.incremental_updates == 0
        assert not database.delta_log.last().incremental


class TestPostEmptyConsistency:
    """After a fragment empties, raw edge-set indices must keep matching the
    renumbered fragmentation ids — later updates crashed (or patched the
    wrong site) before the edge-set list was compacted alongside."""

    def _three_fragment_db(self):
        # Cross-block edges land in the lower block, so fragment 1 owns only
        # the c <-> d pair and can be emptied by deleting it.
        graph = DiGraph(
            [
                ("a", "b", 1.0),
                ("b", "a", 1.0),
                ("c", "d", 1.0),
                ("d", "c", 1.0),
                ("e", "f", 1.0),
                ("f", "e", 1.0),
                ("b", "c", 1.0),
                ("f", "a", 1.0),
            ]
        )
        fragmentation = GroundTruthFragmenter(
            [{"a", "b"}, {"c", "d"}, {"e", "f"}]
        ).fragment(graph)
        assert fragmentation.fragment_count() == 3
        database = FragmentedDatabase(fragmentation, incremental=True)
        database.engine()
        return database

    def test_update_after_a_fragment_emptied(self):
        database = self._three_fragment_db()
        database.delete_edge("c", "d")
        database.delete_edge("d", "c")  # fragment 1 empties; ids renumber
        assert database.fragmentation().fragment_count() == 2
        database.engine()
        # The edge formerly owned by raw index 2 must resolve to the live
        # catalog's renumbered id — no KeyError, no wrong-site refresh.
        database.update_edge_weight("e", "f", 9.0)
        engine = database.engine()
        assert engine.catalog.site(1).subgraph.edge_weight("e", "f") == 9.0
        _assert_matches_rebuild(database, [("a", "f"), ("e", "f"), ("b", "e")])

    def test_unexpected_repair_failure_falls_back_to_rebuild(self, monkeypatch):
        database = self._three_fragment_db()
        engine = database.engine()
        maintainer = database._ensure_maintainer()
        assert maintainer is not None

        def explode(*args, **kwargs):
            raise KeyError("simulated mid-repair failure")

        monkeypatch.setattr(maintainer, "complete", explode)
        database.update_edge_weight("a", "b", 5.0)
        # The mutation must never pair with the old engine: the update fell
        # back to a full rebuild and the new engine serves the new weight.
        assert database.engine() is not engine
        assert database.graph.edge_weight("a", "b") == 5.0
        assert not database.delta_log.last().incremental
        _assert_matches_rebuild(database, [("a", "f"), ("a", "b")])
