"""Unit tests for the delta log."""

import pytest

from repro.incremental import DeltaLog, EdgeChange


class TestDeltaLog:
    def test_append_assigns_increasing_sequences(self):
        log = DeltaLog()
        first = log.append("insert", dirty_fragments=(0,), incremental=True)
        second = log.append("delete", dirty_fragments=(1,), incremental=False)
        assert (first.sequence, second.sequence) == (1, 2)
        assert log.last_sequence == 2
        assert log.last() is second
        assert log.incremental_applied == 1
        assert log.full_rebuilds == 1

    def test_records_since(self):
        log = DeltaLog()
        for index in range(5):
            log.append("reweight", dirty_fragments=(index,), incremental=True)
        tail = log.records_since(3)
        assert [record.sequence for record in tail] == [4, 5]
        assert log.records_since(5) == []

    def test_records_since_reports_evicted_tail(self):
        log = DeltaLog(capacity=2)
        for _ in range(5):
            log.append("insert", incremental=True)
        assert len(log) == 2
        with pytest.raises(ValueError):
            log.records_since(1)
        assert [record.sequence for record in log.records_since(3)] == [4, 5]

    def test_record_carries_changes_and_versions(self):
        log = DeltaLog()
        change = EdgeChange(op="insert", source="a", target="b", weight=2.0, fragment_id=1)
        record = log.append(
            "insert",
            changes=(change,),
            dirty_fragments=(1,),
            incremental=True,
            versions={1: 4},
            epoch=2,
        )
        assert record.changes[0].source == "a"
        assert record.versions == {1: 4}
        assert record.epoch == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DeltaLog(capacity=0)
