"""Unit tests for the per-fragment version vector."""

from repro.incremental import VersionVector


class TestVersions:
    def test_unknown_fragments_start_at_zero(self):
        vector = VersionVector()
        assert vector.version_of(3) == 0
        assert vector.epoch == 0

    def test_bump_is_monotone_and_per_fragment(self):
        vector = VersionVector()
        assert vector.bump(1) == 1
        assert vector.bump(1) == 2
        assert vector.version_of(1) == 2
        assert vector.version_of(2) == 0

    def test_bump_all(self):
        vector = VersionVector()
        assert vector.bump_all([0, 2]) == {0: 1, 2: 1}
        assert vector.version_of(0) == 1
        assert vector.version_of(1) == 0

    def test_tag_changes_on_every_bump_and_epoch(self):
        vector = VersionVector()
        tags = {vector.tag()}
        vector.bump(0)
        tags.add(vector.tag())
        vector.bump(1)
        tags.add(vector.tag())
        vector.advance_epoch()
        tags.add(vector.tag())
        assert len(tags) == 4

    def test_snapshot_of_is_sorted_and_hashable(self):
        vector = VersionVector()
        vector.bump(2)
        snapshot = vector.snapshot_of([2, 0])
        assert snapshot == ((0, 0), (2, 1))
        hash(snapshot)

    def test_matches_validates_epoch_and_versions(self):
        vector = VersionVector()
        vector.bump(0)
        recorded = vector.snapshot_of([0, 1])
        assert vector.matches(vector.epoch, recorded)
        vector.bump(1)
        assert not vector.matches(vector.epoch, recorded)
        fresh = vector.snapshot_of([0, 1])
        vector.advance_epoch()
        assert not vector.matches(vector.epoch - 1, fresh)

    def test_dict_round_trip(self):
        vector = VersionVector()
        vector.bump(0)
        vector.bump(0)
        vector.bump(3)
        vector.advance_epoch()
        rebuilt = VersionVector.from_dict(vector.as_dict())
        assert rebuilt == vector
        assert rebuilt.tag() == vector.tag()

    def test_copy_is_independent(self):
        vector = VersionVector()
        vector.bump(0)
        clone = vector.copy()
        clone.bump(0)
        assert vector.version_of(0) == 1
        assert clone.version_of(0) == 2
