"""Property-based tests (hypothesis) for the fragmentation algorithms.

The invariants checked here hold for *every* graph and every fragmenter:

* the produced fragmentation is a valid edge partition (validate passes),
* every disconnection set is the node intersection of its two fragments,
* the linear fragmenter always yields an acyclic fragmentation graph,
* the characteristics are internally consistent (averages vs. sizes).
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fragmentation import (
    BondEnergyFragmenter,
    CenterBasedFragmenter,
    FragmentationGraph,
    HashFragmenter,
    LinearFragmenter,
    characterize,
)
from repro.graph import DiGraph, Point, mean

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def connected_coordinate_graphs(draw) -> DiGraph:
    """Generate a small connected symmetric graph with coordinates."""
    node_count = draw(st.integers(min_value=4, max_value=18))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    extra_edges = draw(st.integers(min_value=0, max_value=2 * node_count))
    rng = random.Random(seed)
    graph = DiGraph()
    for node in range(node_count):
        graph.set_coordinate(node, Point(rng.uniform(0, 100), rng.uniform(0, 100)))
    # Spanning tree first (guarantees connectivity), then extra random edges.
    for node in range(1, node_count):
        graph.add_symmetric_edge(node, rng.randrange(node), rng.uniform(1, 10))
    for _ in range(extra_edges):
        a, b = rng.randrange(node_count), rng.randrange(node_count)
        if a != b:
            graph.add_symmetric_edge(a, b, rng.uniform(1, 10))
    return graph


@st.composite
def fragmenters(draw, fragment_count: int):
    """Pick one of the fragmentation algorithms, configured for ``fragment_count``."""
    choice = draw(st.sampled_from(["center", "center-distributed", "bond", "linear", "hash"]))
    if choice == "center":
        return CenterBasedFragmenter(fragment_count, center_selection="random", seed=draw(st.integers(0, 99)))
    if choice == "center-distributed":
        return CenterBasedFragmenter(fragment_count, center_selection="distributed")
    if choice == "bond":
        return BondEnergyFragmenter(fragment_count, restarts=2)
    if choice == "linear":
        return LinearFragmenter(fragment_count)
    return HashFragmenter(fragment_count)


class TestFragmentationInvariants:
    @SETTINGS
    @given(graph=connected_coordinate_graphs(), data=st.data())
    def test_every_fragmenter_produces_a_valid_edge_partition(self, graph, data):
        fragment_count = data.draw(st.integers(min_value=1, max_value=4))
        fragmenter = data.draw(fragmenters(fragment_count))
        fragmentation = fragmenter.fragment(graph)
        fragmentation.validate()
        total_edges = sum(fragment.edge_count() for fragment in fragmentation.fragments)
        assert total_edges == graph.edge_count()

    @SETTINGS
    @given(graph=connected_coordinate_graphs(), data=st.data())
    def test_disconnection_sets_are_node_intersections(self, graph, data):
        fragment_count = data.draw(st.integers(min_value=2, max_value=4))
        fragmenter = data.draw(fragmenters(fragment_count))
        fragmentation = fragmenter.fragment(graph)
        for (i, j), border in fragmentation.disconnection_sets().items():
            expected = fragmentation.fragment(i).nodes & fragmentation.fragment(j).nodes
            assert border == expected
            assert border  # stored disconnection sets are nonempty by construction

    @SETTINGS
    @given(graph=connected_coordinate_graphs(), count=st.integers(min_value=1, max_value=5))
    def test_linear_fragmentation_graph_is_always_acyclic(self, graph, count):
        fragmentation = LinearFragmenter(count).fragment(graph)
        fragmentation.validate()
        assert FragmentationGraph(fragmentation).is_loosely_connected()

    @SETTINGS
    @given(graph=connected_coordinate_graphs(), data=st.data())
    def test_characteristics_are_consistent_with_raw_sizes(self, graph, data):
        fragment_count = data.draw(st.integers(min_value=1, max_value=4))
        fragmenter = data.draw(fragmenters(fragment_count))
        fragmentation = fragmenter.fragment(graph)
        characteristics = characterize(fragmentation, include_diameter=False)
        sizes = [float(size) for size in fragmentation.fragment_sizes()]
        ds_sizes = [float(size) for size in fragmentation.disconnection_set_sizes()]
        assert characteristics.average_fragment_size == mean(sizes)
        assert characteristics.average_disconnection_set_size == mean(ds_sizes)
        assert characteristics.fragment_count == fragmentation.fragment_count()
        assert characteristics.fragment_count <= fragment_count or fragment_count == 1

    @SETTINGS
    @given(graph=connected_coordinate_graphs(), count=st.integers(min_value=2, max_value=4))
    def test_border_nodes_belong_to_multiple_fragments(self, graph, count):
        fragmentation = CenterBasedFragmenter(count, center_selection="distributed").fragment(graph)
        for fragment in fragmentation.fragments:
            for node in fragmentation.border_nodes(fragment.fragment_id):
                assert len(fragmentation.fragments_of_node(node)) >= 2
