"""Unit tests for the bond-energy fragmentation algorithm (Sec. 3.2 / Fig. 5)."""

import pytest

from repro.exceptions import FragmenterConfigurationError
from repro.fragmentation import BondEnergyFragmenter, characterize
from repro.generators import grid_graph, two_cluster_dumbbell
from repro.graph import DiGraph


def _paper_figure5_graph() -> DiGraph:
    """The 6x6 adjacency matrix of Fig. 5 as a graph.

    Reconstructed from the worked example in the text: grouping nodes 1-3
    leaves 2 connections to the outside, both with node 5; grouping nodes 1-4
    leaves 3 connections, with nodes 5 and 6.  The adjacencies (1,2), (1,5),
    (2,3), (2,5), (4,6), (5,6) reproduce exactly those counts.
    """
    graph = DiGraph()
    for a, b in [(1, 2), (1, 5), (2, 3), (2, 5), (4, 6), (5, 6)]:
        graph.add_symmetric_edge(a, b)
    return graph


class TestConfiguration:
    def test_rejects_nonpositive_fragment_count(self):
        with pytest.raises(FragmenterConfigurationError):
            BondEnergyFragmenter(0)

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(FragmenterConfigurationError):
            BondEnergyFragmenter(2, threshold=0)

    def test_rejects_unknown_split_policy(self):
        with pytest.raises(FragmenterConfigurationError):
            BondEnergyFragmenter(2, split_policy="global_optimum")

    def test_rejects_empty_graph(self):
        with pytest.raises(FragmenterConfigurationError):
            BondEnergyFragmenter(2).fragment(DiGraph(nodes=["a"]))


class TestOrdering:
    def test_ordering_is_a_permutation_of_the_nodes(self):
        graph = grid_graph(4, 4)
        ordering = BondEnergyFragmenter(2).order_columns(graph)
        assert sorted(ordering, key=repr) == sorted(graph.nodes(), key=repr)

    def test_ordering_places_cliques_contiguously(self):
        graph = two_cluster_dumbbell(5, bridge_nodes=1)
        ordering = BondEnergyFragmenter(2).order_columns(graph)
        positions = {node: index for index, node in enumerate(ordering)}
        left_positions = sorted(positions[node] for node in range(5))
        right_positions = sorted(positions[node] for node in range(5, 10))
        # Each clique occupies a contiguous run of columns.
        assert left_positions == list(range(left_positions[0], left_positions[0] + 5))
        assert right_positions == list(range(right_positions[0], right_positions[0] + 5))

    def test_two_node_graph_ordering(self):
        graph = DiGraph()
        graph.add_symmetric_edge("a", "b")
        assert sorted(BondEnergyFragmenter(1).order_columns(graph)) == ["a", "b"]

    def test_exhaustive_restarts_allowed(self):
        graph = two_cluster_dumbbell(3, bridge_nodes=1)
        fragmenter = BondEnergyFragmenter(2, restarts=None)
        ordering = fragmenter.order_columns(graph)
        assert len(ordering) == graph.node_count()


class TestPaperFigure5:
    def test_external_connection_counts_match_the_paper(self):
        graph = _paper_figure5_graph()
        # "If nodes 1-3 are grouped together, there are 2 connections with
        # nodes outside the block, both with node 5."
        assert BondEnergyFragmenter.external_connections({1, 2, 3}, graph) == 2
        # "If instead nodes 1-4 are grouped together, there are 3 connections
        # with nodes outside the block, with nodes 5 and 6."
        assert BondEnergyFragmenter.external_connections({1, 2, 3, 4}, graph) == 3

    def test_splitting_prefers_the_small_cut(self):
        graph = _paper_figure5_graph()
        fragmenter = BondEnergyFragmenter(2, threshold=2, min_block_size=2)
        fragmentation = fragmenter.fragment(graph)
        fragmentation.validate()
        characteristics = characterize(fragmentation, include_diameter=False)
        # The preferred split keeps the disconnection set at the 1-2 shared
        # border nodes of the small cut, never the 3-node cut.
        assert characteristics.average_disconnection_set_size <= 2.0


class TestFragmentation:
    def test_dumbbell_yields_minimal_disconnection_set(self):
        graph = two_cluster_dumbbell(5, bridge_nodes=1)
        fragmentation = BondEnergyFragmenter(2).fragment(graph)
        fragmentation.validate()
        characteristics = characterize(fragmentation, include_diameter=False)
        assert characteristics.fragment_count == 2
        assert characteristics.average_disconnection_set_size <= 1.0

    def test_grid_fragmentation_covers_all_edges(self):
        graph = grid_graph(5, 5)
        fragmentation = BondEnergyFragmenter(3).fragment(graph)
        fragmentation.validate()

    def test_explicit_threshold_and_block_size(self):
        graph = grid_graph(4, 6)
        fragmentation = BondEnergyFragmenter(3, threshold=4, min_block_size=4).fragment(graph)
        fragmentation.validate()
        assert all(fragment.node_count() >= 3 for fragment in fragmentation.fragments)

    def test_local_minimum_policy(self):
        graph = two_cluster_dumbbell(4, bridge_nodes=1)
        fragmentation = BondEnergyFragmenter(2, split_policy="local_minimum").fragment(graph)
        fragmentation.validate()
        assert fragmentation.fragment_count() <= 2

    def test_requested_fragment_count_is_an_upper_bound(self):
        graph = grid_graph(4, 4)
        fragmentation = BondEnergyFragmenter(3).fragment(graph)
        assert fragmentation.fragment_count() <= 3

    def test_metadata_records_ordering_and_blocks(self):
        graph = two_cluster_dumbbell(3)
        fragmentation = BondEnergyFragmenter(2).fragment(graph)
        assert "ordering" in fragmentation.metadata
        assert fragmentation.metadata["block_count"] >= 1
