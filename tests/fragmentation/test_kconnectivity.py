"""Unit tests for the k-connectivity ("relevant nodes") fragmenter."""

import pytest

from repro.exceptions import FragmenterConfigurationError
from repro.fragmentation import KConnectivityFragmenter, characterize
from repro.generators import complete_graph, two_cluster_dumbbell
from repro.graph import DiGraph


class TestConfiguration:
    def test_rejects_nonpositive_fragment_count(self):
        with pytest.raises(FragmenterConfigurationError):
            KConnectivityFragmenter(0)

    def test_rejects_empty_graph(self):
        with pytest.raises(FragmenterConfigurationError):
            KConnectivityFragmenter(2).fragment(DiGraph(nodes=["a"]))


class TestFragmentation:
    def test_dumbbell_splits_at_the_cut_nodes(self):
        graph = two_cluster_dumbbell(5, bridge_nodes=1)
        fragmentation = KConnectivityFragmenter(2).fragment(graph)
        fragmentation.validate()
        characteristics = characterize(fragmentation, include_diameter=False)
        assert characteristics.fragment_count == 2
        assert characteristics.average_disconnection_set_size <= 2.0

    def test_metadata_reports_relevant_nodes(self):
        graph = two_cluster_dumbbell(4, bridge_nodes=1)
        fragmentation = KConnectivityFragmenter(2).fragment(graph)
        relevant = fragmentation.metadata["relevant_nodes"]
        assert 0 in relevant or 4 in relevant

    def test_dense_graph_degrades_to_few_fragments(self):
        # The failure mode the paper predicts: no relevant nodes exist in a
        # clique, so the approach cannot split it.
        graph = complete_graph(8)
        fragmentation = KConnectivityFragmenter(3).fragment(graph)
        fragmentation.validate()
        assert fragmentation.fragment_count() <= 2

    def test_three_way_chain_of_cliques(self):
        graph = two_cluster_dumbbell(4, bridge_nodes=1)
        # Attach a third clique to node 7 through a single cut edge.
        for a in (20, 21, 22):
            for b in (20, 21, 22):
                if a < b:
                    graph.add_symmetric_edge(a, b)
        graph.add_symmetric_edge(7, 20)
        fragmentation = KConnectivityFragmenter(3).fragment(graph)
        fragmentation.validate()
        assert fragmentation.fragment_count() == 3

    def test_covers_all_edges(self):
        graph = two_cluster_dumbbell(4, bridge_nodes=2)
        fragmentation = KConnectivityFragmenter(2).fragment(graph)
        assert sum(f.edge_count() for f in fragmentation.fragments) == graph.edge_count()
