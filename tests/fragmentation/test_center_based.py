"""Unit tests for the center-based fragmentation algorithm (Sec. 3.1 / Fig. 4)."""

import pytest

from repro.exceptions import FragmenterConfigurationError
from repro.fragmentation import (
    BALANCE_BY_DIAMETER,
    BALANCE_BY_SIZE,
    CenterBasedFragmenter,
    characterize,
)
from repro.generators import chain_graph, grid_graph, two_cluster_dumbbell
from repro.graph import DiGraph


class TestConfiguration:
    def test_rejects_nonpositive_fragment_count(self):
        with pytest.raises(FragmenterConfigurationError):
            CenterBasedFragmenter(0)

    def test_rejects_unknown_center_selection(self):
        with pytest.raises(FragmenterConfigurationError):
            CenterBasedFragmenter(2, center_selection="psychic")

    def test_rejects_unknown_balance_policy(self):
        with pytest.raises(FragmenterConfigurationError):
            CenterBasedFragmenter(2, balance="fastest")

    def test_rejects_empty_graph(self):
        with pytest.raises(FragmenterConfigurationError):
            CenterBasedFragmenter(2).fragment(DiGraph(nodes=["a"]))

    def test_distributed_variant_changes_name(self):
        assert CenterBasedFragmenter(2, center_selection="distributed").name == "center-based-distributed"
        assert CenterBasedFragmenter(2, center_selection="random").name == "center-based"


class TestBasicBehaviour:
    def test_produces_requested_fragment_count_on_grid(self):
        fragmentation = CenterBasedFragmenter(4, center_selection="distributed").fragment(grid_graph(6, 6))
        fragmentation.validate()
        assert fragmentation.fragment_count() == 4

    def test_covers_every_edge_exactly_once(self):
        graph = grid_graph(5, 5)
        fragmentation = CenterBasedFragmenter(3, center_selection="top_score").fragment(graph)
        fragmentation.validate()
        total = sum(fragment.edge_count() for fragment in fragmentation.fragments)
        assert total == graph.edge_count()

    def test_dumbbell_splits_along_the_bridge(self):
        graph = two_cluster_dumbbell(5, bridge_nodes=1)
        fragmentation = CenterBasedFragmenter(2, center_selection="distributed").fragment(graph)
        fragmentation.validate()
        characteristics = characterize(fragmentation)
        assert characteristics.fragment_count == 2
        # The single bridge should produce a small disconnection set.
        assert characteristics.average_disconnection_set_size <= 2.0

    def test_single_fragment_collapses_to_whole_graph(self):
        graph = grid_graph(3, 3)
        fragmentation = CenterBasedFragmenter(1).fragment(graph)
        fragmentation.validate()
        assert fragmentation.fragment_count() == 1
        assert fragmentation.fragment(0).edge_count() == graph.edge_count()

    def test_more_fragments_than_nodes_is_clamped(self):
        graph = chain_graph(3)
        fragmentation = CenterBasedFragmenter(10).fragment(graph)
        fragmentation.validate()
        assert fragmentation.fragment_count() <= 3

    def test_handles_disconnected_graph(self):
        graph = DiGraph()
        graph.add_symmetric_edge("a", "b")
        graph.add_symmetric_edge("x", "y")
        graph.add_symmetric_edge("y", "z")
        fragmentation = CenterBasedFragmenter(2, center_selection="top_score").fragment(graph)
        fragmentation.validate()

    def test_metadata_records_centers(self):
        graph = grid_graph(4, 4)
        fragmentation = CenterBasedFragmenter(2, center_selection="distributed").fragment(graph)
        centers = fragmentation.metadata["centers"]
        assert len(centers) == 2
        assert all(graph.has_node(center) for center in centers)


class TestVariants:
    def test_balance_by_size_produces_similar_fragment_sizes(self):
        graph = grid_graph(7, 7)
        fragmentation = CenterBasedFragmenter(
            3, center_selection="distributed", balance=BALANCE_BY_SIZE
        ).fragment(graph)
        fragmentation.validate()
        sizes = fragmentation.fragment_sizes()
        assert max(sizes) - min(sizes) <= max(sizes)  # no fragment dwarfs the others

    def test_balance_policies_both_cover_graph(self):
        graph = grid_graph(5, 6)
        for balance in (BALANCE_BY_DIAMETER, BALANCE_BY_SIZE):
            fragmentation = CenterBasedFragmenter(3, balance=balance).fragment(graph)
            fragmentation.validate()

    def test_random_selection_is_seed_deterministic(self):
        graph = grid_graph(5, 5)
        first = CenterBasedFragmenter(3, center_selection="random", seed=7).fragment(graph)
        second = CenterBasedFragmenter(3, center_selection="random", seed=7).fragment(graph)
        assert first.metadata["centers"] == second.metadata["centers"]

    def test_distributed_selection_without_coordinates_falls_back(self):
        graph = DiGraph()
        for x, y in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "f")]:
            graph.add_symmetric_edge(x, y)
        fragmentation = CenterBasedFragmenter(2, center_selection="distributed").fragment(graph)
        fragmentation.validate()
        assert fragmentation.fragment_count() == 2

    def test_distributed_centers_are_far_apart_on_dumbbell(self):
        graph = two_cluster_dumbbell(6, bridge_nodes=1)
        fragmentation = CenterBasedFragmenter(2, center_selection="distributed").fragment(graph)
        centers = fragmentation.metadata["centers"]
        sides = {0 if center < 6 else 1 for center in centers}
        assert sides == {0, 1}
