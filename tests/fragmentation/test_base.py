"""Unit tests for the Fragment / Fragmentation value objects."""

import pytest

from repro.exceptions import FragmentationError, InvalidFragmentationError
from repro.fragmentation import Fragment, Fragmentation, fragmentation_from_node_blocks
from repro.generators import two_cluster_dumbbell
from repro.graph import DiGraph


@pytest.fixture
def bridge_graph() -> DiGraph:
    """Two symmetric triangles {a,b,c} and {d,e,f} joined by c-d."""
    graph = DiGraph()
    for x, y in [("a", "b"), ("b", "c"), ("a", "c"), ("d", "e"), ("e", "f"), ("d", "f"), ("c", "d")]:
        graph.add_symmetric_edge(x, y, 1.0)
    return graph


@pytest.fixture
def bridge_fragmentation(bridge_graph) -> Fragmentation:
    left_edges = [e for e in bridge_graph.edges() if set(e) <= {"a", "b", "c", "d"} and "d" not in e or e in (("c", "d"), ("d", "c"))]
    left = [e for e in bridge_graph.edges() if set(e) <= {"a", "b", "c"}] + [("c", "d"), ("d", "c")]
    right = [e for e in bridge_graph.edges() if set(e) <= {"d", "e", "f"}]
    return Fragmentation(bridge_graph, [left, right], algorithm="manual")


class TestFragment:
    def test_nodes_derived_from_edges(self):
        fragment = Fragment(0, frozenset({("a", "b"), ("b", "c")}))
        assert fragment.nodes == {"a", "b", "c"}
        assert fragment.node_count() == 3
        assert fragment.edge_count() == 2

    def test_undirected_edge_count(self):
        fragment = Fragment(0, frozenset({("a", "b"), ("b", "a"), ("b", "c")}))
        assert fragment.undirected_edge_count() == 2

    def test_contains_node(self):
        fragment = Fragment(0, frozenset({("a", "b")}))
        assert fragment.contains_node("a")
        assert not fragment.contains_node("z")

    def test_subgraph_takes_weights_from_base(self, bridge_graph):
        fragment = Fragment(0, frozenset({("a", "b")}))
        sub = fragment.subgraph(bridge_graph)
        assert sub.edge_weight("a", "b") == 1.0


class TestFragmentation:
    def test_requires_at_least_one_fragment(self, bridge_graph):
        with pytest.raises(FragmentationError):
            Fragmentation(bridge_graph, [])

    def test_disconnection_set_is_node_intersection(self, bridge_fragmentation):
        assert bridge_fragmentation.disconnection_set(0, 1) == frozenset({"d"})
        assert bridge_fragmentation.disconnection_set(1, 0) == frozenset({"d"})

    def test_adjacent_fragments(self, bridge_fragmentation):
        assert bridge_fragmentation.adjacent_fragments(0) == [1]
        assert bridge_fragmentation.adjacent_fragments(1) == [0]

    def test_border_and_interior_nodes(self, bridge_fragmentation):
        assert bridge_fragmentation.border_nodes(0) == frozenset({"d"})
        assert "a" in bridge_fragmentation.interior_nodes(0)

    def test_fragments_of_node(self, bridge_fragmentation):
        assert bridge_fragmentation.fragments_of_node("d") == [0, 1]
        assert bridge_fragmentation.fragments_of_node("a") == [0]

    def test_home_fragment_unknown_node_raises(self, bridge_fragmentation):
        with pytest.raises(FragmentationError):
            bridge_fragmentation.home_fragment("ghost")

    def test_edge_fragment(self, bridge_fragmentation):
        assert bridge_fragmentation.edge_fragment("a", "b") == 0
        assert bridge_fragmentation.edge_fragment("e", "f") == 1
        with pytest.raises(FragmentationError):
            bridge_fragmentation.edge_fragment("a", "f")

    def test_fragment_id_out_of_range(self, bridge_fragmentation):
        with pytest.raises(FragmentationError):
            bridge_fragmentation.fragment(7)

    def test_sizes(self, bridge_fragmentation):
        assert bridge_fragmentation.fragment_sizes() == [4, 3]
        assert bridge_fragmentation.disconnection_set_sizes() == [1]

    def test_validate_accepts_well_formed(self, bridge_fragmentation):
        bridge_fragmentation.validate()

    def test_validate_rejects_missing_edges(self, bridge_graph):
        partial = Fragmentation(bridge_graph, [[("a", "b"), ("b", "a")]])
        with pytest.raises(InvalidFragmentationError):
            partial.validate()

    def test_validate_rejects_duplicate_assignment(self, bridge_graph):
        all_edges = bridge_graph.edges()
        duplicated = Fragmentation(bridge_graph, [all_edges, [all_edges[0]]])
        with pytest.raises(InvalidFragmentationError):
            duplicated.validate()

    def test_validate_rejects_foreign_edges(self, bridge_graph):
        foreign = Fragmentation(bridge_graph, [bridge_graph.edges() + [("x", "y")]])
        with pytest.raises(InvalidFragmentationError):
            foreign.validate()


class TestNodeBlockFragmentation:
    def test_blocks_become_fragments_with_shared_border(self):
        graph = two_cluster_dumbbell(4, bridge_nodes=1)
        blocks = [set(range(4)), set(range(4, 8))]
        fragmentation = fragmentation_from_node_blocks(graph, blocks, algorithm="blocks")
        fragmentation.validate()
        assert fragmentation.fragment_count() == 2
        # The bridge edge (0, 4) went to fragment 0, so node 4 is shared.
        assert fragmentation.disconnection_set(0, 1)

    def test_duplicate_block_membership_raises(self):
        graph = two_cluster_dumbbell(3)
        with pytest.raises(FragmentationError):
            fragmentation_from_node_blocks(graph, [{0, 1, 2}, {2, 3, 4, 5}])

    def test_uncovered_node_raises(self):
        graph = two_cluster_dumbbell(3)
        with pytest.raises(FragmentationError):
            fragmentation_from_node_blocks(graph, [{0, 1, 2}])

    def test_metadata_records_blocks(self):
        graph = two_cluster_dumbbell(3)
        fragmentation = fragmentation_from_node_blocks(graph, [{0, 1, 2}, {3, 4, 5}])
        assert "node_blocks" in fragmentation.metadata
