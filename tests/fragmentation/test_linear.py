"""Unit tests for the linear fragmentation algorithm (Sec. 3.3 / Fig. 7)."""

import pytest

from repro.exceptions import FragmenterConfigurationError, MissingCoordinatesError
from repro.fragmentation import FragmentationGraph, LinearFragmenter, characterize
from repro.generators import chain_graph, grid_graph, two_cluster_dumbbell
from repro.graph import DiGraph


class TestConfiguration:
    def test_rejects_nonpositive_fragment_count(self):
        with pytest.raises(FragmenterConfigurationError):
            LinearFragmenter(0)

    def test_rejects_nonpositive_start_node_count(self):
        with pytest.raises(FragmenterConfigurationError):
            LinearFragmenter(2, start_node_count=0)

    def test_rejects_unknown_sweep(self):
        with pytest.raises(FragmenterConfigurationError):
            LinearFragmenter(2, sweep="diagonal")

    def test_requires_coordinates_or_start_nodes(self):
        graph = DiGraph()
        graph.add_symmetric_edge("a", "b")
        with pytest.raises(MissingCoordinatesError):
            LinearFragmenter(2).fragment(graph)

    def test_explicit_start_nodes_avoid_coordinate_requirement(self):
        graph = DiGraph()
        graph.add_symmetric_edge("a", "b")
        graph.add_symmetric_edge("b", "c")
        fragmentation = LinearFragmenter(2, start_nodes=["a"]).fragment(graph)
        fragmentation.validate()

    def test_unknown_start_node_raises(self):
        graph = chain_graph(4)
        with pytest.raises(FragmenterConfigurationError):
            LinearFragmenter(2, start_nodes=["ghost"]).fragment(graph)

    def test_rejects_empty_graph(self):
        with pytest.raises(FragmenterConfigurationError):
            LinearFragmenter(2).fragment(DiGraph(nodes=["a"]))


class TestAcyclicity:
    """The linear fragmentation's defining guarantee: G' has no cycles."""

    @pytest.mark.parametrize("rows,columns,fragments", [(4, 8, 2), (5, 10, 3), (6, 6, 4)])
    def test_grid_fragmentations_are_loosely_connected(self, rows, columns, fragments):
        fragmentation = LinearFragmenter(fragments).fragment(grid_graph(rows, columns))
        fragmentation.validate()
        assert FragmentationGraph(fragmentation).is_loosely_connected()

    def test_dumbbell_fragmentation_is_loosely_connected(self):
        graph = two_cluster_dumbbell(5, bridge_nodes=2)
        fragmentation = LinearFragmenter(2).fragment(graph)
        fragmentation.validate()
        assert FragmentationGraph(fragmentation).is_loosely_connected()

    def test_consecutive_fragments_only(self):
        # Fragments produced by the sweep should only overlap their sweep
        # neighbours (fragmentation graph is a path).
        fragmentation = LinearFragmenter(4).fragment(grid_graph(4, 12))
        fg = FragmentationGraph(fragmentation)
        for i, j in fg.edges():
            assert abs(i - j) == 1


class TestThresholdAndSizes:
    def test_threshold_is_edge_count_over_fragments(self):
        graph = grid_graph(4, 6)
        fragmenter = LinearFragmenter(3)
        assert fragmenter._edge_threshold(graph) == graph.undirected_edge_count() // 3

    def test_fragment_sizes_at_least_threshold_except_last(self):
        graph = grid_graph(5, 12)
        fragmenter = LinearFragmenter(4)
        fragmentation = fragmenter.fragment(graph)
        threshold = fragmenter._edge_threshold(graph)
        sizes = fragmentation.fragment_sizes()
        assert all(size >= threshold for size in sizes[:-1])

    def test_covers_every_edge(self):
        graph = grid_graph(6, 6)
        fragmentation = LinearFragmenter(3).fragment(graph)
        fragmentation.validate()
        assert sum(f.edge_count() for f in fragmentation.fragments) == graph.edge_count()

    def test_single_fragment(self):
        graph = grid_graph(3, 3)
        fragmentation = LinearFragmenter(1).fragment(graph)
        assert fragmentation.fragment_count() == 1

    def test_handles_disconnected_graph(self):
        graph = grid_graph(3, 3)
        graph.add_symmetric_edge("islandA", "islandB")
        graph.set_coordinate("islandA", (50.0, 50.0))
        graph.set_coordinate("islandB", (51.0, 50.0))
        fragmentation = LinearFragmenter(2).fragment(graph)
        fragmentation.validate()


class TestStartNodesAndSweeps:
    def test_start_nodes_have_smallest_x(self):
        graph = grid_graph(3, 5)
        fragmenter = LinearFragmenter(2, start_node_count=3)
        start = fragmenter._select_start_nodes(graph)
        xs = {graph.coordinate(node).x for node in start}
        assert xs == {0.0}

    def test_sweep_direction_changes_start_nodes(self):
        graph = grid_graph(3, 5)
        left = LinearFragmenter(2, sweep="left_to_right")._select_start_nodes(graph)
        right = LinearFragmenter(2, sweep="right_to_left")._select_start_nodes(graph)
        assert graph.coordinate(left[0]).x == 0.0
        assert graph.coordinate(right[0]).x == 4.0

    def test_fig8_start_choice_affects_disconnection_sets(self):
        # An elongated grid: sweeping along the long axis crosses a narrow
        # boundary (small DS); sweeping along the short axis cuts across the
        # wide side (large DS) - the intuition of Fig. 8.
        graph = grid_graph(3, 12)
        along = LinearFragmenter(3, sweep="left_to_right").fragment(graph)
        across = LinearFragmenter(3, sweep="bottom_to_top").fragment(graph)
        ds_along = characterize(along, include_diameter=False).average_disconnection_set_size
        ds_across = characterize(across, include_diameter=False).average_disconnection_set_size
        assert ds_along <= ds_across

    def test_metadata_records_sweep_and_boundaries(self):
        fragmentation = LinearFragmenter(2).fragment(grid_graph(4, 6))
        assert fragmentation.metadata["sweep"] == "left_to_right"
        assert "boundary_sets" in fragmentation.metadata
