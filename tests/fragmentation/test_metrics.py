"""Unit tests for the fragmentation characteristic metrics (Tables 1-3 columns)."""

import pytest

from repro.fragmentation import (
    Fragmentation,
    GroundTruthFragmenter,
    characteristics_table,
    characterize,
    complementary_information_size,
    fragment_diameters,
    total_border_nodes,
    workload_balance,
)
from repro.generators import two_cluster_dumbbell
from repro.graph import DiGraph


@pytest.fixture
def dumbbell_fragmentation() -> Fragmentation:
    graph = two_cluster_dumbbell(4, bridge_nodes=1)
    return GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)


class TestCharacterize:
    def test_columns_present(self, dumbbell_fragmentation):
        characteristics = characterize(dumbbell_fragmentation)
        row = characteristics.as_dict()
        assert {"F", "DS", "AF", "ADS", "cycle_count", "loosely_connected"} <= set(row)

    def test_fragment_count_and_sizes(self, dumbbell_fragmentation):
        characteristics = characterize(dumbbell_fragmentation)
        assert characteristics.fragment_count == 2
        # Each clique has 6 undirected edges; the bridge edge joins fragment 0.
        assert characteristics.average_fragment_size == pytest.approx(6.5)
        assert characteristics.fragment_size_deviation == pytest.approx(0.5)

    def test_disconnection_set_stats(self, dumbbell_fragmentation):
        characteristics = characterize(dumbbell_fragmentation)
        assert characteristics.disconnection_set_count == 1
        assert characteristics.average_disconnection_set_size == 1.0
        assert characteristics.disconnection_set_deviation == 0.0

    def test_loose_connectivity_flag(self, dumbbell_fragmentation):
        characteristics = characterize(dumbbell_fragmentation)
        assert characteristics.loosely_connected
        assert characteristics.cycle_count == 0

    def test_diameter_can_be_skipped(self, dumbbell_fragmentation):
        without = characterize(dumbbell_fragmentation, include_diameter=False)
        with_diameter = characterize(dumbbell_fragmentation, include_diameter=True)
        assert without.max_fragment_diameter == 0
        assert with_diameter.max_fragment_diameter >= 1

    def test_characteristics_table(self, dumbbell_fragmentation):
        rows = characteristics_table([characterize(dumbbell_fragmentation)])
        assert len(rows) == 1
        assert rows[0]["algorithm"] == "ground-truth"


class TestDerivedMetrics:
    def test_fragment_diameters(self, dumbbell_fragmentation):
        diameters = fragment_diameters(dumbbell_fragmentation)
        assert len(diameters) == 2
        assert all(diameter >= 1 for diameter in diameters)

    def test_workload_balance_range(self, dumbbell_fragmentation):
        balance = workload_balance(dumbbell_fragmentation)
        assert 0.0 < balance <= 1.0

    def test_workload_balance_perfectly_equal(self):
        graph = DiGraph()
        graph.add_symmetric_edge("a", "b")
        graph.add_symmetric_edge("c", "d")
        fragmentation = Fragmentation(
            graph, [[("a", "b"), ("b", "a")], [("c", "d"), ("d", "c")]]
        )
        assert workload_balance(fragmentation) == 1.0

    def test_total_border_nodes(self, dumbbell_fragmentation):
        assert total_border_nodes(dumbbell_fragmentation) == 1

    def test_complementary_information_size_quadratic_in_border(self, dumbbell_fragmentation):
        # One shared border node -> no border-to-border pairs to precompute.
        assert complementary_information_size(dumbbell_fragmentation) == 0
        graph = two_cluster_dumbbell(4, bridge_nodes=2)
        fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
        assert complementary_information_size(fragmentation) > 0
