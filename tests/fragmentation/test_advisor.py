"""Tests for the fragmentation advisor."""

import pytest

from repro.fragmentation import (
    AdvisorConstraints,
    BondEnergyFragmenter,
    LinearFragmenter,
    recommend,
)
from repro.generators import grid_graph, two_cluster_dumbbell
from repro.graph import DiGraph


class TestRecommendations:
    def test_recommendation_is_usable(self, small_transportation_network):
        graph = small_transportation_network.graph
        recommendation = recommend(graph, AdvisorConstraints(processor_count=4))
        fragmentation = recommendation.fragment(graph)
        fragmentation.validate()
        assert recommendation.fragment_count == 4
        assert recommendation.rationale

    def test_acyclicity_requirement_picks_linear(self, small_transportation_network):
        graph = small_transportation_network.graph
        recommendation = recommend(
            graph, AdvisorConstraints(processor_count=4, require_acyclic=True)
        )
        assert isinstance(recommendation.fragmenter, LinearFragmenter)

    def test_trial_runs_record_characteristics(self, small_transportation_network):
        graph = small_transportation_network.graph
        recommendation = recommend(graph, AdvisorConstraints(processor_count=3, allow_trial_runs=True))
        assert recommendation.trial_characteristics
        for characteristics in recommendation.trial_characteristics.values():
            assert characteristics.fragment_count >= 1

    def test_structural_heuristics_without_trials(self):
        graph = two_cluster_dumbbell(5, bridge_nodes=1)
        recommendation = recommend(
            graph, AdvisorConstraints(processor_count=2, allow_trial_runs=False)
        )
        # The single bridge creates articulation points -> bond-energy is advised.
        assert isinstance(recommendation.fragmenter, BondEnergyFragmenter)

    def test_elongated_graph_without_trials_prefers_linear(self):
        graph = grid_graph(2, 30)
        recommendation = recommend(
            graph, AdvisorConstraints(processor_count=3, allow_trial_runs=False)
        )
        assert isinstance(recommendation.fragmenter, LinearFragmenter)

    def test_graph_without_coordinates_still_gets_a_recommendation(self):
        graph = DiGraph()
        for a, b in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("b", "d")]:
            graph.add_symmetric_edge(a, b)
        recommendation = recommend(graph, AdvisorConstraints(processor_count=2))
        fragmentation = recommendation.fragment(graph)
        fragmentation.validate()

    def test_processor_count_is_clamped_for_tiny_graphs(self):
        graph = DiGraph()
        graph.add_symmetric_edge("a", "b")
        graph.add_symmetric_edge("b", "c")
        recommendation = recommend(graph, AdvisorConstraints(processor_count=16))
        assert recommendation.fragment_count <= 2

    def test_priority_balance_changes_scoring(self, small_transportation_network):
        graph = small_transportation_network.graph
        ds_first = recommend(graph, AdvisorConstraints(processor_count=4, prioritize="disconnection_sets"))
        balance_first = recommend(graph, AdvisorConstraints(processor_count=4, prioritize="balance"))
        # Both recommendations must be valid; they may or may not coincide.
        ds_first.fragment(graph).validate()
        balance_first.fragment(graph).validate()
