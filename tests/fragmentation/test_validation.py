"""Unit tests for fragmentation validation and quality measures."""

import pytest

from repro.fragmentation import (
    Fragmentation,
    GroundTruthFragmenter,
    HashFragmenter,
    cluster_agreement,
    covers_all_nodes,
    disconnection_set_correctness,
    edge_preservation,
    is_valid,
)
from repro.generators import two_cluster_dumbbell
from repro.graph import DiGraph


@pytest.fixture
def dumbbell():
    graph = two_cluster_dumbbell(4, bridge_nodes=1)
    clusters = [set(range(4)), set(range(4, 8))]
    return graph, clusters, GroundTruthFragmenter(clusters).fragment(graph)


class TestStructuralValidation:
    def test_valid_fragmentation(self, dumbbell):
        _, _, fragmentation = dumbbell
        assert is_valid(fragmentation)
        assert covers_all_nodes(fragmentation)
        assert edge_preservation(fragmentation) == 1.0

    def test_partial_fragmentation_detected(self):
        graph = DiGraph()
        graph.add_symmetric_edge("a", "b")
        graph.add_symmetric_edge("b", "c")
        partial = Fragmentation(graph, [[("a", "b"), ("b", "a")]])
        assert not is_valid(partial)
        assert edge_preservation(partial) == 0.5

    def test_covers_all_nodes_ignores_isolated(self):
        graph = DiGraph()
        graph.add_symmetric_edge("a", "b")
        graph.add_node("isolated")
        fragmentation = Fragmentation(graph, [[("a", "b"), ("b", "a")]])
        assert covers_all_nodes(fragmentation)


class TestClusterAgreement:
    def test_perfect_agreement(self, dumbbell):
        _, clusters, fragmentation = dumbbell
        assert cluster_agreement(fragmentation, clusters) == 1.0

    def test_hash_fragmentation_agrees_less(self, dumbbell):
        graph, clusters, truth = dumbbell
        hashed = HashFragmenter(2).fragment(graph)
        assert cluster_agreement(hashed, clusters) <= cluster_agreement(truth, clusters)

    def test_agreement_with_few_nodes_defaults_to_one(self):
        graph = DiGraph()
        graph.add_symmetric_edge("a", "b")
        fragmentation = Fragmentation(graph, [[("a", "b"), ("b", "a")]])
        assert cluster_agreement(fragmentation, [{"a", "b"}]) == 1.0


class TestDisconnectionSetCorrectness:
    def test_ground_truth_is_correct(self, dumbbell):
        _, _, fragmentation = dumbbell
        assert disconnection_set_correctness(fragmentation)

    def test_two_bridge_dumbbell_is_correct(self):
        graph = two_cluster_dumbbell(4, bridge_nodes=2)
        fragmentation = GroundTruthFragmenter([set(range(4)), set(range(4, 8))]).fragment(graph)
        assert disconnection_set_correctness(fragmentation)
