"""Unit tests for the fragmentation graph G' and chain enumeration."""

import pytest

from repro.fragmentation import Fragmentation, FragmentationGraph, GroundTruthFragmenter
from repro.generators import TransportationGraphConfig, chain_graph, generate_transportation_graph
from repro.graph import DiGraph


def _chain_fragmentation(cluster_count: int = 4) -> Fragmentation:
    """A fragmentation whose fragmentation graph is a path of ``cluster_count`` fragments."""
    graph = chain_graph(cluster_count * 3 + 1)
    fragments = []
    for index in range(cluster_count):
        nodes = range(index * 3, index * 3 + 4)
        edges = [
            (a, b)
            for a, b in graph.edges()
            if a in nodes and b in nodes
        ]
        fragments.append(edges)
    return Fragmentation(graph, fragments, algorithm="chain")


def _cyclic_fragmentation() -> Fragmentation:
    """Three fragments pairwise sharing one node -> fragmentation graph is a triangle."""
    graph = DiGraph()
    for x, y in [("a", "ab"), ("ab", "b"), ("b", "bc"), ("bc", "c"), ("c", "ca"), ("ca", "a")]:
        graph.add_symmetric_edge(x, y)
    fragment_a = [e for e in graph.edges() if set(e) & {"a"}]
    fragment_b = [e for e in graph.edges() if set(e) & {"b"} and e not in fragment_a]
    fragment_c = [e for e in graph.edges() if e not in fragment_a and e not in fragment_b]
    return Fragmentation(graph, [fragment_a, fragment_b, fragment_c], algorithm="triangle")


class TestStructure:
    def test_chain_fragmentation_graph_is_a_path(self):
        fg = FragmentationGraph(_chain_fragmentation(4))
        assert fg.edges() == [(0, 1), (1, 2), (2, 3)]
        assert fg.is_loosely_connected()
        assert fg.cycle_count() == 0
        assert fg.is_connected()

    def test_neighbors(self):
        fg = FragmentationGraph(_chain_fragmentation(3))
        assert fg.neighbors(1) == [0, 2]
        assert fg.neighbors(0) == [1]

    def test_cyclic_fragmentation_detected(self):
        fg = FragmentationGraph(_cyclic_fragmentation())
        assert fg.cycle_count() == 1
        assert not fg.is_loosely_connected()

    def test_degree_histogram(self):
        fg = FragmentationGraph(_chain_fragmentation(4))
        assert fg.degree_histogram() == {1: 2, 2: 2}


class TestChains:
    def test_single_chain_on_loose_fragmentation(self):
        fg = FragmentationGraph(_chain_fragmentation(4))
        chains = fg.chains(0, 3)
        assert chains == [[0, 1, 2, 3]]
        assert fg.shortest_chain(0, 3) == [0, 1, 2, 3]

    def test_chain_to_self(self):
        fg = FragmentationGraph(_chain_fragmentation(3))
        assert fg.chains(1, 1) == [[1]]

    def test_multiple_chains_on_cyclic_fragmentation(self):
        fg = FragmentationGraph(_cyclic_fragmentation())
        chains = fg.chains(0, 2)
        assert sorted(chains) == [[0, 1, 2], [0, 2]]
        assert fg.shortest_chain(0, 2) == [0, 2]

    def test_max_chains_caps_enumeration(self):
        fg = FragmentationGraph(_cyclic_fragmentation())
        chains = fg.chains(0, 2, max_chains=1)
        assert len(chains) == 1

    def test_no_chain_between_disconnected_fragments(self):
        graph = DiGraph()
        graph.add_symmetric_edge("a", "b")
        graph.add_symmetric_edge("x", "y")
        fragmentation = Fragmentation(
            graph,
            [[("a", "b"), ("b", "a")], [("x", "y"), ("y", "x")]],
        )
        fg = FragmentationGraph(fragmentation)
        assert fg.chains(0, 1) == []
        assert fg.shortest_chain(0, 1) is None
        assert not fg.is_connected()

    def test_chain_disconnection_sets(self):
        fragmentation = _chain_fragmentation(3)
        fg = FragmentationGraph(fragmentation)
        sets = fg.chain_disconnection_sets([0, 1, 2])
        assert len(sets) == 2
        assert all(len(s) == 1 for s in sets)


class TestOnGeneratedNetwork:
    def test_ground_truth_fragmentation_of_chain_network_is_loose(self):
        config = TransportationGraphConfig(
            cluster_count=4, nodes_per_cluster=8, cluster_c1=140.0, inter_cluster_edges=1
        )
        network = generate_transportation_graph(config, seed=2)
        fragmentation = GroundTruthFragmenter(network.clusters).fragment(network.graph)
        fg = FragmentationGraph(fragmentation)
        assert fg.is_connected()
        assert fg.is_loosely_connected()
