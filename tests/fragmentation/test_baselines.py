"""Unit tests for the baseline fragmenters."""

import pytest

from repro.exceptions import FragmenterConfigurationError
from repro.fragmentation import (
    GroundTruthFragmenter,
    HashFragmenter,
    RandomNodeFragmenter,
    characterize,
)
from repro.generators import grid_graph, two_cluster_dumbbell


class TestHashFragmenter:
    def test_covers_all_edges(self):
        graph = grid_graph(4, 5)
        fragmentation = HashFragmenter(3).fragment(graph)
        fragmentation.validate()

    def test_is_deterministic(self):
        graph = grid_graph(4, 4)
        first = HashFragmenter(3).fragment(graph)
        second = HashFragmenter(3).fragment(graph)
        assert [f.edges for f in first.fragments] == [f.edges for f in second.fragments]

    def test_has_large_disconnection_sets(self):
        # Hash partitioning ignores locality, so the two-clique graph ends up
        # with far larger borders than the graph-aware ground truth.
        graph = two_cluster_dumbbell(6, bridge_nodes=1)
        hash_ds = characterize(HashFragmenter(2).fragment(graph), include_diameter=False)
        truth_ds = characterize(
            GroundTruthFragmenter([set(range(6)), set(range(6, 12))]).fragment(graph),
            include_diameter=False,
        )
        assert hash_ds.average_disconnection_set_size > truth_ds.average_disconnection_set_size

    def test_invalid_count(self):
        with pytest.raises(FragmenterConfigurationError):
            HashFragmenter(0)


class TestRandomNodeFragmenter:
    def test_covers_all_edges(self):
        graph = grid_graph(5, 5)
        fragmentation = RandomNodeFragmenter(3, seed=1).fragment(graph)
        fragmentation.validate()

    def test_seed_determinism(self):
        graph = grid_graph(4, 4)
        first = RandomNodeFragmenter(2, seed=9).fragment(graph)
        second = RandomNodeFragmenter(2, seed=9).fragment(graph)
        assert [f.edges for f in first.fragments] == [f.edges for f in second.fragments]

    def test_different_seed_differs(self):
        graph = grid_graph(4, 4)
        first = RandomNodeFragmenter(2, seed=1).fragment(graph)
        second = RandomNodeFragmenter(2, seed=2).fragment(graph)
        assert [f.edges for f in first.fragments] != [f.edges for f in second.fragments]


class TestGroundTruthFragmenter:
    def test_reproduces_known_clusters(self):
        graph = two_cluster_dumbbell(5, bridge_nodes=1)
        clusters = [set(range(5)), set(range(5, 10))]
        fragmentation = GroundTruthFragmenter(clusters).fragment(graph)
        fragmentation.validate()
        assert fragmentation.fragment_count() == 2
        characteristics = characterize(fragmentation, include_diameter=False)
        assert characteristics.average_disconnection_set_size == 1.0

    def test_uncovered_nodes_fall_into_first_cluster(self):
        graph = two_cluster_dumbbell(3, bridge_nodes=1)
        graph.add_symmetric_edge(0, "extra")
        fragmentation = GroundTruthFragmenter([set(range(3)), set(range(3, 6))]).fragment(graph)
        fragmentation.validate()

    def test_empty_clusters_rejected(self):
        with pytest.raises(FragmenterConfigurationError):
            GroundTruthFragmenter([])
