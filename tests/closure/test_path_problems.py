"""Unit tests for the high-level path-problem entry points."""

import pytest

from repro.closure import (
    bill_of_materials,
    connection_matrix,
    diameter_in_iterations,
    is_connected,
    reachability_closure,
    shortest_path_closure,
    shortest_path_cost,
    shortest_path_route,
)
from repro.exceptions import DisconnectedError
from repro.generators import chain_graph, layered_dag
from repro.graph import DiGraph


class TestConnectivityQueries:
    def test_is_connected_true_false(self):
        graph = DiGraph([("a", "b"), ("b", "c")])
        assert is_connected(graph, "a", "c")
        assert not is_connected(graph, "c", "a")

    def test_is_connected_missing_node(self):
        graph = DiGraph([("a", "b")])
        assert not is_connected(graph, "a", "ghost")

    def test_is_connected_to_self(self):
        graph = DiGraph(nodes=["x"])
        assert is_connected(graph, "x", "x")

    def test_connection_matrix(self):
        graph = chain_graph(3, symmetric=False)
        matrix = connection_matrix(graph)
        assert matrix[0][2] is True
        assert 0 not in matrix[2]


class TestShortestPathQueries:
    def test_cost(self):
        graph = DiGraph([("a", "b", 2.0), ("b", "c", 3.0), ("a", "c", 10.0)])
        assert shortest_path_cost(graph, "a", "c") == 5.0

    def test_cost_to_self_is_zero(self):
        graph = DiGraph(nodes=["a"])
        assert shortest_path_cost(graph, "a", "a") == 0.0

    def test_unreachable_raises(self):
        graph = DiGraph([("a", "b")])
        graph.add_node("z")
        with pytest.raises(DisconnectedError):
            shortest_path_cost(graph, "a", "z")

    def test_route(self):
        graph = DiGraph([("a", "b", 1.0), ("b", "c", 1.0)])
        cost, route = shortest_path_route(graph, "a", "c")
        assert cost == 2.0
        assert route == ["a", "b", "c"]

    def test_full_closures_consistent(self):
        graph = chain_graph(4)
        reach = reachability_closure(graph)
        short = shortest_path_closure(graph)
        # The iterative reachability closure also derives (i, i) facts on
        # symmetric graphs; ignoring those, both closures connect the same pairs.
        reach_pairs = {(s, t) for s, t in reach.pairs() if s != t}
        assert reach_pairs == short.pairs()


class TestBillOfMaterials:
    def test_path_counts_in_layered_dag(self):
        # 3 layers of width 2: from a top node to a bottom node there are
        # exactly 2 distinct paths (one through each middle node).
        graph = layered_dag(3, 2)
        result = bill_of_materials(graph)
        assert result.values[(0, 4)] == 2

    def test_direct_edge_counts_one(self):
        graph = DiGraph([("assembly", "part")])
        result = bill_of_materials(graph)
        assert result.values[("assembly", "part")] == 1


class TestDiameterInIterations:
    def test_matches_chain_length(self):
        assert diameter_in_iterations(chain_graph(8, symmetric=False)) in (7, 8)

    def test_smaller_graph_needs_fewer_iterations(self):
        assert diameter_in_iterations(chain_graph(4)) < diameter_in_iterations(chain_graph(12))

    def test_compact_matches_literal_measurement(self):
        """The kernel-computed round count equals the dict fixpoint's count.

        This is the regression for the old hardcoded ``use_compact=False``:
        the compact path must be an *equivalent* fast path, not a different
        definition.
        """
        import random

        cases = [chain_graph(6, symmetric=False), chain_graph(9), layered_dag(3, 3)]
        ring = DiGraph()
        for i in range(7):
            ring.add_edge(i, (i + 1) % 7, 1.0)
        cases.append(ring)
        looped = DiGraph()
        looped.add_edge(0, 0, 1.0)
        looped.add_edge(0, 1, 1.0)
        cases.append(looped)
        empty = DiGraph()
        empty.add_node("only")
        cases.append(empty)
        rng = random.Random(77)
        for _ in range(3):
            g = DiGraph()
            for i in range(30):
                g.add_node(i)
            for _ in range(70):
                g.add_edge(rng.randrange(30), rng.randrange(30), 1.0)
            cases.append(g)
        for graph in cases:
            literal = diameter_in_iterations(graph, use_compact=False)
            assert diameter_in_iterations(graph, use_compact=True) == literal
