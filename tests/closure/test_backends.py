"""Kernel backend layer: dispatch, equivalence, caching, persistence."""

import os
import pickle
import random

import pytest

from repro.closure import (
    BACKEND_BIGINT,
    BACKEND_CHAIN,
    BACKEND_NUMPY,
    ChainIndex,
    bitset_reachable,
    chain_index,
    compact_reachability_closure,
    graph_shape,
    numpy_available,
    packed_matrix,
    reachability_rows,
    reachability_semiring,
    seminaive_transitive_closure,
    select_kernel,
    selection_counts,
    strongly_connected_components,
)
from repro.closure.backends import (
    CHAIN_KEY,
    ENV_BACKEND_OVERRIDE,
    ENV_DISABLE_NUMPY,
    PACKED_KEY,
    SHAPE_KEY,
)
from repro.graph import CompactGraph, DiGraph

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend unavailable"
)

ALL_BACKENDS = (BACKEND_BIGINT, BACKEND_NUMPY, BACKEND_CHAIN)


def random_compact(seed: int, n: int = 90, edges: int = 320) -> CompactGraph:
    rng = random.Random(seed)
    return CompactGraph.from_edges(
        [(rng.randrange(n), rng.randrange(n), 1.0) for _ in range(edges)],
        nodes=range(n),
    )


def bigint_rows(graph: CompactGraph) -> dict:
    return {i: bitset_reachable(graph, i) for i in range(graph.node_count())}


class TestChainIndex:
    def test_scc_numbering_is_reverse_topological(self):
        graph = CompactGraph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 3, 1.0), (3, 4, 1.0)]
        )
        comp_of, comp_count = strongly_connected_components(graph)
        assert comp_count == 3
        # The 0-1-2 cycle is one component; every cross edge points to a
        # smaller component id.
        assert comp_of[0] == comp_of[1] == comp_of[2]
        assert comp_of[2] > comp_of[3] > comp_of[4]

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_reachable_masks_match_bitset_bfs(self, seed):
        graph = random_compact(seed)
        index = ChainIndex.from_graph(graph)
        expected = bigint_rows(graph)
        for source_id in range(graph.node_count()):
            assert index.reachable_mask(source_id) == expected[source_id]

    @pytest.mark.parametrize("seed", [5, 6])
    def test_pairwise_queries_match_masks(self, seed):
        graph = random_compact(seed, n=40, edges=100)
        index = ChainIndex.from_graph(graph)
        expected = bigint_rows(graph)
        for u in range(graph.node_count()):
            for v in range(graph.node_count()):
                assert index.reaches_visited(u, v) == bool((expected[u] >> v) & 1)

    def test_cycle_facts(self):
        graph = CompactGraph.from_edges(
            [(0, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0), (3, 4, 1.0)], nodes=range(5)
        )
        index = ChainIndex.from_graph(graph)
        assert index.is_cyclic(0)  # self-loop
        assert index.is_cyclic(1) and index.is_cyclic(2)  # 2-cycle
        assert not index.is_cyclic(3) and not index.is_cyclic(4)

    def test_state_round_trip(self):
        graph = random_compact(9)
        index = ChainIndex.from_graph(graph)
        reloaded = ChainIndex.from_state(index.to_state())
        for source_id in range(graph.node_count()):
            assert reloaded.reachable_mask(source_id) == index.reachable_mask(source_id)

    def test_unknown_state_format_rejected(self):
        with pytest.raises(ValueError):
            ChainIndex.from_state({"format": "something-else"})


@needs_numpy
class TestPackedBitMatrix:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_single_source_rows_match_bitset_bfs(self, seed):
        from repro.closure import PackedBitMatrix

        graph = random_compact(seed, n=130, edges=420)
        matrix = PackedBitMatrix.from_graph(graph)
        expected = bigint_rows(graph)
        for source_id in range(graph.node_count()):
            row = matrix.reachable_row(source_id)
            assert matrix.row_to_mask(row) == expected[source_id]

    def test_multi_source_sweep_matches_per_source(self):
        from repro.closure import PackedBitMatrix

        graph = random_compact(21, n=100, edges=300)
        matrix = PackedBitMatrix.from_graph(graph)
        sources = [3, 17, 42, 42, 99]  # duplicates must be fine
        rows = matrix.multi_source_rows(sources)
        for index, source_id in enumerate(sources):
            assert matrix.row_to_mask(rows[index]) == bitset_reachable(graph, source_id)

    def test_closure_rows_match_per_source(self):
        from repro.closure import PackedBitMatrix

        graph = random_compact(22, n=90, edges=270)
        matrix = PackedBitMatrix.from_graph(graph)
        rows = matrix.closure_rows()
        for source_id in range(graph.node_count()):
            assert matrix.row_to_mask(rows[source_id]) == bitset_reachable(graph, source_id)

    def test_stop_row_keyhole_covers_targets(self):
        from repro.closure import PackedBitMatrix

        graph = CompactGraph.from_edges([(i, i + 1, 1.0) for i in range(70)])
        matrix = PackedBitMatrix.from_graph(graph)
        stop = matrix.mask_to_row(1 << 5)
        visited = matrix.row_to_mask(matrix.reachable_row(0, stop_row=stop))
        assert (visited >> 5) & 1  # the target is covered even when stopping early

    def test_state_round_trip(self):
        from repro.closure import PackedBitMatrix

        graph = random_compact(23)
        matrix = PackedBitMatrix.from_graph(graph)
        reloaded = PackedBitMatrix.from_state(matrix.to_state())
        for source_id in range(graph.node_count()):
            assert reloaded.row_to_mask(
                reloaded.reachable_row(source_id)
            ) == matrix.row_to_mask(matrix.reachable_row(source_id))


class TestSelectKernel:
    def test_small_graphs_stay_bigint(self):
        graph = CompactGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        assert select_kernel(graph) == BACKEND_BIGINT

    def test_small_condensation_prefers_chain(self):
        # A big cyclic blob: the condensation collapses to a handful of SCCs.
        rng = random.Random(3)
        edges = [(i, (i + 1) % 100, 1.0) for i in range(100)]
        edges += [(rng.randrange(100), rng.randrange(100), 1.0) for _ in range(200)]
        graph = CompactGraph.from_edges(edges)
        assert graph_shape(graph)["condensation_ratio"] <= 0.5
        assert select_kernel(graph) == BACKEND_CHAIN

    @needs_numpy
    def test_dag_shapes_prefer_numpy_for_wide_fanout(self):
        # A long chain is its own condensation (ratio 1.0): chain labels
        # cannot compress it, so wide fan-outs go to the packed matrix.
        graph = CompactGraph.from_edges([(i, i + 1, 1.0) for i in range(120)])
        assert graph_shape(graph)["condensation_ratio"] == 1.0
        assert select_kernel(graph, sources=8) == BACKEND_NUMPY
        assert select_kernel(graph, whole_graph=True) == BACKEND_NUMPY

    def test_explicit_override_wins(self):
        graph = random_compact(31)
        assert select_kernel(graph, override=BACKEND_BIGINT) == BACKEND_BIGINT
        assert select_kernel(graph, override=BACKEND_CHAIN) == BACKEND_CHAIN

    def test_env_override_and_numpy_disable(self, monkeypatch):
        graph = random_compact(32)
        monkeypatch.setenv(ENV_BACKEND_OVERRIDE, BACKEND_CHAIN)
        assert select_kernel(graph) == BACKEND_CHAIN
        monkeypatch.setenv(ENV_BACKEND_OVERRIDE, BACKEND_NUMPY)
        monkeypatch.setenv(ENV_DISABLE_NUMPY, "1")
        assert select_kernel(graph) == BACKEND_BIGINT  # pinned numpy degrades
        monkeypatch.delenv(ENV_BACKEND_OVERRIDE)
        assert not numpy_available()

    def test_selection_counter_increments(self):
        graph = random_compact(33)
        before = selection_counts().get((BACKEND_BIGINT, "test-context"), 0)
        reachability_rows(
            graph, [0, 1], backend=BACKEND_BIGINT, context="test-context"
        )
        after = selection_counts()[(BACKEND_BIGINT, "test-context")]
        assert after == before + 1


class TestReachabilityRows:
    @pytest.mark.parametrize("seed", [41, 42, 43])
    def test_all_backends_identical(self, seed):
        graph = random_compact(seed)
        expected = bigint_rows(graph)
        ids = list(range(graph.node_count()))
        for backend in ALL_BACKENDS:
            rows, chosen = reachability_rows(graph, ids, whole_graph=True, backend=backend)
            assert rows == expected
            if backend == BACKEND_NUMPY and not numpy_available():
                assert chosen == BACKEND_BIGINT
            else:
                assert chosen == backend

    def test_partial_sources(self):
        graph = random_compact(44, n=120, edges=360)
        sources = [5, 60, 119]
        expected = {i: bitset_reachable(graph, i) for i in sources}
        for backend in ALL_BACKENDS:
            rows, _ = reachability_rows(graph, sources, backend=backend)
            assert rows == expected

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_closure_facade_matches_baseline(self, backend):
        rng = random.Random(45)
        graph = DiGraph()
        for i in range(80):
            graph.add_node(i)
        for _ in range(250):
            graph.add_edge(rng.randrange(80), rng.randrange(80), 1.0)
        compact = CompactGraph.from_digraph(graph)
        baseline = compact_reachability_closure(compact, backend=BACKEND_BIGINT)
        assert compact_reachability_closure(compact, backend=backend).values == baseline.values

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_seminaive_cycle_facts_survive_dispatch(self, backend, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND_OVERRIDE, backend)
        rng = random.Random(46)
        graph = DiGraph()
        for i in range(70):
            graph.add_node(i)
        for _ in range(210):
            graph.add_edge(rng.randrange(70), rng.randrange(70), 1.0)
        dict_result = seminaive_transitive_closure(
            graph, semiring=reachability_semiring(), use_compact=False
        )
        compact_result = seminaive_transitive_closure(
            graph, semiring=reachability_semiring(), use_compact=True
        )
        assert compact_result.values == dict_result.values


class TestDerivedPersistence:
    def test_state_carries_warm_caches(self):
        graph = random_compact(51)
        packed = numpy_available()
        if packed:
            packed_matrix(graph)
        chain_index(graph)
        graph_shape(graph)
        state = graph.state()
        derived = state.get("derived", {})
        assert CHAIN_KEY in derived and SHAPE_KEY in derived
        if packed:
            assert PACKED_KEY in derived

    def test_reload_answers_without_rebuilding(self):
        graph = random_compact(52)
        index = chain_index(graph)
        reloaded = CompactGraph.from_state(graph.state())
        # The reloaded graph hydrates the persisted labels: identical masks,
        # and the raw state is present before any hydration happens.
        assert reloaded.derived_state(CHAIN_KEY) is not None
        hydrated = chain_index(reloaded)
        for source_id in range(graph.node_count()):
            assert hydrated.reachable_mask(source_id) == index.reachable_mask(source_id)

    def test_pickle_round_trip_keeps_derived(self):
        graph = random_compact(53)
        chain_index(graph)
        clone = pickle.loads(pickle.dumps(graph))
        assert clone.derived_state(CHAIN_KEY) is not None
        rows, chosen = reachability_rows(
            graph, list(range(graph.node_count())), whole_graph=True
        )
        clone_rows, _ = reachability_rows(
            clone, list(range(clone.node_count())), whole_graph=True, backend=chosen
        )
        assert clone_rows == rows

    def test_unhydrated_state_passes_through_reship(self):
        # A coordinator that never touches a backend must still forward the
        # derived payload to the next hop (e.g. numpy rows through a
        # numpy-less relay).
        graph = random_compact(54)
        chain_index(graph)
        hop1 = CompactGraph.from_state(graph.state())
        hop2 = CompactGraph.from_state(hop1.state())
        assert hop2.derived_state(CHAIN_KEY) is not None
