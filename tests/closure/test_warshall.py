"""Unit tests for Warshall closure and per-source search closures."""

import pytest

from repro.closure import (
    bfs_closure,
    dijkstra_closure,
    reachability_semiring,
    seminaive_transitive_closure,
    shortest_path_semiring,
    warshall_closure,
)
from repro.generators import chain_graph, grid_graph
from repro.graph import DiGraph


@pytest.fixture
def weighted_graph() -> DiGraph:
    graph = DiGraph()
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("b", "c", 1.0)
    graph.add_edge("a", "c", 5.0)
    graph.add_edge("c", "d", 2.0)
    return graph


class TestWarshall:
    def test_matches_seminaive_shortest_paths(self, weighted_graph):
        warshall = warshall_closure(weighted_graph)
        semi = seminaive_transitive_closure(weighted_graph)
        assert warshall.values == semi.values

    def test_reachability_semiring(self):
        graph = chain_graph(4, symmetric=False)
        result = warshall_closure(graph, semiring=reachability_semiring())
        assert result.reaches(0, 3)
        assert not result.reaches(2, 0)

    def test_one_round_per_pivot(self, weighted_graph):
        result = warshall_closure(weighted_graph)
        assert result.statistics.iterations == weighted_graph.node_count()


class TestSearchClosures:
    def test_bfs_closure_all_sources(self):
        graph = chain_graph(4, symmetric=False)
        result = bfs_closure(graph)
        assert result.size() == 6  # pairs (i, j) with i < j

    def test_bfs_closure_restricted_sources(self):
        graph = chain_graph(4, symmetric=False)
        result = bfs_closure(graph, sources=[1])
        assert result.pairs() == {(1, 2), (1, 3)}

    def test_bfs_closure_ignores_missing_sources(self):
        graph = chain_graph(3, symmetric=False)
        result = bfs_closure(graph, sources=["ghost"])
        assert result.size() == 0

    def test_dijkstra_closure_matches_warshall(self, weighted_graph):
        dijkstra = dijkstra_closure(weighted_graph)
        warshall = warshall_closure(weighted_graph)
        assert dijkstra.values == pytest.approx(warshall.values)

    def test_dijkstra_closure_target_restriction(self, weighted_graph):
        result = dijkstra_closure(weighted_graph, sources=["a"], targets={"d"})
        assert result.pairs() == {("a", "d")}
        assert result.values[("a", "d")] == 4.0

    def test_grid_closure_is_symmetric(self):
        graph = grid_graph(3, 3)
        result = dijkstra_closure(graph)
        for (source, target), value in result.values.items():
            assert result.values[(target, source)] == value


class TestCompactThreshold:
    """Above COMPACT_NODE_THRESHOLD the dict algorithms delegate to kernels."""

    @pytest.fixture(scope="class")
    def big_graph(self):
        import random

        from repro.closure.warshall import COMPACT_NODE_THRESHOLD

        rng = random.Random(3)
        graph = DiGraph()
        n = COMPACT_NODE_THRESHOLD + 16
        for node in range(n):
            graph.add_node(node)
        for _ in range(4 * n):
            a, b = rng.randrange(n), rng.randrange(n)
            if a != b:
                graph.add_edge(a, b, float(rng.randint(1, 9)))
        return graph

    def test_bfs_closure_delegates_with_identical_values(self, big_graph):
        assert bfs_closure(big_graph).values == bfs_closure(big_graph, use_compact=False).values

    def test_dijkstra_closure_delegates_with_identical_values(self, big_graph):
        auto = dijkstra_closure(big_graph, sources=[0, 1, 2], targets={3, 4})
        dict_based = dijkstra_closure(
            big_graph, sources=[0, 1, 2], targets={3, 4}, use_compact=False
        )
        assert auto.values == dict_based.values

    def test_warshall_closure_delegates_with_identical_values(self, big_graph):
        for semiring in (shortest_path_semiring(), reachability_semiring()):
            auto = warshall_closure(big_graph, semiring=semiring)
            dict_based = warshall_closure(big_graph, semiring=semiring, use_compact=False)
            assert auto.values == dict_based.values

    def test_tiny_graphs_keep_the_dict_path(self):
        from repro.closure import ClosureResult
        from repro.closure.warshall import COMPACT_NODE_THRESHOLD

        graph = DiGraph([(0, 1, 1.0), (1, 2, 1.0)])
        assert graph.node_count() < COMPACT_NODE_THRESHOLD
        result = warshall_closure(graph)
        assert isinstance(result, ClosureResult)
        # The pivot loop records one round per node; the kernels would not.
        assert result.statistics.iterations == graph.node_count()
