"""Property tests: every kernel backend answers every graph identically.

Hypothesis drives adversarial shapes — self-loops, empty graphs, single
nodes, dense cliques, long chains, disconnected components — through all
three reachability backends and through the dict fixpoint, for both standard
semirings.  Any divergence is a dispatcher bug by definition: callers never
choose a backend, so the backends must be indistinguishable.
"""

from __future__ import annotations

import os
import random
from typing import List, Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.closure import (
    BACKEND_BIGINT,
    BACKEND_CHAIN,
    BACKEND_NUMPY,
    bitset_reachable,
    numpy_available,
    reachability_rows,
    reachability_semiring,
    seminaive_transitive_closure,
    shortest_path_semiring,
)
from repro.graph import CompactGraph, DiGraph

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

BACKENDS = (BACKEND_BIGINT, BACKEND_NUMPY, BACKEND_CHAIN)

Edge = Tuple[int, int, float]


def _random_edges(rng: random.Random, n: int, m: int, self_loops: bool) -> List[Edge]:
    edges: List[Edge] = []
    for _ in range(m):
        a, b = rng.randrange(n), rng.randrange(n)
        if not self_loops and a == b:
            continue
        edges.append((a, b, float(rng.randint(1, 9))))
    return edges


@st.composite
def adversarial_graphs(draw) -> Tuple[int, List[Edge]]:
    """Return ``(node_count, edges)`` biased toward kernel corner cases."""
    shape = draw(
        st.sampled_from(
            ["empty", "single", "chain", "clique", "islands", "random", "loops"]
        )
    )
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    if shape == "empty":
        return draw(st.integers(min_value=0, max_value=6)), []
    if shape == "single":
        n = 1
        return n, [(0, 0, 1.0)] if draw(st.booleans()) else []
    if shape == "chain":
        n = draw(st.integers(min_value=2, max_value=70))
        edges = [(i, i + 1, 1.0) for i in range(n - 1)]
        if draw(st.booleans()):
            edges.append((n - 1, 0, 1.0))  # close the chain into one big cycle
        return n, edges
    if shape == "clique":
        n = draw(st.integers(min_value=2, max_value=14))
        return n, [
            (a, b, float(rng.randint(1, 5)))
            for a in range(n)
            for b in range(n)
            if a != b
        ]
    if shape == "islands":
        sizes = draw(
            st.lists(st.integers(min_value=1, max_value=8), min_size=2, max_size=5)
        )
        edges: List[Edge] = []
        base = 0
        for size in sizes:
            members = list(range(base, base + size))
            for a, b in zip(members, members[1:]):
                edges.append((a, b, 1.0))
            if size > 1 and rng.random() < 0.5:
                edges.append((members[-1], members[0], 1.0))
            base += size
        return base, edges
    if shape == "loops":
        n = draw(st.integers(min_value=1, max_value=30))
        edges = _random_edges(rng, n, 2 * n, self_loops=False)
        edges += [(i, i, 1.0) for i in range(n) if rng.random() < 0.4]
        return n, edges
    n = draw(st.integers(min_value=1, max_value=60))
    return n, _random_edges(rng, n, draw(st.integers(min_value=0, max_value=180)), True)


def _compact(n: int, edges: List[Edge]) -> CompactGraph:
    return CompactGraph.from_edges(edges, nodes=range(n))


def _digraph(n: int, edges: List[Edge]) -> DiGraph:
    graph = DiGraph()
    for i in range(n):
        graph.add_node(i)
    for a, b, w in edges:
        graph.add_edge(a, b, w)
    return graph


@SETTINGS
@given(adversarial_graphs())
def test_backends_agree_on_whole_graph_rows(case):
    n, edges = case
    graph = _compact(n, edges)
    ids = list(range(n))
    expected = {i: bitset_reachable(graph, i) for i in ids}
    for backend in BACKENDS:
        rows, _ = reachability_rows(graph, ids, whole_graph=True, backend=backend)
        assert rows == expected, backend


@SETTINGS
@given(adversarial_graphs(), st.integers(min_value=0, max_value=10_000))
def test_backends_agree_on_source_subsets(case, pick_seed):
    n, edges = case
    if n == 0:
        return
    graph = _compact(n, edges)
    rng = random.Random(pick_seed)
    sources = sorted({rng.randrange(n) for _ in range(min(n, 5))})
    expected = {i: bitset_reachable(graph, i) for i in sources}
    for backend in BACKENDS:
        rows, _ = reachability_rows(graph, sources, backend=backend)
        assert rows == expected, backend


@SETTINGS
@given(adversarial_graphs(), st.sampled_from(BACKENDS))
def test_reachability_closure_matches_dict_fixpoint(case, backend):
    n, edges = case
    digraph = _digraph(n, edges)
    dict_result = seminaive_transitive_closure(
        digraph, semiring=reachability_semiring(), use_compact=False
    )
    saved = os.environ.get("REPRO_KERNEL_BACKEND")
    os.environ["REPRO_KERNEL_BACKEND"] = backend
    try:
        compact_result = seminaive_transitive_closure(
            digraph, semiring=reachability_semiring(), use_compact=True
        )
    finally:
        if saved is None:
            os.environ.pop("REPRO_KERNEL_BACKEND", None)
        else:
            os.environ["REPRO_KERNEL_BACKEND"] = saved
    assert compact_result.values == dict_result.values


@SETTINGS
@given(adversarial_graphs())
def test_shortest_path_closure_matches_dict_fixpoint(case):
    n, edges = case
    digraph = _digraph(n, edges)
    dict_result = seminaive_transitive_closure(
        digraph, semiring=shortest_path_semiring(), use_compact=False
    )
    compact_result = seminaive_transitive_closure(
        digraph, semiring=shortest_path_semiring(), use_compact=True
    )
    assert compact_result.values == dict_result.values


def test_numpy_marker():
    """Record (in the test id) whether this run exercised the numpy leg."""
    assert numpy_available() in (True, False)
