"""Unit tests for the iterative closure algorithms (naive, semi-naive, smart)."""

import pytest

from repro.closure import (
    naive_transitive_closure,
    reachability_semiring,
    seminaive_transitive_closure,
    shortest_path_semiring,
    smart_transitive_closure,
)
from repro.generators import chain_graph, cycle_graph, grid_graph
from repro.graph import DiGraph


@pytest.fixture
def weighted_graph() -> DiGraph:
    graph = DiGraph()
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("b", "c", 1.0)
    graph.add_edge("a", "c", 5.0)
    graph.add_edge("c", "d", 2.0)
    return graph


class TestCorrectness:
    def test_seminaive_shortest_paths(self, weighted_graph):
        result = seminaive_transitive_closure(weighted_graph)
        assert result.values[("a", "c")] == 2.0
        assert result.values[("a", "d")] == 4.0

    def test_all_algorithms_agree(self, weighted_graph):
        semi = seminaive_transitive_closure(weighted_graph)
        naive = naive_transitive_closure(weighted_graph)
        smart = smart_transitive_closure(weighted_graph)
        assert semi.values == naive.values == smart.values

    def test_reachability_on_directed_chain(self):
        graph = chain_graph(4, symmetric=False)
        result = seminaive_transitive_closure(graph, semiring=reachability_semiring())
        assert result.reaches(0, 3)
        assert not result.reaches(3, 0)

    def test_cycle_produces_self_loops(self):
        graph = cycle_graph(4, symmetric=False)
        result = seminaive_transitive_closure(graph, semiring=reachability_semiring())
        assert result.reaches(0, 0)
        assert result.size() == 16

    def test_source_restriction_limits_rows(self, weighted_graph):
        result = seminaive_transitive_closure(weighted_graph, sources=["a"])
        assert all(source == "a" for source, _ in result.values)
        assert result.values[("a", "d")] == 4.0

    def test_empty_graph(self):
        result = seminaive_transitive_closure(DiGraph())
        assert result.size() == 0

    def test_result_helpers(self, weighted_graph):
        result = seminaive_transitive_closure(weighted_graph)
        semiring = shortest_path_semiring()
        assert result.value("a", "zzz", semiring) == semiring.zero
        assert result.value("a", "zzz") is None
        restricted = result.restricted_to_sources({"a"})
        assert all(source == "a" for source, _ in restricted.values)


class TestIterationCounts:
    def test_seminaive_iterations_scale_with_diameter(self):
        short = seminaive_transitive_closure(chain_graph(4, symmetric=False))
        long = seminaive_transitive_closure(chain_graph(12, symmetric=False))
        assert long.statistics.iterations > short.statistics.iterations

    def test_smart_iterations_are_logarithmic(self):
        graph = chain_graph(20, symmetric=False)
        smart = smart_transitive_closure(graph)
        semi = seminaive_transitive_closure(graph)
        assert smart.statistics.iterations <= 6
        assert semi.statistics.iterations >= 18

    def test_fragmenting_a_chain_reduces_iterations(self):
        # The paper's iteration-reduction claim in miniature: half the chain
        # needs roughly half the iterations.
        whole = seminaive_transitive_closure(chain_graph(16, symmetric=False))
        half = seminaive_transitive_closure(chain_graph(8, symmetric=False))
        assert half.statistics.iterations < whole.statistics.iterations

    def test_grid_closure_statistics_consistent(self):
        result = seminaive_transitive_closure(grid_graph(3, 3), semiring=reachability_semiring())
        assert result.statistics.iterations == len(result.statistics.delta_sizes)
        # Every ordered pair is derivable, including (i, i) via back-and-forth
        # over a symmetric edge.
        assert result.size() == 9 * 9


class TestCompactThreshold:
    def test_seminaive_delegates_above_threshold_with_identical_values(self):
        import random

        from repro.closure import reachability_semiring
        from repro.closure.warshall import COMPACT_NODE_THRESHOLD

        rng = random.Random(9)
        graph = DiGraph()
        n = COMPACT_NODE_THRESHOLD + 8
        for node in range(n):
            graph.add_node(node)
        for _ in range(4 * n):
            a, b = rng.randrange(n), rng.randrange(n)
            if a != b:
                graph.add_edge(a, b, float(rng.randint(1, 9)))
        for semiring in (shortest_path_semiring(), reachability_semiring()):
            auto = seminaive_transitive_closure(graph, semiring=semiring)
            dict_based = seminaive_transitive_closure(
                graph, semiring=semiring, use_compact=False
            )
            # Including the cyclic (a, a) facts the fixpoint derives.
            assert auto.values == dict_based.values
        restricted = seminaive_transitive_closure(graph, sources=[0, 5])
        restricted_dict = seminaive_transitive_closure(
            graph, sources=[0, 5], use_compact=False
        )
        assert restricted.values == restricted_dict.values


class TestIterationStatisticsConsumers:
    def test_diameter_in_iterations_counts_rounds_above_the_threshold(self):
        from repro.closure import diameter_in_iterations
        from repro.closure.warshall import COMPACT_NODE_THRESHOLD

        n = COMPACT_NODE_THRESHOLD + 8
        graph = DiGraph()
        for a in range(n - 1):  # a long path: diameter n - 2 hops
            graph.add_edge(a, a + 1, 1.0)
        # Must report fixpoint rounds (diameter-ish), not one row per source.
        assert diameter_in_iterations(graph) == n - 1
