"""Unit tests for the iterative closure algorithms (naive, semi-naive, smart)."""

import pytest

from repro.closure import (
    naive_transitive_closure,
    reachability_semiring,
    seminaive_transitive_closure,
    shortest_path_semiring,
    smart_transitive_closure,
)
from repro.generators import chain_graph, cycle_graph, grid_graph
from repro.graph import DiGraph


@pytest.fixture
def weighted_graph() -> DiGraph:
    graph = DiGraph()
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("b", "c", 1.0)
    graph.add_edge("a", "c", 5.0)
    graph.add_edge("c", "d", 2.0)
    return graph


class TestCorrectness:
    def test_seminaive_shortest_paths(self, weighted_graph):
        result = seminaive_transitive_closure(weighted_graph)
        assert result.values[("a", "c")] == 2.0
        assert result.values[("a", "d")] == 4.0

    def test_all_algorithms_agree(self, weighted_graph):
        semi = seminaive_transitive_closure(weighted_graph)
        naive = naive_transitive_closure(weighted_graph)
        smart = smart_transitive_closure(weighted_graph)
        assert semi.values == naive.values == smart.values

    def test_reachability_on_directed_chain(self):
        graph = chain_graph(4, symmetric=False)
        result = seminaive_transitive_closure(graph, semiring=reachability_semiring())
        assert result.reaches(0, 3)
        assert not result.reaches(3, 0)

    def test_cycle_produces_self_loops(self):
        graph = cycle_graph(4, symmetric=False)
        result = seminaive_transitive_closure(graph, semiring=reachability_semiring())
        assert result.reaches(0, 0)
        assert result.size() == 16

    def test_source_restriction_limits_rows(self, weighted_graph):
        result = seminaive_transitive_closure(weighted_graph, sources=["a"])
        assert all(source == "a" for source, _ in result.values)
        assert result.values[("a", "d")] == 4.0

    def test_empty_graph(self):
        result = seminaive_transitive_closure(DiGraph())
        assert result.size() == 0

    def test_result_helpers(self, weighted_graph):
        result = seminaive_transitive_closure(weighted_graph)
        semiring = shortest_path_semiring()
        assert result.value("a", "zzz", semiring) == semiring.zero
        assert result.value("a", "zzz") is None
        restricted = result.restricted_to_sources({"a"})
        assert all(source == "a" for source, _ in restricted.values)


class TestIterationCounts:
    def test_seminaive_iterations_scale_with_diameter(self):
        short = seminaive_transitive_closure(chain_graph(4, symmetric=False))
        long = seminaive_transitive_closure(chain_graph(12, symmetric=False))
        assert long.statistics.iterations > short.statistics.iterations

    def test_smart_iterations_are_logarithmic(self):
        graph = chain_graph(20, symmetric=False)
        smart = smart_transitive_closure(graph)
        semi = seminaive_transitive_closure(graph)
        assert smart.statistics.iterations <= 6
        assert semi.statistics.iterations >= 18

    def test_fragmenting_a_chain_reduces_iterations(self):
        # The paper's iteration-reduction claim in miniature: half the chain
        # needs roughly half the iterations.
        whole = seminaive_transitive_closure(chain_graph(16, symmetric=False))
        half = seminaive_transitive_closure(chain_graph(8, symmetric=False))
        assert half.statistics.iterations < whole.statistics.iterations

    def test_grid_closure_statistics_consistent(self):
        result = seminaive_transitive_closure(grid_graph(3, 3), semiring=reachability_semiring())
        assert result.statistics.iterations == len(result.statistics.delta_sizes)
        # Every ordered pair is derivable, including (i, i) via back-and-forth
        # over a symmetric edge.
        assert result.size() == 9 * 9
