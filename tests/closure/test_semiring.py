"""Unit tests for the path-problem semirings."""

import math

from repro.closure import (
    path_count_semiring,
    reachability_semiring,
    shortest_path_semiring,
    widest_path_semiring,
)


class TestReachability:
    def test_identities(self):
        semiring = reachability_semiring()
        assert semiring.zero is False
        assert semiring.one is True
        assert semiring.plus(False, True) is True
        assert semiring.times(True, False) is False

    def test_edge_value_ignores_weight(self):
        assert reachability_semiring().edge_value(123.0) is True

    def test_improves(self):
        semiring = reachability_semiring()
        assert semiring.improves(True, False)
        assert not semiring.improves(True, True)
        assert not semiring.improves(False, True)


class TestShortestPath:
    def test_identities(self):
        semiring = shortest_path_semiring()
        assert semiring.zero == math.inf
        assert semiring.one == 0.0

    def test_plus_is_min_times_is_sum(self):
        semiring = shortest_path_semiring()
        assert semiring.plus(3.0, 5.0) == 3.0
        assert semiring.times(3.0, 5.0) == 8.0

    def test_improves(self):
        semiring = shortest_path_semiring()
        assert semiring.improves(2.0, 4.0)
        assert not semiring.improves(4.0, 2.0)


class TestWidestPath:
    def test_plus_is_max_times_is_min(self):
        semiring = widest_path_semiring()
        assert semiring.plus(3.0, 5.0) == 5.0
        assert semiring.times(3.0, 5.0) == 3.0

    def test_identities_absorb(self):
        semiring = widest_path_semiring()
        assert semiring.plus(semiring.zero, 4.0) == 4.0
        assert semiring.times(semiring.one, 4.0) == 4.0


class TestPathCount:
    def test_counting(self):
        semiring = path_count_semiring()
        assert semiring.plus(2, 3) == 5
        assert semiring.times(2, 3) == 6
        assert semiring.edge_value(7.5) == 1

    def test_identities(self):
        semiring = path_count_semiring()
        assert semiring.plus(semiring.zero, 4) == 4
        assert semiring.times(semiring.one, 4) == 4
