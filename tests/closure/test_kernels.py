"""Randomized equivalence tests: compact kernels vs the DiGraph algorithms.

The compact kernel layer is only allowed to change *how fast* answers are
produced, never *which* answers: these tests sweep randomized graphs,
fragmentations and query specs through both evaluation paths — closures,
per-fragment local queries, and snapshot round-trips — and require identical
results everywhere.
"""

import random

import pytest

from repro.closure import (
    bfs_closure,
    compact_closure,
    compact_reachability_closure,
    compact_shortest_path_closure,
    dijkstra_closure,
    reachability_semiring,
    seminaive_transitive_closure,
    shortest_path_semiring,
    widest_path_semiring,
)
from repro.disconnection import (
    DisconnectionSetEngine,
    DistributedCatalog,
    LocalQueryEvaluator,
    LocalQueryResult,
    QueryPlanner,
)
from repro.fragmentation import GroundTruthFragmenter
from repro.graph import CompactGraph, DiGraph
from repro.service.snapshot import load_snapshot, save_snapshot


def random_digraph(seed: int, *, nodes: int = 18, edge_probability: float = 0.14) -> DiGraph:
    """A reproducible random weighted digraph (node keys are strings on purpose)."""
    rng = random.Random(seed)
    graph = DiGraph(nodes=[f"n{i}" for i in range(nodes)])
    for i in range(nodes):
        for j in range(nodes):
            if i != j and rng.random() < edge_probability:
                graph.add_edge(f"n{i}", f"n{j}", round(rng.uniform(0.5, 9.5), 2))
    return graph


def random_two_block_fragmentation(seed: int, *, nodes: int = 20):
    """A random symmetric graph split into two overlapping node blocks."""
    rng = random.Random(seed)
    graph = DiGraph()
    for i in range(nodes - 1):  # a connected backbone plus random chords
        graph.add_symmetric_edge(i, i + 1, round(rng.uniform(0.5, 4.5), 2))
    for _ in range(nodes):
        a, b = rng.sample(range(nodes), 2)
        graph.add_symmetric_edge(a, b, round(rng.uniform(0.5, 4.5), 2))
    cut = nodes // 2
    blocks = [set(range(cut)), set(range(cut, nodes))]
    fragmentation = GroundTruthFragmenter(blocks).fragment(graph)
    return graph, fragmentation


class TestClosureEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_reachability_matches_bfs_closure(self, seed):
        graph = random_digraph(seed)
        compact = CompactGraph.from_digraph(graph)
        assert compact_reachability_closure(compact).values == bfs_closure(graph).values

    @pytest.mark.parametrize("seed", range(8))
    def test_shortest_path_matches_dijkstra_closure(self, seed):
        graph = random_digraph(seed)
        compact = CompactGraph.from_digraph(graph)
        assert compact_shortest_path_closure(compact).values == dijkstra_closure(graph).values

    @pytest.mark.parametrize("seed", range(4))
    def test_source_restriction_matches(self, seed):
        graph = random_digraph(seed)
        compact = CompactGraph.from_digraph(graph)
        sources = ["n0", "n3", "n7", "ghost"]  # unknown sources are skipped
        assert (
            compact_reachability_closure(compact, sources=sources).values
            == bfs_closure(graph, sources=sources).values
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_generic_semiring_matches_seminaive(self, seed):
        graph = random_digraph(seed, nodes=10, edge_probability=0.2)
        compact = CompactGraph.from_digraph(graph)
        semiring = widest_path_semiring()
        kernel = compact_closure(compact, semiring=semiring)
        reference = seminaive_transitive_closure(graph, semiring=semiring)
        assert kernel.values == reference.values
        assert kernel.semiring_name == reference.semiring_name


class TestLocalQueryEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize(
        "semiring_factory", [reachability_semiring, shortest_path_semiring]
    )
    def test_compact_matches_dict_path(self, seed, semiring_factory):
        semiring = semiring_factory()
        graph, fragmentation = random_two_block_fragmentation(seed)
        catalog = DistributedCatalog(fragmentation, semiring=semiring)
        planner = QueryPlanner(catalog)
        dict_eval = LocalQueryEvaluator(semiring=semiring, use_compact=False)
        kernel_eval = LocalQueryEvaluator(semiring=semiring, use_compact=True)
        rng = random.Random(seed + 1000)
        nodes = graph.nodes()
        for _ in range(6):
            source, target = rng.sample(nodes, 2)
            for chain_plan in planner.plan(source, target).chains:
                for spec in chain_plan.local_queries:
                    site = catalog.site(spec.fragment_id)
                    dict_result = dict_eval.evaluate(site, spec)
                    kernel_result = kernel_eval.evaluate(site, spec)
                    assert kernel_result.values == dict_result.values
                    assert (
                        kernel_result.estimated_iterations
                        == dict_result.estimated_iterations
                    )

    @pytest.mark.parametrize("seed", range(3))
    def test_compact_fragment_site_matches_full_site(self, seed):
        semiring = reachability_semiring()
        graph, fragmentation = random_two_block_fragmentation(seed)
        catalog = DistributedCatalog(fragmentation, semiring=semiring)
        planner = QueryPlanner(catalog)
        evaluator = LocalQueryEvaluator(semiring=semiring)
        compact_sites = catalog.compact_sites()
        nodes = graph.nodes()
        rng = random.Random(seed)
        source, target = rng.sample(nodes, 2)
        for chain_plan in planner.plan(source, target).chains:
            for spec in chain_plan.local_queries:
                full = evaluator.evaluate(catalog.site(spec.fragment_id), spec)
                worker = evaluator.evaluate(compact_sites[spec.fragment_id], spec)
                assert worker.values == full.values
                assert worker.estimated_iterations == full.estimated_iterations

    def test_unreachable_target_path_raises(self):
        from repro.closure import array_dijkstra, reconstruct_id_path

        compact = CompactGraph.from_edges([("a", "b", 1.0)], nodes=["a", "b", "c"])
        _, predecessors, _ = array_dijkstra(compact, 0)
        with pytest.raises(ValueError):
            reconstruct_id_path(predecessors, 0, compact.node_id("c"))

    def test_compact_fragment_site_rejects_shortcut_ablation(self):
        _, fragmentation = random_two_block_fragmentation(0)
        catalog = DistributedCatalog(fragmentation, semiring=reachability_semiring())
        compact_site = catalog.compact_sites()[0]
        with pytest.raises(ValueError):
            compact_site.compact(use_shortcuts=False)

    def test_compact_fragment_site_rejects_custom_semirings(self):
        _, fragmentation = random_two_block_fragmentation(0)
        catalog = DistributedCatalog(fragmentation, semiring=reachability_semiring())
        compact_site = catalog.compact_sites()[0]
        evaluator = LocalQueryEvaluator(semiring=widest_path_semiring())
        spec = next(iter(catalog.sites())).border_nodes
        from repro.disconnection.planner import LocalQuerySpec

        with pytest.raises(ValueError):
            evaluator.evaluate(
                compact_site,
                LocalQuerySpec(fragment_id=0, entry_nodes=frozenset(spec), exit_nodes=frozenset(spec)),
            )


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize(
        "semiring_factory", [reachability_semiring, shortest_path_semiring]
    )
    def test_kernel_results_survive_save_load(self, tmp_path, semiring_factory):
        semiring = semiring_factory()
        graph, fragmentation = random_two_block_fragmentation(42)
        engine = DisconnectionSetEngine(fragmentation, semiring=semiring)
        save_snapshot(tmp_path / "snap", engine)
        loaded = load_snapshot(tmp_path / "snap")
        assert set(loaded.compact_sites) == {
            site.fragment_id for site in engine.catalog.sites()
        }
        reloaded_engine = loaded.build_engine()
        # The reloaded sites are seeded with the persisted compact form.
        for site in reloaded_engine.catalog.sites():
            assert site._compact_augmented is not None
        rng = random.Random(7)
        nodes = graph.nodes()
        for _ in range(8):
            source, target = rng.sample(nodes, 2)
            assert (
                reloaded_engine.query(source, target).value
                == engine.query(source, target).value
            )

    def test_persisted_compact_state_matches_rebuilt(self, tmp_path):
        graph, fragmentation = random_two_block_fragmentation(3)
        engine = DisconnectionSetEngine(fragmentation, semiring=reachability_semiring())
        save_snapshot(tmp_path / "snap", engine)
        loaded = load_snapshot(tmp_path / "snap")
        for fragment_id, compact_site in loaded.compact_sites.items():
            rebuilt = loaded.build_engine().catalog.site(fragment_id).compact()
            assert compact_site.compact().weighted_edges() == rebuilt.weighted_edges()


class TestExitValuesSemiring:
    def test_exit_values_uses_semiring_plus(self):
        # Widest path: "best" is the maximum, which the raw < comparison of
        # the pre-fix implementation would get exactly wrong.
        result = LocalQueryResult(
            fragment_id=0,
            values={("a", "x"): 3.0, ("b", "x"): 5.0},
            semiring=widest_path_semiring(),
        )
        assert result.exit_values() == {"x": 5.0}

    def test_exit_values_accepts_explicit_semiring(self):
        result = LocalQueryResult(fragment_id=0, values={("a", "x"): 3.0, ("b", "x"): 5.0})
        assert result.exit_values(widest_path_semiring()) == {"x": 5.0}
        assert result.exit_values(shortest_path_semiring()) == {"x": 3.0}

    def test_exit_values_reachability(self):
        result = LocalQueryResult(
            fragment_id=0,
            values={("a", "x"): True, ("b", "x"): True, ("a", "y"): True},
            semiring=reachability_semiring(),
        )
        assert result.exit_values() == {"x": True, "y": True}

    def test_legacy_fallback_without_semiring(self):
        result = LocalQueryResult(fragment_id=0, values={("a", "x"): 3.0, ("b", "x"): 5.0})
        assert result.exit_values() == {"x": 3.0}

    def test_evaluator_attaches_semiring(self):
        _, fragmentation = random_two_block_fragmentation(1)
        catalog = DistributedCatalog(fragmentation, semiring=reachability_semiring())
        evaluator = LocalQueryEvaluator(semiring=reachability_semiring())
        site = catalog.sites()[0]
        from repro.disconnection.planner import LocalQuerySpec

        spec = LocalQuerySpec(
            fragment_id=site.fragment_id,
            entry_nodes=frozenset(site.border_nodes),
            exit_nodes=frozenset(site.border_nodes),
        )
        result = evaluator.evaluate(site, spec)
        assert result.semiring is not None
        assert result.semiring.name == "reachability"
